"""Tests for return-node inference and result snippets."""

from repro.core import present, return_node, snippet
from repro.slca import infer_search_for
from repro.xmltree import Dewey


class TestReturnNode:
    def test_lifts_to_search_for_entity(self, figure1_index):
        search_for = infer_search_for(figure1_index, ["database", "2003"])
        types = [c.node_type for c in search_for]
        # A deep SLCA (title node) should render as its entity.
        title = Dewey((0, 0, 1, 0, 0))
        entity = return_node(figure1_index, title, types)
        assert entity.node_type in types

    def test_slca_already_entity(self, figure1_index):
        types = [("bib", "author", "publications", "inproceedings")]
        inproc = Dewey((0, 0, 1, 0))
        assert return_node(figure1_index, inproc, types).dewey == inproc

    def test_no_candidate_types_returns_self(self, figure1_index):
        label = Dewey((0, 0, 1, 0))
        assert return_node(figure1_index, label, []).dewey == label

    def test_unknown_label(self, figure1_index):
        assert return_node(figure1_index, Dewey((0, 99)), []) is None


class TestSnippet:
    def test_heading_prefers_title(self, figure1_index):
        types = [("bib", "author", "publications", "inproceedings")]
        built = snippet(
            figure1_index, Dewey((0, 0, 1, 0)), ["database"], types
        )
        assert built.heading == "online database systems"

    def test_keywords_highlighted(self, figure1_index):
        types = [("bib", "author", "publications", "inproceedings")]
        built = snippet(
            figure1_index, Dewey((0, 0, 1, 0)), ["database"], types
        )
        assert any("DATABASE" in fragment for fragment in built.fragments)

    def test_render_is_multiline(self, figure1_index):
        types = [("bib", "author")]
        built = snippet(figure1_index, Dewey((0, 0)), ["xml"], types)
        assert built.render().startswith("author:0.0")


class TestPresent:
    def test_direct_hit_group(self, figure1_engine, figure1_index):
        response = figure1_engine.search("database 2003")
        groups = present(figure1_index, response)
        assert len(groups) == 1
        label, snippets = groups[0]
        assert label == "database 2003"
        assert snippets

    def test_refinement_groups(self, figure1_engine, figure1_index):
        response = figure1_engine.search("database publication", k=2)
        groups = present(figure1_index, response)
        assert len(groups) == len(response.refinements)
        for label, snippets in groups:
            assert snippets, label

    def test_duplicate_entities_collapsed(self, figure1_engine, figure1_index):
        response = figure1_engine.search("database publication", k=2)
        for _, snippets in present(figure1_index, response):
            entities = [s.entity.dewey for s in snippets]
            assert len(entities) == len(set(entities))

    def test_max_results_cap(self, dblp_engine, dblp_index):
        response = dblp_engine.search("databse query", k=1)
        for _, snippets in present(dblp_index, response, max_results=2):
            assert len(snippets) <= 2
