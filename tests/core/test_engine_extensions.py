"""Tests for engine extensions: ELCA search, ranked results, eager build."""

from repro.core.ranking import score_result
from repro.index import build_document_index


class TestELCAViaEngine:
    def test_elca_algorithm_available(self, figure1_engine):
        slca = figure1_engine.slca_search("database 2003", algorithm="scan")
        elca_results = figure1_engine.slca_search(
            "database 2003", algorithm="elca"
        )
        assert set(slca) <= set(elca_results)

    def test_elca_superset_on_dblp(self, dblp_engine):
        for query in ("database query", "machine learning"):
            slca = dblp_engine.slca_search(query, algorithm="scan")
            elca_results = dblp_engine.slca_search(query, algorithm="elca")
            assert set(slca) <= set(elca_results)


class TestRankedResults:
    def test_flag_orders_results(self, dblp_engine, dblp_index):
        response = dblp_engine.search("databse query", k=2, rank_results=True)
        for refinement in response.refinements:
            scores = [
                score_result(dblp_index, dewey, refinement.rq.keywords)
                for dewey in refinement.slcas
            ]
            assert scores == sorted(scores, reverse=True)

    def test_flag_off_keeps_document_order(self, dblp_engine):
        response = dblp_engine.search("databse query", k=1)
        for refinement in response.refinements:
            labels = [d.components for d in refinement.slcas]
            assert labels == sorted(labels)

    def test_direct_hit_with_flag(self, dblp_engine, dblp_index):
        response = dblp_engine.search(
            "database query", k=1, rank_results=True
        )
        assert not response.needs_refinement
        scores = [
            score_result(dblp_index, dewey, response.query)
            for dewey in response.original_results
        ]
        assert scores == sorted(scores, reverse=True)


class TestEagerCooccurrence:
    def test_eager_equals_lazy(self, figure1_tree):
        lazy = build_document_index(figure1_tree)
        t = ("bib", "author", "publications", "inproceedings")
        eager = build_document_index(
            figure1_tree, eager_cooccurrence_types=[t]
        )
        # Eager table is pre-populated...
        assert len(eager.cooccurrence) > 0
        # ...and returns identical counts.
        for ki, kj in (("database", "2003"), ("xml", "twig")):
            assert eager.cooccurrence.count(ki, kj, t) == (
                lazy.cooccurrence.count(ki, kj, t)
            )
