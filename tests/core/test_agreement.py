"""Cross-algorithm agreement and the one-scan guarantees.

Theorems 1 and 2 promise (a) the optimal refined query in terms of
``dSim`` with a meaningful result, and (b) a single scan of every
inverted list.  These tests check both properties over generated
workloads: the three algorithms must agree on the optimal
dissimilarity, and cursor accounting must show no posting consumed
twice.
"""

import pytest

from repro.core import partition_refine, short_list_eager, stack_refine
from repro.core.common import QueryContext
from repro.lexicon import RuleMiner
from repro.workload import ALL_KINDS, WorkloadGenerator


@pytest.fixture(scope="module")
def workload(dblp_index):
    generator = WorkloadGenerator(dblp_index, seed=77)
    queries = []
    for kind in ALL_KINDS:
        for _ in range(2):
            queries.append(generator.refinable_query(kinds=[kind]))
    queries.append(generator.clean_query())
    return queries


@pytest.fixture(scope="module")
def miner(dblp_index):
    return RuleMiner(dblp_index.inverted.keywords())


class TestOptimalAgreement:
    def test_all_algorithms_agree_on_optimal_dsim(
        self, dblp_index, workload, miner
    ):
        for pool_query in workload:
            rules = miner.mine(pool_query.query)
            responses = {
                "stack": stack_refine(dblp_index, pool_query.query, rules),
                "partition": partition_refine(
                    dblp_index, pool_query.query, rules, None, 1
                ),
                "sle": short_list_eager(
                    dblp_index, pool_query.query, rules, None, 1
                ),
            }
            flags = {n: r.needs_refinement for n, r in responses.items()}
            assert len(set(flags.values())) == 1, (pool_query, flags)
            if not pool_query.refinable:
                assert not responses["partition"].needs_refinement
                continue
            # Algorithm 1 returns the dSim-optimal RQ; Algorithms 2/3
            # order their Top-K by the full ranking model, but their
            # candidate pool must contain a candidate at the same
            # optimal dissimilarity (Theorems 1 and 2).
            dsims = {}
            for name, response in responses.items():
                assert response.needs_refinement, (pool_query, name)
                if response.candidates:
                    dsims[name] = min(
                        c.rq.dissimilarity for c in response.candidates
                    )
            if dsims:
                assert len(set(dsims.values())) == 1, (pool_query, dsims)

    def test_original_results_agree(self, dblp_index, workload, miner):
        clean = [q for q in workload if not q.refinable]
        for pool_query in clean:
            rules = miner.mine(pool_query.query)
            results = {
                "stack": stack_refine(dblp_index, pool_query.query, rules),
                "partition": partition_refine(
                    dblp_index, pool_query.query, rules, None, 1
                ),
                "sle": short_list_eager(
                    dblp_index, pool_query.query, rules, None, 1
                ),
            }
            sets = {
                name: set(map(str, r.original_results))
                for name, r in results.items()
            }
            assert sets["stack"] == sets["partition"] == sets["sle"]


class TestOneScan:
    """Theorem 1/2: each list position is consumed at most once."""

    def _cursor_totals(self, index, query, rules, algorithm):
        # Instrument by replaying through a fresh context: the
        # algorithms create their own cursors from context lists, so we
        # assert on the stats they report instead.
        if algorithm == "stack":
            return stack_refine(index, query, rules)
        if algorithm == "partition":
            return partition_refine(index, query, rules, None, 2)
        return short_list_eager(index, query, rules, None, 2)

    @pytest.mark.parametrize("algorithm", ["stack", "partition"])
    def test_scanned_bounded_by_total_postings(
        self, dblp_index, workload, miner, algorithm
    ):
        for pool_query in workload:
            rules = miner.mine(pool_query.query)
            context = QueryContext(dblp_index, pool_query.query, rules)
            total_postings = sum(
                len(lst) for lst in context.lists.values()
            )
            response = self._cursor_totals(
                dblp_index, pool_query.query, rules, algorithm
            )
            assert response.stats.postings_scanned <= total_postings, (
                algorithm,
                pool_query,
            )

    def test_sle_never_rewinds(self, dblp_index, workload, miner):
        """skip_to raises when asked to move backwards; a full SLE run
        over the workload therefore proves forward-only cursors."""
        for pool_query in workload:
            rules = miner.mine(pool_query.query)
            short_list_eager(dblp_index, pool_query.query, rules, None, 2)


class TestRefinementGuarantee:
    def test_every_returned_rq_has_meaningful_results(
        self, dblp_index, workload, miner
    ):
        for pool_query in workload:
            if not pool_query.refinable:
                continue
            rules = miner.mine(pool_query.query)
            response = partition_refine(
                dblp_index, pool_query.query, rules, None, 3
            )
            for refinement in response.refinements:
                assert refinement.slcas, refinement
                for dewey in refinement.slcas:
                    node = dblp_index.tree.get(dewey)
                    assert node is not None
                    text = node.subtree_text().lower() + " " + " ".join(
                        n.tag for n in dblp_index.tree.iter_subtree(dewey)
                    )
                    for keyword in refinement.rq.keywords:
                        assert keyword in text, (refinement, keyword)

    def test_intent_recovered_often(self, dblp_index, workload, miner):
        """The ground-truth intent should usually rank in the Top-3."""
        refinable = [q for q in workload if q.refinable]
        hits = 0
        for pool_query in refinable:
            rules = miner.mine(pool_query.query)
            response = partition_refine(
                dblp_index, pool_query.query, rules, None, 3
            )
            keys = [r.rq.key for r in response.refinements]
            if frozenset(pool_query.intent) in keys:
                hits += 1
        assert hits >= len(refinable) * 0.5, (hits, len(refinable))
