"""Tests for RefinedQuery and the RQSortedList."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RefinedQuery, RQSortedList
from repro.errors import RefinementError


class TestRefinedQuery:
    def test_set_identity(self):
        a = RefinedQuery(("x", "y"), 1)
        b = RefinedQuery(("y", "x"), 5)
        assert a == b
        assert hash(a) == hash(b)

    def test_key(self):
        assert RefinedQuery(("x", "y"), 1).key == frozenset({"x", "y"})

    def test_empty_rejected(self):
        with pytest.raises(RefinementError):
            RefinedQuery((), 0)

    def test_negative_dissimilarity_rejected(self):
        with pytest.raises(RefinementError):
            RefinedQuery(("x",), -1)


class TestRQSortedList:
    def test_insert_and_order(self):
        lst = RQSortedList(capacity=3)
        for keywords, ds in [("a", 3), ("b", 1), ("c", 2)]:
            lst.insert(RefinedQuery((keywords,), ds))
        assert [q.dissimilarity for q in lst] == [1, 2, 3]

    def test_capacity_eviction(self):
        lst = RQSortedList(capacity=2)
        lst.insert(RefinedQuery(("a",), 3))
        lst.insert(RefinedQuery(("b",), 1))
        lst.insert(RefinedQuery(("c",), 2))
        assert [q.keywords for q in lst] == [("b",), ("c",)]

    def test_rejects_worse_when_full(self):
        lst = RQSortedList(capacity=1)
        lst.insert(RefinedQuery(("a",), 1))
        assert lst.insert(RefinedQuery(("b",), 5)) is False
        assert len(lst) == 1

    def test_duplicate_key_keeps_smaller(self):
        lst = RQSortedList(capacity=3)
        lst.insert(RefinedQuery(("a", "b"), 5))
        lst.insert(RefinedQuery(("b", "a"), 2))
        assert len(lst) == 1
        assert lst.queries()[0].dissimilarity == 2

    def test_duplicate_key_ignores_larger(self):
        lst = RQSortedList(capacity=3)
        lst.insert(RefinedQuery(("a",), 2))
        assert lst.insert(RefinedQuery(("a",), 7)) is True
        assert lst.queries()[0].dissimilarity == 2

    def test_max_dissimilarity_infinite_until_full(self):
        lst = RQSortedList(capacity=2)
        assert lst.max_dissimilarity() == float("inf")
        lst.insert(RefinedQuery(("a",), 1))
        assert lst.max_dissimilarity() == float("inf")
        lst.insert(RefinedQuery(("b",), 4))
        assert lst.max_dissimilarity() == 4

    def test_kth_dissimilarity(self):
        lst = RQSortedList(capacity=4)
        for i in range(3):
            lst.insert(RefinedQuery((f"k{i}",), i + 1))
        assert lst.kth_dissimilarity(1) == 1
        assert lst.kth_dissimilarity(3) == 3
        assert lst.kth_dissimilarity(4) == float("inf")

    def test_membership(self):
        lst = RQSortedList(capacity=2)
        rq = RefinedQuery(("a",), 1)
        lst.insert(rq)
        assert rq in lst
        assert lst.has_key(frozenset({"a"}))
        assert not lst.has_key(frozenset({"b"}))

    def test_capacity_validation(self):
        with pytest.raises(RefinementError):
            RQSortedList(capacity=0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sets(
                    st.sampled_from("abcdef"), min_size=1, max_size=3
                ),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=30,
        ),
        st.integers(min_value=1, max_value=6),
    )
    def test_matches_naive_model(self, inserts, capacity):
        """The list equals a naive sort/truncate over best-per-key."""
        lst = RQSortedList(capacity=capacity)
        for keywords, ds in inserts:
            lst.insert(RefinedQuery(tuple(sorted(keywords)), ds))

        # Naive model ignores the "reject when full" pruning, which can
        # keep a worse-ranked duplicate out; the list is allowed to be
        # a subset but what it keeps must be correctly ordered and
        # within capacity, and its best entry must equal the model's.
        best = {}
        for keywords, ds in inserts:
            key = frozenset(keywords)
            if key not in best or ds < best[key]:
                best[key] = ds
        got = [(q.key, q.dissimilarity) for q in lst]
        assert len(got) <= capacity
        assert [d for _, d in got] == sorted(d for _, d in got)
        if best:
            assert got, "list should never be empty when inserts happened"
            model_best = min(best.values())
            assert got[0][1] == model_best
        for key, ds in got:
            assert best[key] <= ds
