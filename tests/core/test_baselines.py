"""Tests for the OR-relaxation and static-cleaning baselines."""

import pytest

from repro.core import (
    cleaned_query_has_meaningful_result,
    or_search,
    static_clean,
)
from repro.errors import QueryError
from repro.lexicon import RuleMiner


@pytest.fixture(scope="module")
def miner(dblp_index):
    return RuleMiner(dblp_index.inverted.keywords())


class TestORSearch:
    def test_never_empty_when_any_keyword_matches(self, dblp_index):
        matches = or_search(dblp_index, "database zzzznonsense")
        assert matches  # "database" alone is enough

    def test_coverage_sorted(self, dblp_index):
        matches = or_search(dblp_index, "database query optimization")
        coverages = [m.coverage for m in matches]
        assert coverages == sorted(coverages, reverse=True)

    def test_full_coverage_first_when_possible(self, dblp_index):
        matches = or_search(dblp_index, "machine learning")
        assert matches[0].coverage == 2

    def test_limit(self, dblp_index):
        matches = or_search(dblp_index, "query", limit=5)
        assert len(matches) <= 5

    def test_covered_keywords_recorded(self, dblp_index):
        for match in or_search(dblp_index, "database query"):
            assert match.covered <= {"database", "query"}
            assert match.coverage >= 1

    def test_empty_query(self, dblp_index):
        with pytest.raises(QueryError):
            or_search(dblp_index, "")

    def test_all_absent_keywords(self, dblp_index):
        assert or_search(dblp_index, "zzz qqq") == []

    def test_recall_but_no_conjunction(self, dblp_index):
        """The paper's criticism: OR relaxation returns matches even
        when no subtree holds all keywords — precision collapses."""
        matches = or_search(dblp_index, "skyline 1991 hobby swimming")
        partial = [m for m in matches if m.coverage < 4]
        assert partial  # plenty of one-keyword noise


class TestStaticClean:
    def test_typo_cleaned(self, dblp_index, miner):
        query = "databse query"
        cleaned = static_clean(dblp_index, query, miner.mine(query.split()))
        assert cleaned
        assert cleaned[0].key == frozenset({"database", "query"})

    def test_no_result_guarantee(self, dblp_index, miner):
        """The KQC gap: a cleaned query can still answer nothing.

        Construct a query whose cleaned keywords all exist in the
        corpus but (very likely) never meaningfully co-occur; assert
        that static cleaning happily returns it anyway.
        """
        vocabulary = dblp_index.inverted.keywords()
        lengths = [(dblp_index.inverted.list_length(k), k) for k in vocabulary]
        lengths.sort()
        rare = [k for _, k in lengths[:8]]
        found_gap = False
        for i in range(len(rare) - 2):
            query = " ".join(rare[i : i + 3])
            cleaned = static_clean(
                dblp_index, query, miner.mine(query.split())
            )
            if cleaned and not cleaned_query_has_meaningful_result(
                dblp_index, cleaned[0]
            ):
                found_gap = True
                break
        assert found_gap, "expected at least one unanswerable cleaned query"

    def test_unreachable_query(self, dblp_index, miner):
        cleaned = static_clean(
            dblp_index, "zzzzz qqqqq", miner.mine(["zzzzz", "qqqqq"])
        )
        assert cleaned == []

    def test_empty_query(self, dblp_index, miner):
        with pytest.raises(QueryError):
            static_clean(dblp_index, "", miner.mine([]))

    def test_xrefine_always_answerable(self, dblp_index, dblp_engine, miner):
        """Contrast: every refinement XRefine returns has results."""
        from repro.workload import WorkloadGenerator

        workload = WorkloadGenerator(dblp_index, seed=71)
        for _ in range(5):
            pool_query = workload.refinable_query()
            response = dblp_engine.search(pool_query.query, k=3)
            for refinement in response.refinements:
                assert refinement.slcas
