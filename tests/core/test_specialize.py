"""Tests for query specialization (the Section IX future work)."""

import pytest

from repro.core import specialize_query
from repro.errors import QueryError


class TestFocusedQueries:
    def test_focused_query_untouched(self, dblp_index):
        response = specialize_query(
            dblp_index, "skyline computation", broad_threshold=20
        )
        assert not response.is_broad
        assert response.suggestions == []

    def test_original_results_reported(self, dblp_index):
        response = specialize_query(dblp_index, "skyline")
        assert len(response.original_results) >= 0

    def test_empty_query_rejected(self, dblp_index):
        with pytest.raises(QueryError):
            specialize_query(dblp_index, "")


class TestBroadQueries:
    @pytest.fixture()
    def broad(self, dblp_index):
        return specialize_query(
            dblp_index, "query", k=3, broad_threshold=10
        )

    def test_detected_as_broad(self, broad):
        assert broad.is_broad
        assert len(broad.original_results) >= 10

    def test_suggestions_narrow(self, broad):
        assert broad.suggestions
        original_count = len(broad.original_results)
        for suggestion in broad.suggestions:
            assert 1 <= suggestion.result_count < original_count

    def test_suggestions_extend_query(self, broad):
        for suggestion in broad.suggestions:
            assert "query" in suggestion.keywords
            assert suggestion.expansion in suggestion.keywords
            assert suggestion.expansion != "query"

    def test_results_relate_to_original(self, broad, dblp_index):
        """Lemma 1 corollary: adding a keyword moves each SLCA *up* —
        every specialized result is an ancestor-or-self of (or equal
        to) some original result, never a disjoint subtree."""
        original = set(broad.original_results)
        for suggestion in broad.suggestions:
            for dewey in suggestion.slcas:
                assert any(
                    dewey.is_ancestor_or_self_of(o)
                    or o.is_ancestor_or_self_of(dewey)
                    for o in original
                ), (suggestion.expansion, dewey)

    def test_k_respected(self, dblp_index):
        response = specialize_query(
            dblp_index, "query", k=2, broad_threshold=10
        )
        assert len(response.suggestions) <= 2

    def test_deterministic(self, dblp_index):
        a = specialize_query(dblp_index, "query", k=3, broad_threshold=10)
        b = specialize_query(dblp_index, "query", k=3, broad_threshold=10)
        assert [s.expansion for s in a.suggestions] == [
            s.expansion for s in b.suggestions
        ]

    def test_sorted_by_score(self, broad):
        scores = [s.score for s in broad.suggestions]
        assert scores == sorted(scores, reverse=True)
