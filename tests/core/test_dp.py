"""Tests for the getOptimalRQ dynamic program (Section V, Formula 11).

The DP is validated against an exponential brute-force enumerator of
all refinement sequences, plus the paper's worked examples.
"""

import random

import pytest

from repro.core import get_optimal_rq, get_top_optimal_rqs
from repro.core.dp import dissimilarity
from repro.errors import RefinementError
from repro.lexicon import (
    RuleSet,
    acronym_rules,
    merging_rule,
    split_rule,
    substitution_rule,
)


def brute_force_refinements(query, available, rules):
    """All reachable (frozenset(RQ), min_cost) via exhaustive search.

    Explores the full decision DAG: at each position keep (if the
    keyword exists in the data), delete, or apply any rule whose LHS
    starts at this position (and whose RHS exists in the data).
    """
    available = set(available)
    best = {}

    def search(position, kept, cost):
        if position == len(query):
            key = frozenset(kept)
            if key and (key not in best or cost < best[key]):
                best[key] = cost
            return
        keyword = query[position]
        if keyword in available:
            search(position + 1, kept + (keyword,), cost)
        search(position + 1, kept, cost + rules.deletion_cost)
        for rule in rules.all_rules():
            width = len(rule.lhs)
            if tuple(query[position : position + width]) != rule.lhs:
                continue
            if not all(k in available for k in rule.rhs):
                continue
            search(position + width, kept + rule.rhs, cost + rule.ds)

    search(0, (), 0)
    return best


RULES = RuleSet(
    [
        merging_rule(("on", "line"), "online"),
        merging_rule(("data", "base"), "database"),
        split_rule("online", ("on", "line")),
        substitution_rule("article", "inproceedings"),
        substitution_rule("mecin", "machine", ds=2),
        *acronym_rules("www", ("world", "wide", "web")),
        merging_rule(("learn", "ing"), "learning"),
    ]
)


class TestAgainstBruteForce:
    CASES = [
        (["on", "line", "data", "base"], {"online", "database", "line", "base"}),
        (["on", "line", "data", "base"], {"l", "b"}),
        (["www", "article", "mecin", "learning"],
         {"machine", "inproceedings", "learning", "world", "wide", "web"}),
        (["article", "online", "database"],
         {"inproceedings", "online", "database"}),
        (["online"], {"on", "line"}),
        (["data", "base"], set()),
        (["world", "wide", "web"], {"www"}),
    ]

    @pytest.mark.parametrize("query, available", CASES)
    def test_optimal_matches_brute(self, query, available):
        brute = brute_force_refinements(query, available, RULES)
        optimal = get_optimal_rq(query, available, RULES)
        if not brute:
            assert optimal is None
            return
        assert optimal is not None
        assert optimal.dissimilarity == min(brute.values())
        assert brute[optimal.key] == optimal.dissimilarity

    @pytest.mark.parametrize("query, available", CASES)
    def test_top_list_costs_correct(self, query, available):
        brute = brute_force_refinements(query, available, RULES)
        top = get_top_optimal_rqs(query, available, RULES, limit=10)
        for rq in top:
            assert rq.key in brute
            assert rq.dissimilarity == brute[rq.key]
        costs = [rq.dissimilarity for rq in top]
        assert costs == sorted(costs)

    def test_randomized_against_brute(self):
        rng = random.Random(17)
        lexicon = ["on", "line", "online", "data", "base", "database",
                   "article", "inproceedings", "www", "world", "wide", "web"]
        for _ in range(40):
            query = [rng.choice(lexicon) for _ in range(rng.randint(1, 4))]
            available = set(rng.sample(lexicon, rng.randint(0, 8)))
            brute = brute_force_refinements(query, available, RULES)
            optimal = get_optimal_rq(query, available, RULES)
            if not brute:
                assert optimal is None
            else:
                assert optimal is not None
                assert optimal.dissimilarity == min(brute.values())


class TestPaperExamples:
    def test_example3_worldwide_web(self):
        """Q={WWW, article, mecin, learning} over T from Example 3."""
        query = ["www", "article", "mecin", "learning"]
        available = {
            "machine", "inproceedings", "learning", "world", "wide", "web",
        }
        optimal = get_optimal_rq(query, available, RULES)
        # www -> world wide web (1), article -> inproceedings (1),
        # mecin -> machine (2), learning kept (0): total 4.
        assert optimal.key == frozenset(
            {"world", "wide", "web", "inproceedings", "machine", "learning"}
        )
        assert optimal.dissimilarity == 4

    def test_example4_online_database(self):
        """Q={on, line, data, base}: two merges beat four deletions."""
        query = ["on", "line", "data", "base"]
        optimal = get_optimal_rq(query, {"online", "database"}, RULES)
        assert optimal.key == frozenset({"online", "database"})
        assert optimal.dissimilarity == 2

    def test_example4_partial_witness(self):
        """With only {line, base} available, delete on+data: dSim=4."""
        query = ["on", "line", "data", "base"]
        optimal = get_optimal_rq(query, {"line", "base"}, RULES)
        assert optimal.key == frozenset({"line", "base"})
        assert optimal.dissimilarity == 4


class TestEdgeCases:
    def test_empty_query_rejected(self):
        with pytest.raises(RefinementError):
            get_optimal_rq([], {"x"}, RULES)

    def test_bad_limit_rejected(self):
        with pytest.raises(RefinementError):
            get_top_optimal_rqs(["x"], {"x"}, RULES, limit=0)

    def test_nothing_available(self):
        assert get_optimal_rq(["zebra"], set(), RULES) is None

    def test_keyword_in_data_is_free(self):
        optimal = get_optimal_rq(["online"], {"online"}, RULES)
        assert optimal.dissimilarity == 0
        assert optimal.keywords == ("online",)

    def test_duplicate_keywords_deduplicated(self):
        optimal = get_optimal_rq(
            ["online", "online"], {"online"}, RULES
        )
        assert optimal.keywords == ("online",)

    def test_insensitive_to_keyword_order(self):
        """Section V: getOptimalRQ is insensitive to the order of S."""
        available = {"online", "database"}
        a = get_optimal_rq(["on", "line", "data", "base"], available, RULES)
        # The merging rules require adjacency, so only adjacent-
        # preserving permutations apply them; deletion-only orders
        # still agree on cost for permutations preserving adjacency.
        b = get_optimal_rq(["data", "base", "on", "line"], available, RULES)
        assert a.dissimilarity == b.dissimilarity

    def test_dissimilarity_helper(self):
        value = dissimilarity(
            ["on", "line", "data", "base"],
            {"online", "database"},
            RULES,
        )
        assert value == 2

    def test_dissimilarity_helper_unreachable(self):
        assert dissimilarity(["zebra"], {"lion"}, RULES) is None
