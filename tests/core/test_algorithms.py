"""Behavioral tests for the three refinement algorithms (Section VI)."""

import pytest

from repro.core import partition_refine, short_list_eager, stack_refine
from repro.lexicon import RuleMiner


ALGORITHMS = {
    "stack": lambda index, q, rules, k: stack_refine(index, q, rules),
    "partition": partition_refine,
    "sle": short_list_eager,
}


def mine(index, query):
    return RuleMiner(index.inverted.keywords()).mine(query.split())


@pytest.fixture(params=sorted(ALGORITHMS))
def run(request):
    fn = ALGORITHMS[request.param]
    if request.param == "stack":
        return lambda index, q, rules=None, k=1: stack_refine(
            index, q, rules if rules is not None else mine(index, q)
        )
    return lambda index, q, rules=None, k=1: fn(
        index, q, rules if rules is not None else mine(index, q), None, k
    )


class TestDirectHit:
    def test_query_with_result_not_refined(self, figure1_index, run):
        response = run(figure1_index, "xml twig")
        assert not response.needs_refinement
        assert response.original_results
        assert response.refinements == []

    def test_original_results_meaningful(self, figure1_index, run):
        response = run(figure1_index, "database 2003")
        assert not response.needs_refinement
        for dewey in response.original_results:
            node = figure1_index.tree.node(dewey)
            assert node.node_type[:2] == ("bib", "author")


class TestMergingCase:
    def test_example4(self, figure1_index, run):
        """Q={on,line,data,base}: optimal RQ={online,database}, dSim 2."""
        response = run(figure1_index, "on line data base")
        assert response.needs_refinement
        best = response.best
        assert best is not None
        assert best.rq.dissimilarity == 2
        assert best.rq.key == frozenset({"online", "database"})
        assert best.slcas, "the optimal RQ must have results"

    def test_results_contain_rq_keywords(self, figure1_index, run):
        response = run(figure1_index, "on line data base")
        best = response.best
        for dewey in best.slcas:
            subtree_text = figure1_index.tree.node(dewey).subtree_text()
            for keyword in best.rq.keywords:
                assert keyword in subtree_text.lower()


class TestSynonymCase:
    def test_example1_publication(self, figure1_index, run):
        """Q={database, publication} has no match; synonyms do."""
        response = run(figure1_index, "database publication")
        assert response.needs_refinement
        best = response.best
        assert best is not None
        assert "database" in best.rq.keywords
        assert best.rq.key != frozenset({"database", "publication"})


class TestSpellingCase:
    def test_typo_fixed(self, figure1_index, run):
        response = run(figure1_index, "databse skyline")
        assert response.needs_refinement
        # Optimal: databse->database? But they never co-occur with
        # skyline in one subtree; algorithms must still return
        # *something* meaningful with minimum dissimilarity.
        assert response.best is not None

    def test_typo_with_cooccurring_pair(self, figure1_index, run):
        response = run(figure1_index, "skylne computation")
        best = response.best
        assert best is not None
        assert best.rq.key == frozenset({"skyline", "computation"})


class TestDeletionCase:
    def test_overconstrained(self, figure1_index, run):
        """Q4-style: all keywords exist but never together."""
        response = run(figure1_index, "xml twig 2003 reading")
        assert response.needs_refinement
        best = response.best
        assert best is not None
        assert best.rq.key < frozenset({"xml", "twig", "2003", "reading"})


class TestNoRefinementPossible:
    def test_garbage_query(self, figure1_index, run):
        response = run(figure1_index, "zzzz qqqq")
        assert response.needs_refinement
        assert response.refinements == []

    def test_search_for_empty(self, figure1_index, run):
        response = run(figure1_index, "zzzz qqqq")
        assert response.search_for == []


class TestTopK:
    def test_k_respected(self, figure1_index):
        rules = mine(figure1_index, "database publication")
        for k in (1, 2, 3):
            response = partition_refine(
                figure1_index, "database publication", rules, None, k
            )
            assert len(response.refinements) <= k

    def test_topk_sorted_by_rank(self, figure1_index):
        rules = mine(figure1_index, "database publication")
        response = partition_refine(
            figure1_index, "database publication", rules, None, 3
        )
        scores = [r.rank_score for r in response.refinements]
        assert scores == sorted(scores, reverse=True)

    def test_sle_topk(self, figure1_index):
        rules = mine(figure1_index, "database publication")
        response = short_list_eager(
            figure1_index, "database publication", rules, None, 3
        )
        assert 1 <= len(response.refinements) <= 3


class TestStats:
    def test_scan_accounting_present(self, figure1_index, run):
        response = run(figure1_index, "on line data base")
        stats = response.stats
        # SLE touches lists via random-access probes; the other two
        # consume postings through cursors.
        assert stats.postings_scanned > 0 or stats.probes > 0
        assert stats.elapsed_seconds >= 0

    def test_partition_skip_optimization(self, dblp_index):
        """With a full candidate list, hopeless partitions are skipped."""
        rules = mine(dblp_index, "databse query")
        response = partition_refine(dblp_index, "databse query", rules, None, 1)
        stats = response.stats
        assert stats.partitions_visited > 0
        # The skip optimization only fires on multi-partition corpora
        # with a full list; DBLP guarantees both.
        assert stats.partitions_skipped >= 0
        assert stats.dp_invocations >= 1

    def test_sle_uses_probes(self, dblp_index):
        rules = mine(dblp_index, "skyline computaton")
        response = short_list_eager(
            dblp_index, "skyline computaton", rules, None, 2
        )
        assert response.stats.probes > 0
