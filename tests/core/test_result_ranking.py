"""Tests for within-query result ranking (XML TF*IDF, per [6])."""

from repro.core.ranking import rank_response_results, rank_results, score_result
from repro.xmltree import Dewey, parse
from repro.index import build_document_index


class TestScoreResult:
    def test_matching_subtree_scores_positive(self, figure1_index):
        score = score_result(
            figure1_index, Dewey((0, 0, 1, 0)), ["database", "2003"]
        )
        assert score > 0

    def test_unrelated_subtree_scores_zero(self, figure1_index):
        score = score_result(
            figure1_index, Dewey((0, 1, 2)), ["database"]  # hobby node
        )
        assert score == 0.0

    def test_unknown_label_zero(self, figure1_index):
        assert score_result(figure1_index, Dewey((0, 99)), ["x"]) == 0.0

    def test_density_matters(self):
        """Same matches, smaller subtree -> higher score."""
        tree = parse(
            "<r>"
            "<a><t>xml</t></a>"
            "<a><t>xml</t><pad>lots of other words here indeed</pad></a>"
            "</r>"
        )
        index = build_document_index(tree)
        dense = score_result(index, Dewey((0, 0)), ["xml"])
        diluted = score_result(index, Dewey((0, 1)), ["xml"])
        assert dense > diluted


class TestRankResults:
    def test_orders_by_score(self, figure1_index):
        labels = [Dewey((0, 1, 2)), Dewey((0, 0, 1, 0))]  # hobby, inproc
        ranked = rank_results(figure1_index, labels, ["database", "2003"])
        assert ranked[0] == Dewey((0, 0, 1, 0))

    def test_ties_break_by_document_order(self, figure1_index):
        labels = [Dewey((0, 1, 2)), Dewey((0, 2))]
        ranked = rank_results(figure1_index, labels, ["zzz"])
        assert ranked == sorted(labels)

    def test_permutation_invariant(self, dblp_index, dblp_engine):
        response = dblp_engine.search("databse query", k=1)
        labels = list(response.best.slcas)
        a = rank_results(dblp_index, labels, response.best.rq.keywords)
        b = rank_results(
            dblp_index, list(reversed(labels)), response.best.rq.keywords
        )
        assert a == b


class TestRankResponse:
    def test_refinement_results_reordered(self, dblp_index, dblp_engine):
        response = dblp_engine.search("databse query", k=2)
        rank_response_results(dblp_index, response)
        for refinement in response.refinements:
            scores = [
                score_result(dblp_index, dewey, refinement.rq.keywords)
                for dewey in refinement.slcas
            ]
            assert scores == sorted(scores, reverse=True)

    def test_direct_results_reordered(self, dblp_index, dblp_engine):
        response = dblp_engine.search("database query", k=1)
        assert not response.needs_refinement
        rank_response_results(dblp_index, response)
        scores = [
            score_result(dblp_index, dewey, response.query)
            for dewey in response.original_results
        ]
        assert scores == sorted(scores, reverse=True)
