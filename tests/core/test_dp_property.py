"""Property-based tests for getOptimalRQ with *generated* rule sets.

The fixed-rule tests in test_dp.py pin the paper's examples; these
hypothesis tests let the rule set itself vary — random merges, splits
and substitutions over a small lexicon — and check the DP against the
exhaustive enumerator on every draw.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import get_optimal_rq, get_top_optimal_rqs
from repro.lexicon import RuleSet, merging_rule, split_rule, substitution_rule

from .test_dp import brute_force_refinements

WORDS = ["on", "line", "online", "data", "base", "database", "key",
         "word", "keyword", "xml", "query"]

COMPOUNDS = [("on", "line", "online"), ("data", "base", "database"),
             ("key", "word", "keyword")]


@st.composite
def rule_sets(draw):
    rules = []
    for left, right, whole in COMPOUNDS:
        if draw(st.booleans()):
            rules.append(merging_rule((left, right), whole))
        if draw(st.booleans()):
            rules.append(split_rule(whole, (left, right)))
    substitution_count = draw(st.integers(0, 4))
    for _ in range(substitution_count):
        source = draw(st.sampled_from(WORDS))
        target = draw(st.sampled_from(WORDS))
        if source != target:
            ds = draw(st.integers(1, 3))
            rules.append(substitution_rule(source, target, ds=ds))
    deletion_cost = draw(st.integers(2, 4))
    return RuleSet(rules, deletion_cost=deletion_cost)


queries = st.lists(st.sampled_from(WORDS), min_size=1, max_size=4)
availability = st.sets(st.sampled_from(WORDS), max_size=8)


class TestDPProperties:
    @settings(max_examples=150, deadline=None)
    @given(query=queries, available=availability, rules=rule_sets())
    def test_optimal_cost_matches_brute_force(self, query, available, rules):
        brute = brute_force_refinements(query, available, rules)
        optimal = get_optimal_rq(query, available, rules)
        if not brute:
            assert optimal is None
        else:
            assert optimal is not None
            assert optimal.dissimilarity == min(brute.values())
            assert brute[optimal.key] == optimal.dissimilarity

    @settings(max_examples=80, deadline=None)
    @given(query=queries, available=availability, rules=rule_sets())
    def test_top_list_sound_and_sorted(self, query, available, rules):
        brute = brute_force_refinements(query, available, rules)
        top = get_top_optimal_rqs(query, available, rules, limit=8)
        costs = [rq.dissimilarity for rq in top]
        assert costs == sorted(costs)
        keys = [rq.key for rq in top]
        assert len(keys) == len(set(keys)), "candidates must be distinct"
        for rq in top:
            assert rq.key in brute
            assert rq.dissimilarity == brute[rq.key]
        for rq in top:
            assert set(rq.keywords) <= available

    @settings(max_examples=80, deadline=None)
    @given(query=queries, available=availability, rules=rule_sets())
    def test_monotone_in_availability(self, query, available, rules):
        """More available keywords never increase the optimal cost."""
        restricted = get_optimal_rq(query, available, rules)
        widened = get_optimal_rq(query, available | {"xml"}, rules)
        if restricted is not None:
            assert widened is not None
            assert widened.dissimilarity <= restricted.dissimilarity

    @settings(max_examples=60, deadline=None)
    @given(query=queries, rules=rule_sets())
    def test_full_availability_keeps_query(self, query, rules):
        """With every keyword available, keeping Q verbatim costs 0."""
        optimal = get_optimal_rq(query, set(WORDS), rules)
        assert optimal is not None
        assert optimal.dissimilarity == 0
        assert optimal.key == frozenset(query)
