"""Property-based cross-algorithm agreement on generated mini-corpora.

Rather than one fixed corpus, hypothesis builds small random
bibliographies and dirty queries; the invariants checked per draw:

* all three refinement algorithms agree on whether Q needs refinement;
* when refinable, the minimum candidate dissimilarity agrees;
* every returned refinement has non-empty meaningful results whose
  subtrees actually contain the RQ's keywords.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import partition_refine, short_list_eager, stack_refine
from repro.index import build_document_index
from repro.lexicon import RuleMiner
from repro.xmltree import build_tree

WORDS = ["xml", "query", "database", "online", "search", "twig",
         "skyline", "ranking"]


@st.composite
def corpora(draw):
    author_count = draw(st.integers(2, 5))
    authors = []
    for a in range(author_count):
        pub_count = draw(st.integers(1, 3))
        pubs = []
        for _ in range(pub_count):
            words = draw(
                st.lists(st.sampled_from(WORDS), min_size=2, max_size=4)
            )
            pubs.append(
                (
                    "inproceedings",
                    None,
                    [("title", " ".join(words)), ("year", "2005")],
                )
            )
        authors.append(
            (
                "author",
                None,
                [("name", f"auth{a}"), ("publications", None, pubs)],
            )
        )
    return build_tree(("bib", None, authors))


dirty_queries = st.lists(
    st.sampled_from(WORDS + ["databse", "onlin", "skylne", "que", "ry"]),
    min_size=1,
    max_size=3,
)


class TestCrossAlgorithmProperties:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(tree=corpora(), query=dirty_queries)
    def test_agreement(self, tree, query):
        index = build_document_index(tree)
        rules = RuleMiner(index.inverted.keywords()).mine(query)

        responses = {
            "stack": stack_refine(index, query, rules),
            "partition": partition_refine(index, query, rules, None, 2),
            "sle": short_list_eager(index, query, rules, None, 2),
        }

        flags = {r.needs_refinement for r in responses.values()}
        assert len(flags) == 1

        if not responses["partition"].needs_refinement:
            result_sets = {
                name: tuple(r.original_results)
                for name, r in responses.items()
            }
            assert len(set(result_sets.values())) == 1
            return

        minima = {
            name: min(
                (c.rq.dissimilarity for c in response.candidates),
                default=None,
            )
            for name, response in responses.items()
        }
        present = {v for v in minima.values() if v is not None}
        assert len(present) <= 1, minima

        for response in responses.values():
            for refinement in response.refinements:
                assert refinement.slcas
                for dewey in refinement.slcas:
                    node = index.tree.get(dewey)
                    haystack = (
                        node.subtree_text().lower()
                        + " "
                        + " ".join(
                            n.tag for n in index.tree.iter_subtree(dewey)
                        )
                    )
                    for keyword in refinement.rq.keywords:
                        assert keyword in haystack
