"""Tests for the XRefine engine facade."""

import pytest

from repro import XRefine
from repro.errors import QueryError
from repro.lexicon import RuleSet


class TestConstruction:
    def test_from_xml(self):
        engine = XRefine.from_xml("<bib><author><name>x</name></author></bib>")
        assert len(engine.index.tree) == 3

    def test_from_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<bib><author><name>x</name></author></bib>")
        engine = XRefine.from_file(path)
        assert engine.index.tree.root.tag == "bib"

    def test_from_tree(self, figure1_tree):
        engine = XRefine.from_tree(figure1_tree)
        assert engine.index.tree is figure1_tree


class TestSearch:
    def test_search_direct(self, figure1_engine):
        response = figure1_engine.search("xml twig")
        assert not response.needs_refinement

    def test_search_refines(self, figure1_engine):
        response = figure1_engine.search("on line data base", k=2)
        assert response.needs_refinement
        assert response.best.rq.key == frozenset({"online", "database"})

    def test_algorithms_selectable(self, figure1_engine):
        for algorithm in ("partition", "sle", "stack"):
            response = figure1_engine.search(
                "database publication", algorithm=algorithm
            )
            assert response.needs_refinement

    def test_unknown_algorithm(self, figure1_engine):
        with pytest.raises(QueryError):
            figure1_engine.search("xml", algorithm="quantum")

    def test_empty_query(self, figure1_engine):
        with pytest.raises(QueryError):
            figure1_engine.search("   ")

    def test_query_as_list(self, figure1_engine):
        response = figure1_engine.search(["XML", "Twig"])
        assert not response.needs_refinement

    def test_prebuilt_rules(self, figure1_engine):
        # An empty rule set restricts refinement to deletions only.
        response = figure1_engine.search(
            "database publication", rules=RuleSet()
        )
        assert response.needs_refinement
        for refinement in response.refinements:
            assert refinement.rq.key < frozenset({"database", "publication"})


class TestSLCASearch:
    def test_all_baselines_agree(self, figure1_engine):
        results = {
            name: figure1_engine.slca_search("database 2003", algorithm=name)
            for name in ("stack", "scan", "indexed", "multiway")
        }
        values = list(results.values())
        assert all(v == values[0] for v in values)

    def test_unknown_algorithm(self, figure1_engine):
        with pytest.raises(QueryError):
            figure1_engine.slca_search("xml", algorithm="warp")

    def test_empty_query(self, figure1_engine):
        with pytest.raises(QueryError):
            figure1_engine.slca_search("")

    def test_node_accessor(self, figure1_engine):
        slcas = figure1_engine.slca_search("database 2003")
        node = figure1_engine.node(slcas[0])
        assert node is not None


class TestMineRules:
    def test_rules_relevant_to_query(self, figure1_engine):
        rules = figure1_engine.mine_rules("on line data base")
        merged = {r.rhs for r in rules.all_rules()}
        assert ("online",) in merged
        assert ("database",) in merged
