"""Tests for the ranking model (Formulas 2-10) and its variants."""

import math

import pytest

from repro.core import RefinedQuery, full_model, variant_without_guideline
from repro.core.ranking import (
    dependence_for_type,
    importance,
    keyword_importance,
    similarity_for_type,
)
from repro.core.ranking.model import RankingModel
from repro.slca import infer_search_for

T_INPROC = ("bib", "author", "publications", "inproceedings")
T_AUTHOR = ("bib", "author")


class TestFormula2:
    def test_by_hand(self, figure1_index):
        rq = ("database", "2003")
        total = sum(figure1_index.tf(k, T_INPROC) for k in rq)
        g = figure1_index.distinct_keywords(T_INPROC)
        assert importance(figure1_index, rq, T_INPROC) == pytest.approx(
            total / g
        )

    def test_unknown_type(self, figure1_index):
        assert importance(figure1_index, ("xml",), ("nope",)) == 0.0

    def test_more_frequent_scores_higher(self, dblp_index):
        types = dblp_index.statistics.types()
        t = next(t for t in types if t[-1] == "inproceedings")
        frequent = importance(dblp_index, ("query",), t)
        rare = importance(dblp_index, ("dewey",), t)
        assert frequent > rare


class TestFormula3:
    def test_monotone_in_df(self, dblp_index):
        t = next(
            t for t in dblp_index.statistics.types() if t[-1] == "author"
        )
        values = {
            k: keyword_importance(dblp_index, k, t)
            for k in ("query", "skyline")
        }
        df = {k: dblp_index.xml_df(k, t) for k in ("query", "skyline")}
        # Rarer keyword (smaller XML DF) is more discriminative.
        assert df["skyline"] < df["query"]
        assert values["skyline"] > values["query"]

    def test_smoothed_positive(self, figure1_index):
        # Even a keyword under every node keeps a positive importance.
        assert keyword_importance(figure1_index, "author", ("bib",)) > 0

    def test_unknown_type_zero(self, figure1_index):
        assert keyword_importance(figure1_index, "xml", ("nope",)) == 0.0


class TestFormula4:
    def test_guideline2_example2_direction(self, dblp_index):
        """Keeping the discriminative keyword must outrank losing it."""
        t = next(
            t for t in dblp_index.statistics.types()
            if t[-1] == "inproceedings"
        )
        original = ("xml", "twig", "pattern", "join")
        # Identify the most/least discriminative of the two dropped.
        df_pattern = dblp_index.xml_df("pattern", t)
        df_join = dblp_index.xml_df("join", t)
        if df_pattern == df_join:
            pytest.skip("corpus drew equal DFs; direction untestable")
        keep_discriminative = ("xml", "twig") + (
            ("join",) if df_join < df_pattern else ("pattern",)
        )
        keep_common = ("xml", "twig") + (
            ("pattern",) if df_join < df_pattern else ("join",)
        )
        s_disc = similarity_for_type(dblp_index, keep_discriminative, original, t)
        s_comm = similarity_for_type(dblp_index, keep_common, original, t)
        # Guideline 2's IDF factor favours the discriminative keep; the
        # TF factor may disagree, so compare with G1 neutralized.
        s_disc_idf = similarity_for_type(
            dblp_index, keep_discriminative, original, t, use_g1=False
        )
        s_comm_idf = similarity_for_type(
            dblp_index, keep_common, original, t, use_g1=False
        )
        assert s_disc_idf > s_comm_idf

    def test_literal_domain_optional(self, figure1_index):
        rq = ("online", "database")
        original = ("on", "line", "data", "base")
        literal = similarity_for_type(
            figure1_index, rq, original, T_AUTHOR, domain="sym_diff"
        )
        consistent = similarity_for_type(
            figure1_index, rq, original, T_AUTHOR, domain="rq"
        )
        assert literal >= 0 and consistent >= 0

    def test_unknown_domain_rejected(self, figure1_index):
        with pytest.raises(ValueError):
            similarity_for_type(
                figure1_index, ("x",), ("x",), T_AUTHOR, domain="bogus"
            )


class TestFormulas5and6:
    def test_decay_guideline4(self, figure1_index):
        model = full_model()
        search_for = infer_search_for(figure1_index, ["online", "database"])
        near = RefinedQuery(("online", "database"), 1)
        far = RefinedQuery(("online", "database"), 6)
        s_near = model.similarity_score(
            figure1_index, near, ("on", "line"), search_for
        )
        s_far = model.similarity_score(
            figure1_index, far, ("on", "line"), search_for
        )
        assert s_near > s_far
        assert s_far == pytest.approx(s_near * 0.8 ** 5)

    def test_no_search_for_zero(self, figure1_index):
        model = full_model()
        rq = RefinedQuery(("online",), 1)
        assert model.similarity_score(figure1_index, rq, ("x",), []) == 0.0


class TestDependence:
    def test_cooccurring_pair_positive(self, figure1_index):
        assert dependence_for_type(
            figure1_index, ("database", "2003"), T_INPROC
        ) > 0

    def test_single_keyword_zero(self, figure1_index):
        assert dependence_for_type(figure1_index, ("xml",), T_INPROC) == 0.0

    def test_duplicates_collapsed(self, figure1_index):
        assert dependence_for_type(
            figure1_index, ("xml", "xml"), T_INPROC
        ) == 0.0

    def test_cooccurring_beats_disjoint(self, dblp_index):
        t = next(
            t for t in dblp_index.statistics.types()
            if t[-1] == "inproceedings"
        )
        # Same-area terms co-occur in titles; cross-area mostly don't.
        same_area = dependence_for_type(dblp_index, ("machine", "learning"), t)
        cross = dependence_for_type(dblp_index, ("machine", "slca"), t)
        assert same_area > cross


class TestFormula10:
    def test_alpha_beta_weighting(self, figure1_index):
        search_for = infer_search_for(figure1_index, ["online", "database"])
        rq = RefinedQuery(("online", "database"), 2)
        query = ("on", "line", "data", "base")
        sim_only = RankingModel(alpha=1.0, beta=0.0)
        dep_only = RankingModel(alpha=0.0, beta=1.0)
        both = RankingModel(alpha=1.0, beta=1.0)
        s = sim_only.rank(figure1_index, rq, query, search_for)
        d = dep_only.rank(figure1_index, rq, query, search_for)
        b = both.rank(figure1_index, rq, query, search_for)
        assert b == pytest.approx(s + d)

    def test_rank_all_sorted(self, figure1_index):
        search_for = infer_search_for(figure1_index, ["online", "database"])
        model = full_model()
        rqs = [
            RefinedQuery(("online", "database"), 2),
            RefinedQuery(("online",), 4),
            RefinedQuery(("database",), 4),
        ]
        ranked = model.rank_all(
            figure1_index, rqs, ("on", "line", "data", "base"), search_for
        )
        scores = [score for score, _ in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            RankingModel(decay=1.0)
        with pytest.raises(ValueError):
            RankingModel(decay=0.0)


class TestVariants:
    def test_rs_variants_differ_from_rs0(self, figure1_index):
        search_for = infer_search_for(figure1_index, ["online", "database"])
        rq = RefinedQuery(("online", "database"), 2)
        query = ("on", "line", "data", "base")
        base = full_model().similarity_score(
            figure1_index, rq, query, search_for
        )
        for i in (1, 2, 4):
            variant = variant_without_guideline(i)
            value = variant.similarity_score(
                figure1_index, rq, query, search_for
            )
            assert value != base, f"RS{i} should change the score"

    def test_rs3_uses_single_type(self, dblp_index):
        search_for = infer_search_for(
            dblp_index, ["database", "query"],
        )
        if len(search_for) < 2:
            pytest.skip("corpus inferred a single search-for type")
        rq = RefinedQuery(("database", "query"), 1)
        rs0 = full_model().similarity_score(
            dblp_index, rq, ("database", "queri"), search_for
        )
        rs3 = variant_without_guideline(3).similarity_score(
            dblp_index, rq, ("database", "queri"), search_for
        )
        assert rs3 != rs0

    def test_invalid_variant_index(self):
        with pytest.raises(ValueError):
            variant_without_guideline(5)
