"""Tests for QueryContext plumbing and the response value objects."""

import pytest

from repro.core import RefinedQuery
from repro.core.common import QueryContext
from repro.core.result import RankedRefinement, RefinementResponse, ScanStats
from repro.errors import QueryError
from repro.lexicon import RuleMiner, RuleSet
from repro.xmltree import Dewey


class TestQueryContext:
    def test_keyword_space_includes_generated(self, figure1_index):
        rules = RuleMiner(figure1_index.inverted.keywords()).mine(
            ["on", "line"]
        )
        context = QueryContext(figure1_index, ["on", "line"], rules)
        assert "online" in context.keyword_space
        assert context.query == ("on", "line")

    def test_absent_generated_keywords_pruned(self, figure1_index):
        from repro.lexicon import substitution_rule

        rules = RuleSet([substitution_rule("xml", "zebra")])
        context = QueryContext(figure1_index, ["xml"], rules)
        assert "zebra" not in context.keyword_space

    def test_query_terms_normalized(self, figure1_index):
        context = QueryContext(figure1_index, "XML Twig", RuleSet())
        assert context.query == ("xml", "twig")

    def test_empty_query_rejected(self, figure1_index):
        with pytest.raises(QueryError):
            QueryContext(figure1_index, [], RuleSet())

    def test_search_for_from_keyword_space(self, figure1_index):
        """Pure-typo queries still get search-for candidates via KS."""
        from repro.lexicon import substitution_rule

        rules = RuleSet([substitution_rule("databse", "database")])
        context = QueryContext(figure1_index, ["databse"], rules)
        assert context.search_for  # inferred from "database"

    def test_meaningful_filter(self, figure1_index):
        rules = RuleMiner(figure1_index.inverted.keywords()).mine(
            ["database"]
        )
        context = QueryContext(figure1_index, ["database"], rules)
        root = Dewey.root()
        inproc = Dewey((0, 0, 1, 0))
        assert context.meaningful_only([root, inproc]) == [inproc]


class TestScanStats:
    def test_as_dict_round(self):
        stats = ScanStats()
        stats.postings_scanned = 5
        data = stats.as_dict()
        assert data["postings_scanned"] == 5
        assert set(data) == set(ScanStats.__slots__)


class TestRankedRefinement:
    def test_accessors(self):
        rq = RefinedQuery(("a", "b"), 2)
        ranked = RankedRefinement(rq, [Dewey((0, 1))], rank_score=1.5)
        assert ranked.keywords == ("a", "b")
        assert ranked.dissimilarity == 2
        assert ranked.result_count == 1


class TestRefinementResponse:
    def make(self, refinements):
        return RefinementResponse(
            query=("q",),
            needs_refinement=True,
            original_results=[],
            refinements=refinements,
            search_for=[],
            stats=ScanStats(),
        )

    def test_top_and_best(self):
        items = [
            RankedRefinement(RefinedQuery((f"k{i}",), i), [])
            for i in range(3)
        ]
        response = self.make(items)
        assert response.best is items[0]
        assert response.top(2) == items[:2]

    def test_best_none_when_empty(self):
        assert self.make([]).best is None

    def test_candidates_default_to_refinements(self):
        items = [RankedRefinement(RefinedQuery(("k",), 1), [])]
        response = self.make(items)
        assert response.candidates == items
