"""Input validation at the public engine API boundary."""

import pytest

from repro.core.engine import XRefine
from repro.errors import QueryError, ReproError
from repro.index.builder import build_document_index
from repro.xmltree.build import build_tree


@pytest.fixture(scope="module")
def engine():
    tree = build_tree(
        ("root", None, [("item", "xml database", []), ("b", "query", [])])
    )
    return XRefine(build_document_index(tree))


class TestKValidation:
    @pytest.mark.parametrize("bad", [0, -1, -3])
    def test_non_positive_k_rejected(self, engine, bad):
        with pytest.raises(QueryError, match=">= 1"):
            engine.search("xml", k=bad)

    @pytest.mark.parametrize("bad", [2.5, "3", None, True])
    def test_non_integer_k_rejected(self, engine, bad):
        with pytest.raises(QueryError, match="integer"):
            engine.search("xml", k=bad)

    def test_search_many_validates_k(self, engine):
        with pytest.raises(QueryError):
            engine.search_many(["xml"], k=0)

    def test_valid_k_accepted(self, engine):
        assert engine.search("xml", k=1) is not None
        assert engine.search_many(["xml"], k=2)


class TestEmptyQueryValidation:
    @pytest.mark.parametrize("bad", ["", "   ", "\t\n", [], [""], ["  "]])
    def test_empty_queries_rejected(self, engine, bad):
        with pytest.raises(QueryError, match="empty"):
            engine.search(bad)

    @pytest.mark.parametrize("bad", ["", "  "])
    def test_slca_search_rejects_empty(self, engine, bad):
        with pytest.raises(QueryError, match="empty"):
            engine.slca_search(bad)

    def test_punctuation_only_query_rejected(self, engine):
        # Normalizes to zero terms — same typed error, not a crash.
        with pytest.raises(QueryError, match="empty"):
            engine.search("--- … !!!")

    def test_error_is_a_repro_error(self, engine):
        with pytest.raises(ReproError):
            engine.search("", k=1)


class TestCliValidation:
    def test_cli_reports_validation_error_cleanly(self, tmp_path):
        import io

        from repro.cli import main
        from repro.xmltree import build_tree, write_file

        document = tmp_path / "d.xml"
        write_file(build_tree(("root", "xml", [])), document)
        code = main(
            ["search", str(document), "xml", "-k", "0"], out=io.StringIO()
        )
        assert code == 2
