"""Tests for index persistence (save/load round trips)."""

import pytest

from repro import XRefine
from repro.errors import IndexingError
from repro.index import build_document_index, load_index, save_index
from repro.xmltree import parse


@pytest.fixture()
def saved(tmp_path, figure1_index):
    directory = tmp_path / "idx"
    save_index(figure1_index, directory)
    return directory


class TestSaveLoad:
    def test_files_created(self, saved):
        names = {path.name for path in saved.iterdir()}
        assert names == {
            "document.xml",
            "inverted.db",
            "frequency.db",
            "cooccur.db",
            "statistics.db",
        }

    def test_tree_roundtrip(self, saved, figure1_index):
        loaded = load_index(saved)
        assert len(loaded.tree) == len(figure1_index.tree)
        assert loaded.tree.root.tag == figure1_index.tree.root.tag

    def test_inverted_roundtrip(self, saved, figure1_index):
        loaded = load_index(saved)
        assert loaded.inverted.keywords() == figure1_index.inverted.keywords()
        for keyword in ("database", "xml", "2003"):
            original = list(figure1_index.inverted_list(keyword))
            restored = list(loaded.inverted_list(keyword))
            assert original == restored

    def test_frequency_roundtrip(self, saved, figure1_index):
        loaded = load_index(saved)
        t = ("bib", "author", "publications", "inproceedings")
        for keyword in ("database", "xml", "skyline"):
            assert loaded.xml_df(keyword, t) == figure1_index.xml_df(
                keyword, t
            )
            assert loaded.tf(keyword, t) == figure1_index.tf(keyword, t)

    def test_statistics_roundtrip(self, saved, figure1_index):
        loaded = load_index(saved)
        for node_type, stats in figure1_index.statistics.items():
            assert loaded.node_count(node_type) == stats.node_count
            assert (
                loaded.distinct_keywords(node_type)
                == stats.distinct_keywords
            )

    def test_cooccurrence_consistent(self, saved, figure1_index):
        t = ("bib", "author")
        expected = figure1_index.cooccurrence.count("xml", "2004", t)
        loaded = load_index(saved)
        assert loaded.cooccurrence.count("xml", "2004", t) == expected

    def test_search_results_identical(self, saved, figure1_index):
        original_engine = XRefine(figure1_index)
        loaded_engine = XRefine(load_index(saved))
        for query in ("on line data base", "database publication", "xml twig"):
            a = original_engine.search(query, k=3)
            b = loaded_engine.search(query, k=3)
            assert a.needs_refinement == b.needs_refinement
            assert [r.rq.key for r in a.refinements] == [
                r.rq.key for r in b.refinements
            ]
            assert a.original_results == b.original_results

    def test_missing_directory(self, tmp_path):
        with pytest.raises(IndexingError):
            load_index(tmp_path / "nothing")

    def test_overwrite(self, tmp_path):
        directory = tmp_path / "idx"
        first = build_document_index(parse("<a><b>one</b></a>"))
        save_index(first, directory)
        second = build_document_index(parse("<a><b>two words</b></a>"))
        save_index(second, directory)
        loaded = load_index(directory)
        assert loaded.has_keyword("two")
        assert not loaded.has_keyword("one")


class TestCrashSafety:
    """A killed or failing save must never corrupt the target snapshot."""

    def _break_writes(self, monkeypatch):
        def boom(tree, path):
            raise OSError("disk full (simulated)")

        monkeypatch.setattr("repro.index.persist.write_file", boom)

    def test_failed_save_leaves_no_debris(self, tmp_path, monkeypatch):
        index = build_document_index(parse("<a><b>one</b></a>"))
        self._break_writes(monkeypatch)
        with pytest.raises(OSError):
            save_index(index, tmp_path / "idx")
        assert list(tmp_path.iterdir()) == []

    def test_failed_save_preserves_old_snapshot(self, tmp_path, monkeypatch):
        directory = tmp_path / "idx"
        old = build_document_index(parse("<a><b>precious words</b></a>"))
        save_index(old, directory)
        before = sorted(p.name for p in directory.iterdir())

        new = build_document_index(parse("<a><b>doomed</b></a>"))
        self._break_writes(monkeypatch)
        with pytest.raises(OSError):
            save_index(new, directory)

        # The old snapshot is intact, loadable, and nothing leaked.
        assert sorted(p.name for p in directory.iterdir()) == before
        assert [p.name for p in tmp_path.iterdir()] == ["idx"]
        loaded = load_index(directory)
        assert loaded.has_keyword("precious")
        assert not loaded.has_keyword("doomed")

    def test_target_is_a_file(self, tmp_path):
        target = tmp_path / "idx"
        target.write_bytes(b"in the way")
        index = build_document_index(parse("<a><b>one</b></a>"))
        with pytest.raises(IndexingError):
            save_index(index, target)
        assert target.read_bytes() == b"in the way"
