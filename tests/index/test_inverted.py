"""Tests for inverted lists, cursors and scan accounting."""

import pytest

from repro.errors import IndexingError
from repro.index import InvertedIndex, InvertedList, Posting
from repro.xmltree import Dewey


def make_list(labels, keyword="k"):
    return InvertedList(
        keyword,
        [Posting(Dewey.parse(label), ("r", "x"), 1) for label in labels],
    )


class TestInvertedList:
    def test_rejects_out_of_order(self):
        with pytest.raises(IndexingError):
            make_list(["0.1", "0.0"])

    def test_rejects_duplicates(self):
        with pytest.raises(IndexingError):
            make_list(["0.1", "0.1"])

    def test_len_iter(self):
        lst = make_list(["0.0", "0.1", "0.2"])
        assert len(lst) == 3
        assert [str(p.dewey) for p in lst] == ["0.0", "0.1", "0.2"]

    def test_sublist(self):
        lst = make_list(["0.0.1", "0.1.0", "0.1.5", "0.2"])
        got = lst.sublist(Dewey.parse("0.1"))
        assert [str(p.dewey) for p in got] == ["0.1.0", "0.1.5"]

    def test_contains_under(self):
        lst = make_list(["0.0.1", "0.2"])
        assert lst.contains_under(Dewey.parse("0.0"))
        assert not lst.contains_under(Dewey.parse("0.1"))

    def test_first_under(self):
        lst = make_list(["0.1.0", "0.1.5"])
        assert str(lst.first_under(Dewey.parse("0.1")).dewey) == "0.1.0"
        assert lst.first_under(Dewey.parse("0.3")) is None


class TestCursor:
    def test_sequential_scan(self):
        cursor = make_list(["0.0", "0.1", "0.2"]).cursor()
        seen = []
        while not cursor.exhausted():
            seen.append(str(cursor.advance().dewey))
        assert seen == ["0.0", "0.1", "0.2"]
        assert cursor.scanned == 3

    def test_peek_does_not_consume(self):
        cursor = make_list(["0.0"]).cursor()
        assert cursor.peek() is cursor.peek()
        assert cursor.scanned == 0

    def test_advance_past_end_raises(self):
        cursor = make_list(["0.0"]).cursor()
        cursor.advance()
        with pytest.raises(IndexingError):
            cursor.advance()

    def test_skip_to(self):
        cursor = make_list(["0.0", "0.1", "0.2", "0.3"]).cursor()
        cursor.skip_to(Dewey.parse("0.2"))
        assert str(cursor.peek().dewey) == "0.2"
        assert cursor.scanned == 2  # skipped postings count as scanned

    def test_skip_to_never_rewinds(self):
        cursor = make_list(["0.0", "0.1", "0.2"]).cursor()
        cursor.advance()
        cursor.advance()
        cursor.skip_to(Dewey.parse("0.0"))  # target behind cursor
        assert cursor.position == 2  # unchanged

    def test_probe_does_not_move_cursor(self):
        cursor = make_list(["0.0.1", "0.1.1"]).cursor()
        hits = cursor.probe_partition(Dewey.parse("0.1"))
        assert [str(p.dewey) for p in hits] == ["0.1.1"]
        assert cursor.position == 0
        assert cursor.probes == 1


class TestInvertedIndex:
    def make_index(self):
        index = InvertedIndex()
        index.add_postings(
            "xml",
            [
                Posting(Dewey.parse("0.0.1"), ("bib", "author", "t"), 2),
                Posting(Dewey.parse("0.1.0"), ("bib", "author", "t"), 1),
            ],
        )
        index.add_postings(
            "year", [Posting(Dewey.parse("0.0.2"), ("bib", "author", "year"), 1)]
        )
        return index

    def test_roundtrip(self):
        index = self.make_index()
        postings = list(index.get("xml"))
        assert [str(p.dewey) for p in postings] == ["0.0.1", "0.1.0"]
        assert postings[0].count == 2
        assert postings[0].node_type == ("bib", "author", "t")

    def test_missing_keyword_empty(self):
        assert len(self.make_index().get("nope")) == 0

    def test_contains(self):
        index = self.make_index()
        assert "xml" in index
        assert "nope" not in index

    def test_keywords_sorted(self):
        assert self.make_index().keywords() == ["xml", "year"]

    def test_vocabulary_size(self):
        assert self.make_index().vocabulary_size() == 2

    def test_list_cached(self):
        index = self.make_index()
        assert index.get("xml") is index.get("xml")

    def test_metadata_roundtrip(self):
        index = self.make_index()
        index.save_metadata()
        table_before = index.node_type_table
        index.load_metadata()
        assert index.node_type_table == table_before
        assert index.keywords() == ["xml", "year"]
        assert index.vocabulary_size() == 2
