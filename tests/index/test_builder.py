"""Cross-validation of the one-pass index builder against brute force.

The builder computes ``f_k^T`` (distinct T-typed nodes containing k),
``tf(k, T)``, ``N_T`` and ``G_T`` with a streaming trick; these tests
recompute every statistic by brute-force subtree inspection on small
documents (including randomized ones) and demand exact agreement.
"""

import random
from collections import Counter

from repro.index import build_document_index, node_keywords
from repro.xmltree import build_tree, parse


def brute_stats(tree):
    """(df, tf, n, g) maps computed the slow, obvious way."""
    df = Counter()
    tf = Counter()
    n = Counter()
    vocab_per_type = {}
    for node in tree.iter_nodes():
        n[node.node_type] += 1
        subtree_terms = []
        for descendant in tree.iter_subtree(node.dewey):
            subtree_terms.extend(node_keywords(descendant))
        counts = Counter(subtree_terms)
        for keyword, count in counts.items():
            df[(keyword, node.node_type)] += 1
            tf[(keyword, node.node_type)] += count
        vocab_per_type.setdefault(node.node_type, set()).update(counts)
    g = {t: len(v) for t, v in vocab_per_type.items()}
    return df, tf, n, g


def assert_index_matches_brute(tree):
    index = build_document_index(tree)
    df, tf, n, g = brute_stats(tree)
    for (keyword, node_type), expected in df.items():
        assert index.xml_df(keyword, node_type) == expected, (
            keyword, node_type,
        )
    for (keyword, node_type), expected in tf.items():
        assert index.tf(keyword, node_type) == expected
    for node_type, expected in n.items():
        assert index.node_count(node_type) == expected
    for node_type, expected in g.items():
        assert index.distinct_keywords(node_type) == expected
    # And the reverse: no phantom statistics.
    for keyword in index.inverted.keywords():
        for node_type, df_value, tf_value in index.frequency.types_for(
            keyword
        ):
            assert df[(keyword, node_type)] == df_value
            assert tf[(keyword, node_type)] == tf_value


class TestFigure1Statistics:
    def test_paper_example_xml_df(self, figure1_index):
        """f_XML^inproceedings = 2 in the paper's Figure 1 (our copy)."""
        t_inproc = ("bib", "author", "publications", "inproceedings")
        assert figure1_index.xml_df("xml", t_inproc) == 1
        # "database" appears under two inproceedings.
        assert figure1_index.xml_df("database", t_inproc) == 2

    def test_n_t(self, figure1_index):
        assert figure1_index.node_count(("bib", "author")) == 3
        assert figure1_index.node_count(("bib",)) == 1

    def test_tf_counts_multiplicity(self):
        tree = parse("<a><b>x x x</b><b>x</b></a>")
        index = build_document_index(tree)
        assert index.tf("x", ("a",)) == 4
        assert index.tf("x", ("a", "b")) == 4
        assert index.xml_df("x", ("a", "b")) == 2
        assert index.xml_df("x", ("a",)) == 1

    def test_tag_names_indexed(self, figure1_index):
        assert figure1_index.has_keyword("inproceedings")
        assert figure1_index.has_keyword("hobby")

    def test_absent_keyword(self, figure1_index):
        assert not figure1_index.has_keyword("zebra")
        assert figure1_index.xml_df("zebra", ("bib", "author")) == 0


class TestBruteForceAgreement:
    def test_figure1(self, figure1_tree):
        assert_index_matches_brute(figure1_tree)

    def test_single_node(self):
        assert_index_matches_brute(build_tree(("only", "alpha beta")))

    def test_repeated_terms_across_levels(self):
        tree = parse(
            "<r><x>term</x><y><x>term term</x></y><term>other</term></r>"
        )
        assert_index_matches_brute(tree)

    def test_randomized_trees(self):
        rng = random.Random(99)
        words = ["ape", "bee", "cat", "dog", "elk"]
        tags = ["r", "s", "t"]

        def random_spec(depth):
            tag = rng.choice(tags)
            text = " ".join(
                rng.choice(words) for _ in range(rng.randint(0, 3))
            )
            if depth == 0 or rng.random() < 0.3:
                return (tag, text or None)
            children = [
                random_spec(depth - 1) for _ in range(rng.randint(1, 3))
            ]
            return (tag, text or None, children)

        for _ in range(15):
            assert_index_matches_brute(build_tree(random_spec(3)))


class TestInvertedLists:
    def test_document_order(self, dblp_index):
        for keyword in list(dblp_index.inverted.keywords())[:30]:
            postings = list(dblp_index.inverted_list(keyword))
            labels = [p.dewey.components for p in postings]
            assert labels == sorted(labels)

    def test_posting_counts_match_tf_at_node_type(self, figure1_index):
        # Sum of posting counts for nodes of exactly type T' rolls up
        # into tf at every ancestor type.
        postings = figure1_index.inverted_list("online")
        total = sum(p.count for p in postings)
        assert figure1_index.tf("online", ("bib",)) == total

    def test_empty_list_for_missing(self, figure1_index):
        assert len(figure1_index.inverted_list("missingword")) == 0
