"""Tests for keyword extraction and query normalization."""

from repro.index import extract_terms, node_keywords, normalize_term, query_terms
from repro.xmltree import build_tree


class TestExtractTerms:
    def test_simple(self):
        assert extract_terms("Holistic Twig Joins") == [
            "holistic", "twig", "joins",
        ]

    def test_punctuation_split(self):
        assert extract_terms("twig-joins: optimal, XML!") == [
            "twig", "joins", "optimal", "xml",
        ]

    def test_numbers_kept(self):
        assert extract_terms("published in 2003") == ["published", "in", "2003"]

    def test_empty(self):
        assert extract_terms("") == []
        assert extract_terms(None) == []

    def test_whitespace_only(self):
        assert extract_terms("   \t ") == []

    def test_mixed_alnum(self):
        assert extract_terms("xpath2.0 b+tree") == ["xpath2", "0", "b", "tree"]


class TestNodeKeywords:
    def test_tag_plus_text(self):
        tree = build_tree(("title", "XML search"))
        assert node_keywords(tree.root) == ["title", "xml", "search"]

    def test_tag_only(self):
        tree = build_tree(("publications", None))
        assert node_keywords(tree.root) == ["publications"]

    def test_multiplicity_preserved(self):
        tree = build_tree(("t", "xml xml xml"))
        assert node_keywords(tree.root).count("xml") == 3


class TestQueryTerms:
    def test_from_string(self):
        assert query_terms("XML database") == ["xml", "database"]

    def test_from_comma_string(self):
        assert query_terms("online, newspaper") == ["online", "newspaper"]

    def test_from_list(self):
        assert query_terms(["XML", "Database"]) == ["xml", "database"]

    def test_empty_pieces_dropped(self):
        assert query_terms("  a   b  ") == ["a", "b"]

    def test_normalize_term(self):
        assert normalize_term("DataBase") == "database"
