"""Tests for keyword extraction and query normalization."""

from repro.index import extract_terms, node_keywords, normalize_term, query_terms
from repro.xmltree import build_tree


class TestExtractTerms:
    def test_simple(self):
        assert extract_terms("Holistic Twig Joins") == [
            "holistic", "twig", "joins",
        ]

    def test_punctuation_split(self):
        assert extract_terms("twig-joins: optimal, XML!") == [
            "twig", "joins", "optimal", "xml",
        ]

    def test_numbers_kept(self):
        assert extract_terms("published in 2003") == ["published", "in", "2003"]

    def test_empty(self):
        assert extract_terms("") == []
        assert extract_terms(None) == []

    def test_whitespace_only(self):
        assert extract_terms("   \t ") == []

    def test_mixed_alnum(self):
        assert extract_terms("xpath2.0 b+tree") == ["xpath2", "0", "b", "tree"]


class TestUnicodeSplitting:
    """Non-ASCII separators must split exactly like ASCII ones.

    The original split table only classified codepoints below 128, so
    ``twig–joins`` (en dash) indexed as one unsplittable token
    while the query side saw two — the terms could never match.
    """

    def test_en_dash_splits(self):
        assert extract_terms("twig–joins") == ["twig", "joins"]

    def test_em_dash_splits(self):
        assert extract_terms("xml—database") == ["xml", "database"]

    def test_curly_quotes_split(self):
        assert extract_terms("“holistic” ‘twig’") == [
            "holistic", "twig",
        ]

    def test_nbsp_and_ellipsis_split(self):
        assert extract_terms("xml query…index") == [
            "xml", "query", "index",
        ]

    def test_accented_letters_kept(self):
        assert extract_terms("Sébastien Groß") == [
            "sébastien", "groß",
        ]

    def test_accented_letters_lowercased(self):
        assert normalize_term("SÉBASTIEN") == "sébastien"

    def test_cjk_kept(self):
        assert extract_terms("数据库 query") == [
            "数据库", "query",
        ]

    def test_query_and_index_normalization_agree(self):
        # The same unicode text must tokenize identically whether it
        # arrives as document content or as a keyword query.
        text = "twig–joins “XML” Sébastien"
        assert query_terms(text) == extract_terms(text)

    def test_query_list_pieces_are_split_too(self):
        assert query_terms(["twig–joins", "xml"]) == [
            "twig", "joins", "xml",
        ]


class TestNodeKeywords:
    def test_tag_plus_text(self):
        tree = build_tree(("title", "XML search"))
        assert node_keywords(tree.root) == ["title", "xml", "search"]

    def test_tag_only(self):
        tree = build_tree(("publications", None))
        assert node_keywords(tree.root) == ["publications"]

    def test_multiplicity_preserved(self):
        tree = build_tree(("t", "xml xml xml"))
        assert node_keywords(tree.root).count("xml") == 3


class TestQueryTerms:
    def test_from_string(self):
        assert query_terms("XML database") == ["xml", "database"]

    def test_from_comma_string(self):
        assert query_terms("online, newspaper") == ["online", "newspaper"]

    def test_from_list(self):
        assert query_terms(["XML", "Database"]) == ["xml", "database"]

    def test_empty_pieces_dropped(self):
        assert query_terms("  a   b  ") == ["a", "b"]

    def test_normalize_term(self):
        assert normalize_term("DataBase") == "database"
