"""Delta snapshots: chains, merge-on-demand reads, compaction.

A delta file stacks one session's mutations over a base snapshot (or
an earlier delta).  The invariants: a chain-loaded index answers
exactly like a freshly built index of the mutated document; parent
binding refuses a swapped-out base; and compaction folds the whole
chain into a monolithic snapshot byte-identical to refreezing the
chain-loaded index.
"""

from __future__ import annotations

import pytest

from repro import XRefine, build_document_index
from repro.errors import IndexingError
from repro.index import (
    append_partition,
    compact,
    freeze_index,
    load_frozen_index,
    load_index_chain,
    open_index_source,
    remove_partition,
    resolve_chain,
    save_delta,
)
from repro.xmltree import parse, serialize

QUERIES = ("database systems", "xml search", "stream joins", "skyline")


def author_spec(name, titles):
    return (
        "author",
        None,
        [
            ("name", name),
            (
                "publications",
                None,
                [("inproceedings", None, [("title", t)]) for t in titles],
            ),
        ],
    )


@pytest.fixture(scope="module")
def chain(tmp_path_factory, figure1_index):
    """``(base, delta1, delta2)`` paths for a two-delta chain."""
    root = tmp_path_factory.mktemp("chain")
    base = root / "base.frz"
    freeze_index(figure1_index, base)

    first = load_frozen_index(base)
    append_partition(first, author_spec("carol", ["stream joins tuning"]))
    delta1 = root / "delta1.dlt"
    save_delta(first, delta1, base)

    second = load_index_chain(delta1)
    append_partition(
        second, author_spec("dave", ["adaptive skyline maintenance"])
    )
    remove_partition(second, second.tree.partitions()[0].dewey)
    delta2 = root / "delta2.dlt"
    save_delta(second, delta2, delta1)
    return base, delta1, delta2


@pytest.fixture()
def chain_index(chain):
    return load_index_chain(chain[2])


@pytest.fixture()
def rebuilt(chain_index):
    """A from-scratch index over the chain's final document."""
    return build_document_index(parse(serialize(chain_index.tree)))


class TestChainResolution:
    def test_resolve_walks_to_the_base(self, chain):
        base, delta1, delta2 = chain
        resolved_base, deltas = resolve_chain(str(delta2))
        assert resolved_base == str(base.resolve())
        assert deltas == [str(delta1.resolve()), str(delta2.resolve())]

    def test_plain_snapshot_resolves_to_itself(self, chain):
        base, _delta1, _delta2 = chain
        resolved_base, deltas = resolve_chain(str(base))
        assert resolved_base == str(base.resolve())
        assert deltas == []

    def test_swapped_parent_is_refused(self, chain, tmp_path):
        """The stored parent-header CRC binds the chain together."""
        base, delta1, _delta2 = chain
        imposter_index = build_document_index(
            parse("<bib><author><name>eve</name></author></bib>")
        )
        fake_base = tmp_path / base.name
        freeze_index(imposter_index, fake_base)
        moved = tmp_path / delta1.name
        moved.write_bytes(delta1.read_bytes())
        with pytest.raises(IndexingError, match="parent"):
            resolve_chain(str(moved))


class TestChainAnswers:
    def test_postings_match_rebuild(self, chain_index, rebuilt):
        assert chain_index.inverted.keywords() == (
            rebuilt.inverted.keywords()
        )
        for keyword in rebuilt.inverted.keywords():
            assert chain_index.inverted.list_length(keyword) == (
                rebuilt.inverted.list_length(keyword)
            ), keyword

    def test_statistics_match_rebuild(self, chain_index, rebuilt):
        for node_type, stats in rebuilt.statistics.items():
            assert chain_index.node_count(node_type) == stats.node_count

    def test_search_matches_rebuild(self, chain_index, rebuilt):
        over_chain = XRefine(chain_index, cache_size=0)
        reference = XRefine(rebuilt, cache_size=0)
        for query in QUERIES:
            a = over_chain.search(query, k=2)
            b = reference.search(query, k=2)
            assert a.needs_refinement == b.needs_refinement, query
            assert [r.rq.key for r in a.refinements] == [
                r.rq.key for r in b.refinements
            ], query

    def test_untouched_base_lists_stay_lazy(self, chain, chain_index):
        """Posting payloads no delta touched still serve through the
        base's lazy block machinery (no eager merge)."""
        tree = chain_index.tree
        loaded_before = getattr(
            tree, "loaded_partition_count", lambda: None
        )()
        if loaded_before is None:
            pytest.skip("chain tree is not paged on this build")
        assert chain_index.has_keyword("skyline")


class TestCompaction:
    def test_compact_matches_refreeze(self, chain, chain_index, tmp_path):
        compacted = tmp_path / "compacted.frz"
        layers = compact(str(chain[2]), str(compacted))
        assert layers >= 2
        refrozen = tmp_path / "refrozen.frz"
        freeze_index(load_index_chain(chain[2]), refrozen)
        assert compacted.read_bytes() == refrozen.read_bytes()

    def test_compacted_answers_match_chain(self, chain, tmp_path):
        compacted = tmp_path / "compacted.frz"
        compact(str(chain[2]), str(compacted))
        mono = XRefine(load_frozen_index(compacted), cache_size=0)
        over_chain = XRefine(load_index_chain(chain[2]), cache_size=0)
        for query in QUERIES:
            a = mono.search(query, k=2)
            b = over_chain.search(query, k=2)
            assert [r.rq.key for r in a.refinements] == [
                r.rq.key for r in b.refinements
            ], query


class TestOpenIndexSource:
    def test_dispatches_on_content(self, chain, tmp_path, figure1_index):
        base, _delta1, delta2 = chain
        from_base = open_index_source(str(base))
        from_chain = open_index_source(str(delta2))
        assert from_base.inverted.keywords()
        assert "skyline" in from_chain.inverted.keywords()

    def test_xml_fallback(self, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text(
            "<bib><author><name>zoe</name></author></bib>",
            encoding="utf-8",
        )
        index = open_index_source(str(doc))
        assert index.has_keyword("zoe")
