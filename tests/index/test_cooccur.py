"""Tests for the lazy co-occurrence table against brute force."""

import random
from itertools import combinations

from repro.index import build_document_index, node_keywords
from repro.xmltree import build_tree, parse


def brute_cooccur(tree, ki, kj, node_type):
    count = 0
    for node in tree.iter_nodes():
        if node.node_type != node_type:
            continue
        terms = set()
        for descendant in tree.iter_subtree(node.dewey):
            terms.update(node_keywords(descendant))
        if ki in terms and kj in terms:
            count += 1
    return count


class TestCooccurrence:
    def test_figure1_pairs(self, figure1_tree, figure1_index):
        t_inproc = ("bib", "author", "publications", "inproceedings")
        cases = [
            ("database", "2003"),
            ("database", "2006"),
            ("xml", "twig"),
            ("xml", "2003"),
        ]
        for ki, kj in cases:
            assert figure1_index.cooccurrence.count(ki, kj, t_inproc) == (
                brute_cooccur(figure1_tree, ki, kj, t_inproc)
            )

    def test_symmetry(self, figure1_index):
        t = ("bib", "author")
        table = figure1_index.cooccurrence
        assert table.count("xml", "2004", t) == table.count("2004", "xml", t)

    def test_absent_keyword(self, figure1_index):
        t = ("bib", "author")
        assert figure1_index.cooccurrence.count("xml", "zebra", t) == 0

    def test_containing_count_matches_df(self, figure1_index):
        t = ("bib", "author", "publications", "inproceedings")
        for keyword in ("database", "xml", "2006", "skyline"):
            assert figure1_index.cooccurrence.containing_count(
                keyword, t
            ) == figure1_index.xml_df(keyword, t)

    def test_confidence_formula7(self, figure1_index):
        t = ("bib", "author", "publications", "inproceedings")
        table = figure1_index.cooccurrence
        expected = table.count("database", "2003", t) / figure1_index.xml_df(
            "database", t
        )
        assert table.confidence("database", "2003", t) == expected

    def test_confidence_zero_denominator(self, figure1_index):
        t = ("bib", "author")
        assert figure1_index.cooccurrence.confidence("zebra", "xml", t) == 0.0

    def test_memoization(self, figure1_index):
        table = figure1_index.cooccurrence
        t = ("bib", "author")
        before = len(table)
        table.count("online", "search", t)
        after_first = len(table)
        table.count("search", "online", t)  # symmetric key: cached
        assert len(table) == after_first
        assert after_first >= before

    def test_build_pairs_eager(self, figure1_index):
        table = figure1_index.cooccurrence
        t = ("bib", "author")
        keywords = ["xml", "database", "online"]
        table.build_pairs(keywords, [t])
        for ki, kj in combinations(keywords, 2):
            # Already cached: count() hits the store.
            assert table.count(ki, kj, t) >= 0

    def test_clear_cache_keeps_counts(self, figure1_tree):
        index = build_document_index(figure1_tree)
        t = ("bib", "author")
        value = index.cooccurrence.count("xml", "2004", t)
        index.cooccurrence.clear_cache()
        assert index.cooccurrence.count("xml", "2004", t) == value

    def test_random_trees_against_brute(self):
        rng = random.Random(5)
        words = ["w1", "w2", "w3"]

        def spec(depth):
            text = " ".join(
                rng.choice(words) for _ in range(rng.randint(0, 2))
            )
            if depth == 0:
                return ("leaf", text or None)
            return (
                "node",
                text or None,
                [spec(depth - 1) for _ in range(rng.randint(1, 3))],
            )

        for _ in range(10):
            tree = build_tree(spec(3))
            index = build_document_index(tree)
            for node_type in list(index.statistics.types()):
                for ki, kj in combinations(words, 2):
                    assert index.cooccurrence.count(ki, kj, node_type) == (
                        brute_cooccur(tree, ki, kj, node_type)
                    ), (node_type, ki, kj)
