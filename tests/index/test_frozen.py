"""Frozen columnar snapshot tests: round trip, corruption, CoW, shm.

A frozen snapshot must serve byte-identical answers to the index it
was frozen from, reject corrupt files with typed errors instead of
undefined behaviour, accept mutations without touching the mapped
file, and publish its posting section to shared memory as one copy.
"""

import struct

import pytest

from repro import XRefine
from repro.errors import IndexingError
from repro.index import (
    append_partition,
    build_document_index,
    freeze_index,
    load_frozen_index,
    remove_partition,
)
from repro.index.frozen import _HEADER, _SECTION_ENTRY, MAGIC
from repro.shard import SharedPostingBlob, sharded_partition_refine
from repro.xmltree import Dewey, parse, serialize

QUERIES = ("on line data base", "database publication", "xml twig")


@pytest.fixture(scope="module")
def frozen_path(tmp_path_factory, figure1_index):
    path = tmp_path_factory.mktemp("frozen") / "figure1.frz"
    freeze_index(figure1_index, path)
    return path


@pytest.fixture()
def loaded(frozen_path):
    return load_frozen_index(str(frozen_path))


class TestRoundTrip:
    def test_tree_identical(self, loaded, figure1_index):
        assert serialize(loaded.tree) == serialize(figure1_index.tree)
        assert len(loaded.tree) == len(figure1_index.tree)

    def test_keywords_identical(self, loaded, figure1_index):
        assert loaded.inverted.keywords() == figure1_index.inverted.keywords()

    def test_postings_identical(self, loaded, figure1_index):
        for keyword in figure1_index.inverted.keywords():
            assert list(loaded.inverted_list(keyword)) == list(
                figure1_index.inverted_list(keyword)
            ), keyword

    def test_raw_payloads_identical(self, loaded, figure1_index):
        for keyword in figure1_index.inverted.keywords():
            assert loaded.inverted.raw_payload(
                keyword
            ) == figure1_index.inverted.raw_payload(keyword), keyword

    def test_frequency_identical(self, loaded, figure1_index):
        t = ("bib", "author", "publications", "inproceedings")
        for keyword in ("database", "xml", "skyline"):
            assert loaded.xml_df(keyword, t) == figure1_index.xml_df(
                keyword, t
            )
            assert loaded.tf(keyword, t) == figure1_index.tf(keyword, t)

    def test_statistics_identical(self, loaded, figure1_index):
        for node_type, stats in figure1_index.statistics.items():
            assert loaded.node_count(node_type) == stats.node_count
            assert (
                loaded.distinct_keywords(node_type)
                == stats.distinct_keywords
            )

    def test_search_identical_all_algorithms(self, loaded, figure1_index):
        built = XRefine(figure1_index)
        frozen = XRefine(loaded)
        for algorithm in ("partition", "sle", "stack"):
            for query in QUERIES:
                a = built.search(query, k=3, algorithm=algorithm)
                b = frozen.search(query, k=3, algorithm=algorithm)
                assert a.needs_refinement == b.needs_refinement
                assert [r.rq.key for r in a.refinements] == [
                    r.rq.key for r in b.refinements
                ]
                assert a.original_results == b.original_results

    def test_sharded_matches_serial_built(self, loaded, figure1_index):
        built = XRefine(figure1_index)
        frozen = XRefine(loaded)
        for query in QUERIES:
            serial = built.search(query, k=2, algorithm="partition")
            sharded = sharded_partition_refine(
                frozen.index,
                query,
                rules=frozen.mine_rules(query),
                model=frozen.model,
                k=2,
                shards=2,
                rounds=1,
            )
            assert sharded.needs_refinement == serial.needs_refinement
            assert [r.rq.key for r in sharded.refinements] == [
                r.rq.key for r in serial.refinements
            ]

    def test_snapshot_handle_attached(self, loaded):
        assert loaded.frozen_snapshot is not None

    def test_lazy_decode(self, loaded):
        """Opening decodes nothing; lists materialize per keyword."""
        assert loaded.inverted._cache == {}
        loaded.inverted_list("xml")
        assert set(loaded.inverted._cache) == {"xml"}

    def test_freeze_method_and_from_frozen(self, tmp_path, figure1_index):
        path = figure1_index.freeze(tmp_path / "conv.frz")
        engine = XRefine.from_frozen(path)
        response = engine.search("database publication", k=2)
        reference = XRefine(figure1_index).search(
            "database publication", k=2
        )
        assert [r.rq.key for r in response.refinements] == [
            r.rq.key for r in reference.refinements
        ]


class TestCorruption:
    def corrupt(self, frozen_path, tmp_path, mutate):
        blob = bytearray(frozen_path.read_bytes())
        mutate(blob)
        bad = tmp_path / "bad.frz"
        bad.write_bytes(bytes(blob))
        return bad

    def test_missing_file(self, tmp_path):
        with pytest.raises(IndexingError):
            load_frozen_index(tmp_path / "nothing.frz")

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.frz"
        empty.write_bytes(b"")
        with pytest.raises(IndexingError):
            load_frozen_index(empty)

    def test_bad_magic(self, frozen_path, tmp_path):
        bad = self.corrupt(
            frozen_path, tmp_path, lambda b: b.__setitem__(0, b[0] ^ 0xFF)
        )
        with pytest.raises(IndexingError):
            load_frozen_index(bad)

    def test_wrong_version(self, frozen_path, tmp_path):
        def bump_version(blob):
            struct.pack_into("<H", blob, len(MAGIC), 99)

        bad = self.corrupt(frozen_path, tmp_path, bump_version)
        with pytest.raises(IndexingError):
            load_frozen_index(bad)

    def test_wrong_section_count(self, frozen_path, tmp_path):
        def bump_sections(blob):
            struct.pack_into("<H", blob, len(MAGIC) + 2, 999)

        bad = self.corrupt(frozen_path, tmp_path, bump_sections)
        with pytest.raises(IndexingError):
            load_frozen_index(bad)

    @pytest.mark.parametrize("keep", [12, 40, 0.5, 0.99])
    def test_truncation(self, frozen_path, tmp_path, keep):
        blob = frozen_path.read_bytes()
        cut = keep if isinstance(keep, int) else int(len(blob) * keep)
        bad = tmp_path / "cut.frz"
        bad.write_bytes(blob[:cut])
        with pytest.raises(IndexingError):
            load_frozen_index(bad)

    def test_flipped_body_byte_fails_checksum(self, frozen_path, tmp_path):
        body_start = _HEADER.size + 4 * _SECTION_ENTRY.size

        def flip(blob):
            offset = (body_start + len(blob)) // 2
            blob[offset] ^= 0x01

        bad = self.corrupt(frozen_path, tmp_path, flip)
        with pytest.raises(IndexingError, match="checksum"):
            load_frozen_index(bad)


def author_spec(name, titles):
    return (
        "author",
        None,
        [
            ("name", name),
            (
                "publications",
                None,
                [("inproceedings", None, [("title", t)]) for t in titles],
            ),
        ],
    )


class TestCopyOnWrite:
    def reload(self, figure1_tree, tmp_path):
        index = build_document_index(parse(serialize(figure1_tree)))
        path = tmp_path / "cow.frz"
        freeze_index(index, path)
        return load_frozen_index(path), path

    def test_append_then_matches_rebuild(self, figure1_tree, tmp_path):
        loaded, path = self.reload(figure1_tree, tmp_path)
        before = path.read_bytes()
        append_partition(
            loaded, author_spec("carol", ["quantum refinement views"])
        )
        fresh = build_document_index(parse(serialize(loaded.tree)))
        assert loaded.inverted.keywords() == fresh.inverted.keywords()
        assert loaded.has_keyword("quantum")
        for keyword in ("quantum", "xml", "carol"):
            assert list(loaded.inverted_list(keyword)) == list(
                fresh.inverted_list(keyword)
            ), keyword
        for node_type, stats in fresh.statistics.items():
            assert loaded.node_count(node_type) == stats.node_count
        # Mutation is copy-on-write: the snapshot on disk is untouched.
        assert path.read_bytes() == before

    def test_remove_then_matches_rebuild(self, figure1_tree, tmp_path):
        loaded, path = self.reload(figure1_tree, tmp_path)
        before = path.read_bytes()
        first = loaded.tree.partitions()[0]
        remove_partition(loaded, first.dewey)
        # Re-parsing re-assigns dense partition ordinals, so compare
        # lengths and statistics rather than exact Dewey labels.
        fresh = build_document_index(parse(serialize(loaded.tree)))
        assert loaded.inverted.keywords() == fresh.inverted.keywords()
        for keyword in fresh.inverted.keywords():
            assert loaded.inverted.list_length(
                keyword
            ) == fresh.inverted.list_length(keyword), keyword
        for node_type, stats in fresh.statistics.items():
            assert loaded.node_count(node_type) == stats.node_count
        assert path.read_bytes() == before

    def test_mutated_index_refreezes(self, figure1_tree, tmp_path):
        loaded, _ = self.reload(figure1_tree, tmp_path)
        append_partition(loaded, author_spec("dave", ["stream joins"]))
        second = tmp_path / "second.frz"
        freeze_index(loaded, second)
        reloaded = load_frozen_index(second)
        assert reloaded.inverted.keywords() == loaded.inverted.keywords()
        assert list(reloaded.inverted_list("joins")) == list(
            loaded.inverted_list("joins")
        )

    def test_search_after_mutation(self, figure1_tree, tmp_path):
        loaded, _ = self.reload(figure1_tree, tmp_path)
        append_partition(
            loaded, author_spec("erin", ["probabilistic xml ranking"])
        )
        fresh = build_document_index(parse(serialize(loaded.tree)))
        a = XRefine(loaded).search("probabilistic ranking", k=2)
        b = XRefine(fresh).search("probabilistic ranking", k=2)
        assert a.needs_refinement == b.needs_refinement
        assert [r.rq.key for r in a.refinements] == [
            r.rq.key for r in b.refinements
        ]


class TestSharedMemory:
    def test_posting_region_only_while_pristine(self, loaded):
        assert loaded.inverted.posting_region() is not None
        append_partition(loaded, author_spec("frank", ["late arrival"]))
        assert loaded.inverted.posting_region() is None

    def test_publish_byte_identity(self, loaded, figure1_index):
        blob = SharedPostingBlob.publish(loaded.inverted, loaded.version)
        try:
            for keyword in figure1_index.inverted.keywords():
                assert blob.payload(
                    keyword
                ) == figure1_index.inverted.raw_payload(keyword), keyword
            assert blob.payload("never-indexed") is None
        finally:
            blob.close()

    def test_publish_after_mutation_falls_back(self, loaded):
        append_partition(loaded, author_spec("grace", ["hash joins"]))
        blob = SharedPostingBlob.publish(loaded.inverted, loaded.version)
        try:
            assert blob.payload("joins") == loaded.inverted.raw_payload(
                "joins"
            )
        finally:
            blob.close()

    def test_decoded_matches_inverted_list(self, loaded, figure1_index):
        blob = SharedPostingBlob.publish(loaded.inverted, loaded.version)
        try:
            for keyword in ("database", "xml", "2003"):
                decoded = blob.decoded(keyword)
                assert list(decoded.postings) == list(
                    figure1_index.inverted_list(keyword)
                )
        finally:
            blob.close()
