"""Frozen columnar snapshot tests: round trip, corruption, CoW, shm.

A frozen snapshot must serve byte-identical answers to the index it
was frozen from, reject corrupt files with typed errors instead of
undefined behaviour, accept mutations without touching the mapped
file, and publish its posting section to shared memory as one copy.
"""

import struct
import zlib

import pytest

from repro import XRefine
from repro.errors import IndexingError
from repro.index import (
    append_partition,
    build_document_index,
    freeze_index,
    load_frozen_index,
    remove_partition,
)
from repro.index.blocks import (
    BlockedInvertedList,
    build_block_directory_payload,
    decode_block_directory,
)
from repro.index.frozen import (
    _CRC_CHUNK,
    _HEADER,
    _SECTION_COUNT,
    _SECTION_ENTRY,
    _paging_checksum,
    MAGIC,
)
from repro.storage import encode_uvarint
from repro.shard import SharedPostingBlob, sharded_partition_refine
from repro.xmltree import Dewey, parse, serialize

QUERIES = ("on line data base", "database publication", "xml twig")


@pytest.fixture(scope="module")
def frozen_path(tmp_path_factory, figure1_index):
    path = tmp_path_factory.mktemp("frozen") / "figure1.frz"
    freeze_index(figure1_index, path)
    return path


@pytest.fixture()
def loaded(frozen_path):
    return load_frozen_index(str(frozen_path))


class TestRoundTrip:
    def test_tree_identical(self, loaded, figure1_index):
        assert serialize(loaded.tree) == serialize(figure1_index.tree)
        assert len(loaded.tree) == len(figure1_index.tree)

    def test_keywords_identical(self, loaded, figure1_index):
        assert loaded.inverted.keywords() == figure1_index.inverted.keywords()

    def test_postings_identical(self, loaded, figure1_index):
        for keyword in figure1_index.inverted.keywords():
            assert list(loaded.inverted_list(keyword)) == list(
                figure1_index.inverted_list(keyword)
            ), keyword

    def test_raw_payloads_identical(self, loaded, figure1_index):
        for keyword in figure1_index.inverted.keywords():
            assert loaded.inverted.raw_payload(
                keyword
            ) == figure1_index.inverted.raw_payload(keyword), keyword

    def test_frequency_identical(self, loaded, figure1_index):
        t = ("bib", "author", "publications", "inproceedings")
        for keyword in ("database", "xml", "skyline"):
            assert loaded.xml_df(keyword, t) == figure1_index.xml_df(
                keyword, t
            )
            assert loaded.tf(keyword, t) == figure1_index.tf(keyword, t)

    def test_statistics_identical(self, loaded, figure1_index):
        for node_type, stats in figure1_index.statistics.items():
            assert loaded.node_count(node_type) == stats.node_count
            assert (
                loaded.distinct_keywords(node_type)
                == stats.distinct_keywords
            )

    def test_search_identical_all_algorithms(self, loaded, figure1_index):
        built = XRefine(figure1_index)
        frozen = XRefine(loaded)
        for algorithm in ("partition", "sle", "stack"):
            for query in QUERIES:
                a = built.search(query, k=3, algorithm=algorithm)
                b = frozen.search(query, k=3, algorithm=algorithm)
                assert a.needs_refinement == b.needs_refinement
                assert [r.rq.key for r in a.refinements] == [
                    r.rq.key for r in b.refinements
                ]
                assert a.original_results == b.original_results

    def test_sharded_matches_serial_built(self, loaded, figure1_index):
        built = XRefine(figure1_index)
        frozen = XRefine(loaded)
        for query in QUERIES:
            serial = built.search(query, k=2, algorithm="partition")
            sharded = sharded_partition_refine(
                frozen.index,
                query,
                rules=frozen.mine_rules(query),
                model=frozen.model,
                k=2,
                shards=2,
                rounds=1,
            )
            assert sharded.needs_refinement == serial.needs_refinement
            assert [r.rq.key for r in sharded.refinements] == [
                r.rq.key for r in serial.refinements
            ]

    def test_snapshot_handle_attached(self, loaded):
        assert loaded.frozen_snapshot is not None

    def test_lazy_decode(self, loaded):
        """Opening decodes nothing; lists materialize per keyword."""
        assert loaded.inverted._cache == {}
        loaded.inverted_list("xml")
        assert set(loaded.inverted._cache) == {"xml"}

    def test_freeze_method_and_from_frozen(self, tmp_path, figure1_index):
        path = figure1_index.freeze(tmp_path / "conv.frz")
        engine = XRefine.from_frozen(path)
        response = engine.search("database publication", k=2)
        reference = XRefine(figure1_index).search(
            "database publication", k=2
        )
        assert [r.rq.key for r in response.refinements] == [
            r.rq.key for r in reference.refinements
        ]


class TestPagingChecksum:
    """The chunked+madvise open-time CRC must equal the one-shot CRC."""

    def test_multi_chunk_body_matches_one_shot(self, tmp_path):
        import mmap as mmap_module
        import random
        import zlib

        rng = random.Random(5)
        payload = bytes(
            rng.getrandbits(8) for _ in range(4096)
        ) * ((2 * _CRC_CHUNK) // 4096 + 3)
        path = tmp_path / "body.bin"
        path.write_bytes(payload)
        body_start = _HEADER.size  # any unaligned offset will do
        with open(path, "rb") as handle:
            mapped = mmap_module.mmap(
                handle.fileno(), 0, access=mmap_module.ACCESS_READ
            )
        view = memoryview(mapped)
        body = view[body_start:]
        try:
            assert _paging_checksum(mapped, body, body_start) == (
                zlib.crc32(payload[body_start:])
            )
        finally:
            body.release()
            view.release()
            mapped.close()

    def test_small_body_takes_the_one_shot_path(self, frozen_path):
        # Every fixture-sized snapshot is far below one chunk; loading
        # them exercises the eager branch (and TestCorruption proves
        # a flipped byte still fails either way).
        assert load_frozen_index(frozen_path) is not None


class TestCorruption:
    def corrupt(self, frozen_path, tmp_path, mutate):
        blob = bytearray(frozen_path.read_bytes())
        mutate(blob)
        bad = tmp_path / "bad.frz"
        bad.write_bytes(bytes(blob))
        return bad

    def test_missing_file(self, tmp_path):
        with pytest.raises(IndexingError):
            load_frozen_index(tmp_path / "nothing.frz")

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.frz"
        empty.write_bytes(b"")
        with pytest.raises(IndexingError):
            load_frozen_index(empty)

    def test_bad_magic(self, frozen_path, tmp_path):
        bad = self.corrupt(
            frozen_path, tmp_path, lambda b: b.__setitem__(0, b[0] ^ 0xFF)
        )
        with pytest.raises(IndexingError):
            load_frozen_index(bad)

    def test_wrong_version(self, frozen_path, tmp_path):
        def bump_version(blob):
            struct.pack_into("<H", blob, len(MAGIC), 99)

        bad = self.corrupt(frozen_path, tmp_path, bump_version)
        with pytest.raises(IndexingError):
            load_frozen_index(bad)

    def test_wrong_section_count(self, frozen_path, tmp_path):
        def bump_sections(blob):
            struct.pack_into("<H", blob, len(MAGIC) + 2, 999)

        bad = self.corrupt(frozen_path, tmp_path, bump_sections)
        with pytest.raises(IndexingError):
            load_frozen_index(bad)

    @pytest.mark.parametrize("keep", [12, 40, 0.5, 0.99])
    def test_truncation(self, frozen_path, tmp_path, keep):
        blob = frozen_path.read_bytes()
        cut = keep if isinstance(keep, int) else int(len(blob) * keep)
        bad = tmp_path / "cut.frz"
        bad.write_bytes(blob[:cut])
        with pytest.raises(IndexingError):
            load_frozen_index(bad)

    def test_flipped_body_byte_fails_checksum(self, frozen_path, tmp_path):
        body_start = _HEADER.size + _SECTION_COUNT * _SECTION_ENTRY.size

        def flip(blob):
            offset = (body_start + len(blob)) // 2
            blob[offset] ^= 0x01

        bad = self.corrupt(frozen_path, tmp_path, flip)
        with pytest.raises(IndexingError, match="checksum"):
            load_frozen_index(bad)


def _encode_directory(block_size, count, offsets, crcs, firsts, lasts):
    """Re-encode a block directory record (mirror of the writer)."""

    def components(out, parts):
        out += encode_uvarint(len(parts))
        for part in parts:
            out += encode_uvarint(part)

    out = bytearray()
    out += encode_uvarint(block_size)
    out += encode_uvarint(count)
    out += encode_uvarint(len(crcs))
    previous = 0
    for offset in offsets:
        out += encode_uvarint(offset - previous)
        previous = offset
    for index in range(len(crcs)):
        out += struct.pack("<I", crcs[index])
        components(out, firsts[index])
        components(out, lasts[index])
    return bytes(out)


class TestBlockDirectoryFuzz:
    """Corrupted block directories must fail with typed errors.

    Every mutation here preserves enough structure to reach the
    directory validator — the point is that a reordered, truncated or
    inconsistent directory is rejected *before* it can mis-route a
    binary search or a block-max prune.
    """

    @pytest.fixture(scope="class")
    def payload(self, figure1_index):
        keyword = max(
            figure1_index.inverted.keywords(),
            key=figure1_index.inverted.list_length,
        )
        assert figure1_index.inverted.list_length(keyword) >= 2
        return figure1_index.inverted.raw_payload(keyword)

    @pytest.fixture(scope="class")
    def directory(self, payload):
        raw = build_block_directory_payload(payload, 1)
        assert raw is not None
        return decode_block_directory("kw", raw)

    def fields(self, directory):
        return (
            directory.block_size,
            directory.count,
            list(directory.offsets),
            list(directory.crcs),
            list(directory.firsts),
            list(directory.lasts),
        )

    def test_roundtrip_is_clean(self, directory):
        raw = _encode_directory(*self.fields(directory))
        again = decode_block_directory("kw", raw)
        assert again.offsets == directory.offsets
        assert again.firsts == directory.firsts
        assert again.lasts == directory.lasts

    @pytest.mark.parametrize("cut", [1, 3, 7])
    def test_truncated_directory(self, directory, cut):
        raw = _encode_directory(*self.fields(directory))
        with pytest.raises(IndexingError, match="truncated or corrupt"):
            decode_block_directory("kw", raw[:-cut])

    def test_out_of_order_block_headers(self, directory):
        size, count, offsets, crcs, firsts, lasts = self.fields(directory)
        firsts[0], firsts[1] = firsts[1], firsts[0]
        lasts[0], lasts[1] = lasts[1], lasts[0]
        raw = _encode_directory(size, count, offsets, crcs, firsts, lasts)
        with pytest.raises(IndexingError, match="out-of-order blocks"):
            decode_block_directory("kw", raw)

    def test_inverted_block_bounds(self, directory):
        size, count, offsets, crcs, firsts, lasts = self.fields(directory)
        # Give block 0 a first key beyond its last key.
        firsts[0] = lasts[-1]
        raw = _encode_directory(size, count, offsets, crcs, firsts, lasts)
        with pytest.raises(IndexingError, match="inverted block"):
            decode_block_directory("kw", raw)

    def test_non_ascending_offsets(self, directory):
        size, count, offsets, crcs, firsts, lasts = self.fields(directory)
        offsets[1] = offsets[0]
        raw = _encode_directory(size, count, offsets, crcs, firsts, lasts)
        with pytest.raises(IndexingError, match="non-ascending offsets"):
            decode_block_directory("kw", raw)

    def test_wrong_block_count(self, directory):
        size, count, offsets, crcs, firsts, lasts = self.fields(directory)
        raw = _encode_directory(size, count + 5, offsets, crcs, firsts,
                                lasts)
        with pytest.raises(IndexingError, match="declares"):
            decode_block_directory("kw", raw)

    def test_truncated_block_payload(self, payload, directory, figure1_index):
        """A block cut short mid-posting fails with a typed error.

        The CRC is forged to match the truncated bytes, so the decode
        itself must detect that the block ran out of postings.
        """
        size, count, offsets, crcs, firsts, lasts = self.fields(directory)
        cut = payload[: offsets[-1] - 1]
        crcs[-1] = zlib.crc32(bytes(cut[offsets[-2] :]))
        offsets[-1] -= 1
        forged = decode_block_directory(
            "kw", _encode_directory(size, count, offsets, crcs, firsts,
                                    lasts)
        )
        lst = BlockedInvertedList.open(
            "kw", cut, forged, figure1_index.inverted.node_type_table
        )
        with pytest.raises(IndexingError, match="truncated"):
            list(lst.postings)


class TestBlockCorruptionOnDisk:
    """Per-block CRCs catch payload damage the directory cannot see.

    The file-level checksum is recomputed after each mutation, so the
    snapshot *opens* cleanly — the corruption must be caught lazily, by
    the block CRC, exactly when the damaged block is first decoded.
    """

    def frozen_with_blocks(self, figure1_index, tmp_path):
        path = tmp_path / "blocked.frz"
        freeze_index(figure1_index, path, block_size=1)
        keyword = max(
            figure1_index.inverted.keywords(),
            key=figure1_index.inverted.list_length,
        )
        payload = figure1_index.inverted.raw_payload(keyword)
        return path, keyword, payload

    def rechecksum(self, blob):
        body_start = _HEADER.size + _SECTION_COUNT * _SECTION_ENTRY.size
        struct.pack_into(
            "<I", blob, len(MAGIC) + 4, zlib.crc32(bytes(blob[body_start:]))
        )

    def test_flipped_block_byte_fails_lazily(
        self, figure1_index, tmp_path
    ):
        path, keyword, payload = self.frozen_with_blocks(
            figure1_index, tmp_path
        )
        directory = decode_block_directory(
            keyword, build_block_directory_payload(payload, 1)
        )
        blob = bytearray(path.read_bytes())
        position = blob.find(bytes(payload))
        assert position != -1, "payload bytes not found in the snapshot"
        # Damage the *last* block only, then make the file-level
        # checksum agree again.
        blob[position + directory.offsets[-2]] ^= 0x40
        self.rechecksum(blob)
        bad = tmp_path / "bad_block.frz"
        bad.write_bytes(bytes(blob))

        loaded = load_frozen_index(bad)
        lazy = loaded.inverted_list(keyword)
        # Earlier blocks decode fine; only touching the damaged block
        # raises, and it raises a typed checksum error.
        assert lazy.postings[0] is not None
        with pytest.raises(IndexingError, match="checksum"):
            list(lazy.postings)

    def test_clean_snapshot_decodes_every_block(
        self, figure1_index, tmp_path
    ):
        path, keyword, _payload = self.frozen_with_blocks(
            figure1_index, tmp_path
        )
        loaded = load_frozen_index(path)
        assert list(loaded.inverted_list(keyword)) == list(
            figure1_index.inverted_list(keyword)
        )


def author_spec(name, titles):
    return (
        "author",
        None,
        [
            ("name", name),
            (
                "publications",
                None,
                [("inproceedings", None, [("title", t)]) for t in titles],
            ),
        ],
    )


class TestCopyOnWrite:
    def reload(self, figure1_tree, tmp_path):
        index = build_document_index(parse(serialize(figure1_tree)))
        path = tmp_path / "cow.frz"
        freeze_index(index, path)
        return load_frozen_index(path), path

    def test_append_then_matches_rebuild(self, figure1_tree, tmp_path):
        loaded, path = self.reload(figure1_tree, tmp_path)
        before = path.read_bytes()
        append_partition(
            loaded, author_spec("carol", ["quantum refinement views"])
        )
        fresh = build_document_index(parse(serialize(loaded.tree)))
        assert loaded.inverted.keywords() == fresh.inverted.keywords()
        assert loaded.has_keyword("quantum")
        for keyword in ("quantum", "xml", "carol"):
            assert list(loaded.inverted_list(keyword)) == list(
                fresh.inverted_list(keyword)
            ), keyword
        for node_type, stats in fresh.statistics.items():
            assert loaded.node_count(node_type) == stats.node_count
        # Mutation is copy-on-write: the snapshot on disk is untouched.
        assert path.read_bytes() == before

    def test_remove_then_matches_rebuild(self, figure1_tree, tmp_path):
        loaded, path = self.reload(figure1_tree, tmp_path)
        before = path.read_bytes()
        first = loaded.tree.partitions()[0]
        remove_partition(loaded, first.dewey)
        # Re-parsing re-assigns dense partition ordinals, so compare
        # lengths and statistics rather than exact Dewey labels.
        fresh = build_document_index(parse(serialize(loaded.tree)))
        assert loaded.inverted.keywords() == fresh.inverted.keywords()
        for keyword in fresh.inverted.keywords():
            assert loaded.inverted.list_length(
                keyword
            ) == fresh.inverted.list_length(keyword), keyword
        for node_type, stats in fresh.statistics.items():
            assert loaded.node_count(node_type) == stats.node_count
        assert path.read_bytes() == before

    def test_mutated_index_refreezes(self, figure1_tree, tmp_path):
        loaded, _ = self.reload(figure1_tree, tmp_path)
        append_partition(loaded, author_spec("dave", ["stream joins"]))
        second = tmp_path / "second.frz"
        freeze_index(loaded, second)
        reloaded = load_frozen_index(second)
        assert reloaded.inverted.keywords() == loaded.inverted.keywords()
        assert list(reloaded.inverted_list("joins")) == list(
            loaded.inverted_list("joins")
        )

    def test_search_after_mutation(self, figure1_tree, tmp_path):
        loaded, _ = self.reload(figure1_tree, tmp_path)
        append_partition(
            loaded, author_spec("erin", ["probabilistic xml ranking"])
        )
        fresh = build_document_index(parse(serialize(loaded.tree)))
        a = XRefine(loaded).search("probabilistic ranking", k=2)
        b = XRefine(fresh).search("probabilistic ranking", k=2)
        assert a.needs_refinement == b.needs_refinement
        assert [r.rq.key for r in a.refinements] == [
            r.rq.key for r in b.refinements
        ]


class TestSharedMemory:
    def test_posting_region_only_while_pristine(self, loaded):
        assert loaded.inverted.posting_region() is not None
        append_partition(loaded, author_spec("frank", ["late arrival"]))
        assert loaded.inverted.posting_region() is None

    def test_publish_byte_identity(self, loaded, figure1_index):
        blob = SharedPostingBlob.publish(loaded.inverted, loaded.version)
        try:
            for keyword in figure1_index.inverted.keywords():
                assert blob.payload(
                    keyword
                ) == figure1_index.inverted.raw_payload(keyword), keyword
            assert blob.payload("never-indexed") is None
        finally:
            blob.close()

    def test_publish_after_mutation_falls_back(self, loaded):
        append_partition(loaded, author_spec("grace", ["hash joins"]))
        blob = SharedPostingBlob.publish(loaded.inverted, loaded.version)
        try:
            assert blob.payload("joins") == loaded.inverted.raw_payload(
                "joins"
            )
        finally:
            blob.close()

    def test_decoded_matches_inverted_list(self, loaded, figure1_index):
        blob = SharedPostingBlob.publish(loaded.inverted, loaded.version)
        try:
            for keyword in ("database", "xml", "2003"):
                decoded = blob.decoded(keyword)
                assert list(decoded.postings) == list(
                    figure1_index.inverted_list(keyword)
                )
        finally:
            blob.close()
