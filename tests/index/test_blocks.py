"""Blocked posting columns: laziness and block-boundary parity.

The block directory must never change an answer — only when bytes are
decoded.  These tests pin that down at the awkward geometries: blocks
of one posting, lists whose length divides the block size exactly (an
empty-tail trap), ranges that straddle block boundaries, and the
header-guided binary search against the :mod:`bisect` reference — all
under both kernel backends, since the compiled scan kernels consume
the same lazy columns.
"""

from __future__ import annotations

import bisect

import pytest

import repro.kernels.backend as backend_module
from repro import XRefine
from repro.datasets import generate_dblp
from repro.index import build_document_index, freeze_index, load_frozen_index
from repro.index.blocks import BlockedInvertedList

BLOCK_SIZES = (1, 2, 3, 7)

QUERIES = (
    "query database",
    "index search performance",
    "xml keyword",
    "join stream",
)


@pytest.fixture(params=["active", "pure-python"])
def kernel_backend(request, monkeypatch):
    """Run the test under the active backend, then the pure fallback."""
    if request.param == "pure-python":
        monkeypatch.setattr(backend_module, "compiled", None)
    elif backend_module.compiled is None:
        pytest.skip("compiled backend unavailable on this host")
    return request.param


@pytest.fixture(scope="module")
def eager_index():
    return build_document_index(generate_dblp(num_authors=30, seed=11))


@pytest.fixture(scope="module")
def frozen_paths(tmp_path_factory, eager_index):
    """One frozen snapshot per block size under test."""
    root = tmp_path_factory.mktemp("blocked_sizes")
    paths = {}
    for block_size in BLOCK_SIZES:
        path = root / f"bs{block_size}.frz"
        freeze_index(eager_index, path, block_size=block_size)
        paths[block_size] = path
    return paths


def _multiblock_keywords(index, block_size, minimum=2):
    return [
        keyword
        for keyword in index.inverted.keywords()
        if index.inverted.list_length(keyword) > block_size
    ][: max(minimum, 12)]


class TestListParity:
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_postings_identical_at_every_block_size(
        self, eager_index, frozen_paths, block_size
    ):
        loaded = load_frozen_index(frozen_paths[block_size])
        for keyword in eager_index.inverted.keywords():
            assert list(loaded.inverted_list(keyword)) == list(
                eager_index.inverted_list(keyword)
            ), (keyword, block_size)

    def test_exact_divide_tail(self, eager_index, tmp_path):
        """A list length divisible by the block size has a full tail
        block — the off-by-one trap for ``postings_in_block``."""
        lengths = {
            keyword: eager_index.inverted.list_length(keyword)
            for keyword in eager_index.inverted.keywords()
        }
        block_size, keyword = next(
            (size, kw)
            for size in (2, 3, 4, 5)
            for kw, length in sorted(lengths.items())
            if length > size and length % size == 0
        )
        path = tmp_path / "exact.frz"
        freeze_index(eager_index, path, block_size=block_size)
        loaded = load_frozen_index(path)
        lazy = loaded.inverted_list(keyword)
        assert isinstance(lazy, BlockedInvertedList)
        directory = lazy.block_store.directory
        assert directory.postings_in_block(directory.block_count - 1) == (
            block_size
        )
        assert list(lazy) == list(eager_index.inverted_list(keyword))

    def test_single_posting_blocks(self, eager_index, frozen_paths):
        loaded = load_frozen_index(frozen_paths[1])
        keyword = max(
            eager_index.inverted.keywords(),
            key=eager_index.inverted.list_length,
        )
        lazy = loaded.inverted_list(keyword)
        directory = lazy.block_store.directory
        assert directory.block_count == eager_index.inverted.list_length(
            keyword
        )
        assert list(lazy) == list(eager_index.inverted_list(keyword))
        assert lazy.block_store.blocks_decoded == directory.block_count


class TestLazyBinarySearch:
    @pytest.mark.parametrize("block_size", (2, 7))
    def test_bisect_matches_reference(
        self, eager_index, frozen_paths, block_size
    ):
        loaded = load_frozen_index(frozen_paths[block_size])
        for keyword in _multiblock_keywords(eager_index, block_size):
            eager_keys = [
                posting.dewey.components
                for posting in eager_index.inverted_list(keyword)
            ]
            lazy = loaded.inverted_list(keyword)
            assert isinstance(lazy, BlockedInvertedList)
            probes = list(eager_keys)
            probes += [key + (0,) for key in eager_keys]
            probes += [(), (999,), eager_keys[0][:-1]]
            for probe in probes:
                assert lazy.dewey_keys.bisect_left(probe) == (
                    bisect.bisect_left(eager_keys, probe)
                ), (keyword, probe)
                assert lazy.dewey_keys.bisect_right(probe) == (
                    bisect.bisect_right(eager_keys, probe)
                ), (keyword, probe)

    def test_single_probe_decodes_at_most_one_block(
        self, eager_index, frozen_paths
    ):
        loaded = load_frozen_index(frozen_paths[2])
        keyword = max(
            eager_index.inverted.keywords(),
            key=eager_index.inverted.list_length,
        )
        eager_keys = [
            posting.dewey.components
            for posting in eager_index.inverted_list(keyword)
        ]
        lazy = loaded.inverted_list(keyword)
        middle = eager_keys[len(eager_keys) // 2]
        lazy.dewey_keys.bisect_left(middle)
        assert lazy.block_store.blocks_decoded <= 1

    @pytest.mark.parametrize("block_size", (2, 7))
    def test_range_indices_straddling_blocks(
        self, eager_index, frozen_paths, block_size
    ):
        """Partition ranges that span a block boundary resolve exactly
        as the eager binary search does."""
        from repro.xmltree.dewey import Dewey, descendant_range_key

        loaded = load_frozen_index(frozen_paths[block_size])
        for keyword in _multiblock_keywords(eager_index, block_size):
            eager_keys = [
                posting.dewey.components
                for posting in eager_index.inverted_list(keyword)
            ]
            lazy = loaded.inverted_list(keyword)
            partitions = sorted({key[:2] for key in eager_keys})
            for pid in partitions:
                root = Dewey(pid)
                lo, hi = lazy.range_indices(root)
                assert lo == bisect.bisect_left(eager_keys, root.components)
                assert hi == bisect.bisect_left(
                    eager_keys, descendant_range_key(root)
                )


class TestSearchParity:
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_all_algorithms_all_block_sizes(
        self, eager_index, frozen_paths, block_size, kernel_backend
    ):
        reference = XRefine(eager_index, cache_size=0)
        frozen = XRefine(
            load_frozen_index(frozen_paths[block_size]), cache_size=0
        )
        for algorithm in ("partition", "sle", "stack"):
            for query in QUERIES:
                a = reference.search(query, k=2, algorithm=algorithm)
                b = frozen.search(query, k=2, algorithm=algorithm)
                assert a.needs_refinement == b.needs_refinement, (
                    query, algorithm, block_size,
                )
                assert [r.rq.key for r in a.refinements] == [
                    r.rq.key for r in b.refinements
                ], (query, algorithm, block_size)
                assert a.original_results == b.original_results
