"""Tests for incremental index maintenance (append/remove partitions).

The contract: after any sequence of partition appends and removals,
every statistic equals what a fresh one-pass build over the updated
document would produce, and search behaves identically.
"""

import random

import pytest

from repro import XRefine
from repro.errors import XMLError
from repro.index import (
    append_partition,
    build_document_index,
    remove_partition,
)
from repro.xmltree import Dewey, parse, serialize


def author_spec(name, titles):
    return (
        "author",
        None,
        [
            ("name", name),
            (
                "publications",
                None,
                [
                    (
                        "inproceedings",
                        None,
                        [("title", title), ("year", "2007")],
                    )
                    for title in titles
                ],
            ),
        ],
    )


def assert_equivalent_to_rebuild(index):
    """Full statistical equivalence with a from-scratch build."""
    fresh = build_document_index(parse(serialize(index.tree)))
    assert set(index.inverted.keywords()) == set(fresh.inverted.keywords())
    for keyword in fresh.inverted.keywords():
        assert index.inverted.list_length(keyword) == fresh.inverted.list_length(
            keyword
        ), keyword
    for node_type in fresh.statistics.types():
        assert index.node_count(node_type) == fresh.node_count(node_type)
        assert index.distinct_keywords(node_type) == fresh.distinct_keywords(
            node_type
        ), node_type
        for keyword in fresh.inverted.keywords():
            assert index.xml_df(keyword, node_type) == fresh.xml_df(
                keyword, node_type
            ), (keyword, node_type)
            assert index.tf(keyword, node_type) == fresh.tf(
                keyword, node_type
            ), (keyword, node_type)


@pytest.fixture()
def small_index():
    tree = parse(
        """<bib>
        <author><name>john</name><publications>
          <inproceedings><title>xml search</title><year>2003</year></inproceedings>
        </publications></author>
        <author><name>mary</name><publications>
          <article><title>database query</title><year>2005</year></article>
        </publications></author>
        </bib>"""
    )
    return build_document_index(tree)


class TestAppend:
    def test_node_attached(self, small_index):
        node = append_partition(
            small_index, author_spec("alice", ["quantum refinement"])
        )
        assert node.dewey == Dewey((0, 2))
        assert len(small_index.tree.partitions()) == 3

    def test_new_keywords_searchable(self, small_index):
        append_partition(
            small_index, author_spec("alice", ["quantum refinement"])
        )
        assert small_index.has_keyword("quantum")
        engine = XRefine(small_index)
        response = engine.search("quantum refinement")
        assert not response.needs_refinement

    def test_statistics_match_rebuild(self, small_index):
        append_partition(
            small_index, author_spec("alice", ["quantum xml", "xml views"])
        )
        assert_equivalent_to_rebuild(small_index)

    def test_repeated_appends(self, small_index):
        for i in range(4):
            append_partition(
                small_index, author_spec(f"auth{i}", [f"topic{i} xml"])
            )
        assert_equivalent_to_rebuild(small_index)

    def test_existing_keyword_lists_extended(self, small_index):
        before = small_index.inverted.list_length("xml")
        append_partition(small_index, author_spec("bob", ["xml ranking"]))
        assert small_index.inverted.list_length("xml") == before + 1

    def test_cooccurrence_invalidated(self, small_index):
        t = ("bib", "author")
        before = small_index.cooccurrence.count("xml", "2003", t)
        append_partition(
            small_index, author_spec("eve", ["xml 2003 redux"])
        )
        # Note: year element text is "2007"; the title adds 2003+xml.
        after = small_index.cooccurrence.count("xml", "2003", t)
        assert after == before + 1


class TestRemove:
    def test_partition_detached(self, small_index):
        remove_partition(small_index, Dewey((0, 0)))
        assert len(small_index.tree.partitions()) == 1
        assert Dewey((0, 0)) not in small_index.tree

    def test_keywords_disappear(self, small_index):
        remove_partition(small_index, Dewey((0, 0)))
        assert small_index.inverted.list_length("john") == 0
        assert small_index.xml_df("john", ("bib",)) == 0

    def test_statistics_match_rebuild(self, small_index):
        remove_partition(small_index, Dewey((0, 0)))
        assert_equivalent_to_rebuild(small_index)

    def test_remove_non_partition_rejected(self, small_index):
        with pytest.raises(XMLError):
            remove_partition(small_index, Dewey((0, 0, 0)))

    def test_append_after_remove_no_collision(self, small_index):
        """Removing a non-tail partition must not recycle its ordinal
        for a live sibling (len(children) would collide with 0.1)."""
        remove_partition(small_index, Dewey((0, 0)))
        node = append_partition(small_index, author_spec("carol", ["webs"]))
        assert node.dewey == Dewey((0, 2))
        assert_equivalent_to_rebuild(small_index)

    def test_append_after_tail_remove_reuses_safely(self, small_index):
        """Reusing the ordinal of a fully purged *tail* partition keeps
        document order valid and the index consistent."""
        remove_partition(small_index, Dewey((0, 1)))
        node = append_partition(small_index, author_spec("carol", ["webs"]))
        assert node.dewey == Dewey((0, 1))
        assert_equivalent_to_rebuild(small_index)


class TestCachedEngineEquivalence:
    """The engine's result cache must never outlive an index update:
    warm answers always equal a cold engine over a rebuilt document."""

    QUERIES = ["xml search", "database query", "john xml", "mary database"]

    @staticmethod
    def _texts(engine, labels):
        # A rebuild renumbers partitions after removals, so results are
        # compared by subtree content, not by raw Dewey labels.
        return sorted(
            engine.index.tree.node(label).subtree_text() for label in labels
        )

    def _assert_warm_equals_rebuild(self, engine):
        fresh = XRefine(
            build_document_index(parse(serialize(engine.index.tree))),
            cache_size=0,
        )
        for query in self.QUERIES:
            warm = engine.search(query, k=2)
            cold = fresh.search(query, k=2)
            assert warm.needs_refinement == cold.needs_refinement, query
            assert self._texts(engine, warm.original_results) == self._texts(
                fresh, cold.original_results
            ), query
            assert [r.rq.key for r in warm.refinements] == [
                r.rq.key for r in cold.refinements
            ], query
            assert self._texts(engine, engine.slca_search(query)) == (
                self._texts(fresh, fresh.slca_search(query))
            ), query

    def test_append_invalidates_cached_answers(self, small_index):
        engine = XRefine(small_index)
        for query in self.QUERIES:
            engine.search(query, k=2)
        assert len(engine.result_cache) > 0
        append_partition(
            small_index, author_spec("alice", ["xml query tuning"])
        )
        self._assert_warm_equals_rebuild(engine)

    def test_remove_invalidates_cached_answers(self, small_index):
        engine = XRefine(small_index)
        for query in self.QUERIES:
            engine.search(query, k=2)
        remove_partition(small_index, Dewey((0, 0)))
        self._assert_warm_equals_rebuild(engine)

    def test_churn_with_warm_cache_between_steps(self, small_index):
        engine = XRefine(small_index)
        for step in range(3):
            for query in self.QUERIES:
                engine.search(query, k=1)
            append_partition(
                small_index, author_spec(f"gen{step}", ["xml churn data"])
            )
            self._assert_warm_equals_rebuild(engine)
        remove_partition(small_index, Dewey((0, 2)))
        self._assert_warm_equals_rebuild(engine)


class TestRandomizedChurn:
    def test_mixed_operations_stay_equivalent(self, small_index):
        rng = random.Random(31)
        words = ["alpha", "beta", "gamma", "delta", "xml", "query"]
        for step in range(12):
            partitions = small_index.tree.partitions()
            if partitions and rng.random() < 0.4:
                victim = rng.choice(partitions)
                remove_partition(small_index, victim.dewey)
            else:
                titles = [
                    " ".join(rng.sample(words, rng.randint(1, 3)))
                    for _ in range(rng.randint(1, 2))
                ]
                append_partition(
                    small_index, author_spec(f"gen{step}", titles)
                )
            if small_index.tree.partitions():
                assert_equivalent_to_rebuild(small_index)

    def test_search_after_churn(self, small_index):
        append_partition(small_index, author_spec("dora", ["skyline xml"]))
        remove_partition(small_index, Dewey((0, 0)))
        engine = XRefine(small_index)
        response = engine.search("skyline xml")
        assert not response.needs_refinement
        response = engine.search("skylne xml")
        assert response.needs_refinement
        assert response.best.rq.key == frozenset({"skyline", "xml"})
