"""Partition-paged tree: laziness, lookup parity, graceful degradation.

A paged tree must answer every :class:`XMLTree` question identically
to the eager decode while materializing only the partitions actually
touched — and open-time cost must be a directory, not a node per
partition.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_dblp
from repro.errors import XMLError
from repro.index import build_document_index, freeze_index, load_frozen_index
from repro.index.paged_tree import PagedXMLTree, _LazyRootChildren
from repro.xmltree import Dewey, serialize


@pytest.fixture(scope="module")
def eager_index():
    return build_document_index(generate_dblp(num_authors=25, seed=13))


@pytest.fixture(scope="module")
def frozen_path(tmp_path_factory, eager_index):
    path = tmp_path_factory.mktemp("paged") / "corpus.frz"
    freeze_index(eager_index, path)
    return path


@pytest.fixture()
def paged(frozen_path):
    tree = load_frozen_index(frozen_path).tree
    assert isinstance(tree, PagedXMLTree)
    return tree


class TestOpenIsLazy:
    def test_nothing_materializes_at_open(self, paged):
        assert paged.loaded_partition_count() == 0
        assert isinstance(paged.root.children, _LazyRootChildren)

    def test_len_without_decode(self, paged, eager_index):
        assert len(paged) == len(eager_index.tree)
        assert paged.loaded_partition_count() == 0

    def test_partition_count_without_decode(self, paged, eager_index):
        assert paged.partition_count() == (
            eager_index.tree.partition_count()
        )
        assert paged.loaded_partition_count() == 0

    def test_next_partition_ordinal_without_decode(
        self, paged, eager_index
    ):
        assert paged.next_partition_ordinal() == (
            eager_index.tree.next_partition_ordinal()
        )
        assert paged.loaded_partition_count() == 0


class TestFaulting:
    def deep_dewey(self, eager_index, partition):
        """The deepest node of one partition of the eager tree."""
        root = eager_index.tree.partitions()[partition]
        return max(
            (node for node in root.iter_subtree()),
            key=lambda node: len(node.dewey.components),
        ).dewey

    def test_get_faults_exactly_one_partition(self, paged, eager_index):
        dewey = self.deep_dewey(eager_index, 3)
        found = paged.node(dewey)
        reference = eager_index.tree.node(dewey)
        assert found.tag == reference.tag
        assert found.text == reference.text
        assert found.node_type == reference.node_type
        assert paged.loaded_partition_count() == 1

    def test_partition_root_lookup_stays_shallow(self, paged, eager_index):
        pid = eager_index.tree.partitions()[5].dewey
        found = paged.partition_of(self.deep_dewey(eager_index, 5))
        assert found is not None and found.dewey == pid
        assert paged.node(pid) is found
        # Looking at the root alone must not decode its body.
        assert paged.loaded_partition_count() == 0

    def test_iter_subtree_touches_one_partition(self, paged, eager_index):
        pid = eager_index.tree.partitions()[7].dewey
        mine = [node.dewey for node in paged.iter_subtree(pid)]
        reference = [
            node.dewey for node in eager_index.tree.iter_subtree(pid)
        ]
        assert mine == reference
        assert paged.loaded_partition_count() == 1

    def test_missing_deweys(self, paged):
        assert paged.get(Dewey((0, 10**6))) is None
        assert paged.get(Dewey((0, 0, 10**6))) is None
        assert Dewey((0, 10**6)) not in paged
        with pytest.raises(XMLError):
            paged.node(Dewey((0, 10**6, 4)))


class TestFullLoadParity:
    def test_serialization_identical(self, paged, eager_index):
        assert serialize(paged) == serialize(eager_index.tree)
        # The recursive walk forced every body without ensure_loaded.
        assert paged.loaded_partition_count() == paged.partition_count()
        paged.ensure_loaded()
        assert paged.fully_loaded

    def test_node_types_identical(self, paged, eager_index):
        assert paged.node_types() == eager_index.tree.node_types()

    def test_len_stable_across_full_load(self, paged):
        before = len(paged)
        paged.ensure_loaded()
        assert len(paged) == before

    def test_iter_nodes_order(self, paged, eager_index):
        assert [node.dewey for node in paged.iter_nodes()] == [
            node.dewey for node in eager_index.tree.iter_nodes()
        ]
