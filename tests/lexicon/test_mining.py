"""Tests for the rule miner (the automated annotator)."""

import pytest

from repro.lexicon import (
    OP_MERGING,
    OP_SPLIT,
    OP_SUBSTITUTION,
    RuleMiner,
    Thesaurus,
)

VOCAB = [
    "online", "on", "line", "database", "machine", "learning",
    "inproceedings", "article", "world", "wide", "web", "keyword",
    "key", "word", "matching", "match", "skyline", "computation",
]


@pytest.fixture
def miner():
    return RuleMiner(VOCAB)


class TestMergingRules:
    def test_adjacent_pair(self, miner):
        rules = miner.mine(["on", "line", "database"])
        merges = [r for r in rules if r.operation == OP_MERGING]
        assert any(r.lhs == ("on", "line") and r.rhs == ("online",) for r in merges)

    def test_non_adjacent_not_merged(self, miner):
        rules = miner.mine(["on", "database", "line"])
        merges = [r for r in rules if r.operation == OP_MERGING]
        assert not any(r.rhs == ("online",) for r in merges)

    def test_merge_target_must_exist(self):
        miner = RuleMiner(["on", "line"])  # no "online" in corpus
        rules = miner.mine(["on", "line"])
        assert not any(r.operation == OP_MERGING for r in rules)


class TestSplitRules:
    def test_compound_split(self, miner):
        rules = miner.mine(["keyword"])
        splits = [r for r in rules if r.operation == OP_SPLIT]
        assert any(r.rhs == ("key", "word") for r in splits)

    def test_fragments_must_exist(self):
        miner = RuleMiner(["online"])  # no "on"/"line"
        rules = miner.mine(["online"])
        assert not any(r.operation == OP_SPLIT for r in rules)


class TestSpellingRules:
    def test_typo_correction(self, miner):
        rules = miner.mine(["machin"])
        subs = [r for r in rules if r.operation == OP_SUBSTITUTION]
        assert any(
            r.lhs == ("machin",) and r.rhs == ("machine",) and r.ds == 1
            for r in subs
        )

    def test_distance_is_the_score(self, miner):
        rules = miner.mine(["mchine"])
        subs = [r for r in rules if r.rhs == ("machine",)]
        assert subs and subs[0].ds == 1

    def test_in_corpus_word_not_spellchecked(self, miner):
        rules = miner.mine(["machine"])
        assert not any(
            r.lhs == ("machine",) and len(r.rhs) == 1 and r.ds >= 1
            and r.operation == OP_SUBSTITUTION
            and r.rhs[0] not in ("matching", "match", "learning")
            # stemming/synonym rules are fine; spelling ones are not
            and r.rhs[0] in ("machine",)
            for r in rules
        )

    def test_cap_respected(self):
        vocab = ["wordaa", "wordab", "wordac", "wordad", "wordae"]
        miner = RuleMiner(vocab, max_spelling=2)
        rules = miner.mine(["wordax"])
        spelling = [
            r for r in rules
            if r.operation == OP_SUBSTITUTION and r.lhs == ("wordax",)
        ]
        assert len(spelling) <= 2


class TestSynonymAndAcronymRules:
    def test_synonym_substitution(self, miner):
        rules = miner.mine(["publication"])
        assert any(
            r.rhs in (("article",), ("inproceedings",)) for r in rules
        )

    def test_synonym_must_be_in_corpus(self):
        miner = RuleMiner(["machine"])  # no synonyms present
        rules = miner.mine(["publication"])
        assert len([r for r in rules if r.lhs == ("publication",)]) == 0

    def test_acronym_expansion(self, miner):
        rules = miner.mine(["www"])
        assert any(
            r.lhs == ("www",) and r.rhs == ("world", "wide", "web")
            for r in rules
        )

    def test_acronym_contraction_needs_adjacency(self, miner):
        vocab = VOCAB + ["www"]
        miner = RuleMiner(vocab)
        rules = miner.mine(["world", "wide", "web"])
        assert any(
            r.lhs == ("world", "wide", "web") and r.rhs == ("www",)
            for r in rules
        )

    def test_stemming_substitution(self, miner):
        rules = miner.mine(["match"])
        assert any(r.rhs == ("matching",) for r in rules)


class TestMinedRuleSet:
    def test_deletion_cost_propagates(self):
        miner = RuleMiner(VOCAB, deletion_cost=3)
        assert miner.mine(["online"]).deletion_cost == 3

    def test_paper_example_qx1(self, miner):
        """'eficient, key, word, search' needs spelling + merging."""
        vocab = VOCAB + ["efficient", "search"]
        miner = RuleMiner(vocab)
        rules = miner.mine(["eficient", "key", "word", "search"])
        assert any(r.rhs == ("efficient",) for r in rules)
        assert any(
            r.lhs == ("key", "word") and r.rhs == ("keyword",) for r in rules
        )
