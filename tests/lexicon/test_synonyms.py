"""Tests for the thesaurus and acronym table."""

from repro.lexicon import AcronymTable, Thesaurus


class TestThesaurus:
    def test_paper_synonyms(self):
        thesaurus = Thesaurus()
        synonyms = dict(thesaurus.synonyms("publication"))
        assert "article" in synonyms
        assert "inproceedings" in synonyms

    def test_symmetry(self):
        thesaurus = Thesaurus()
        assert thesaurus.are_synonyms("article", "inproceedings")
        assert thesaurus.are_synonyms("inproceedings", "article")

    def test_score(self):
        thesaurus = Thesaurus()
        assert thesaurus.score("article", "publication") == 1
        assert thesaurus.score("article", "machine") is None

    def test_case_insensitive(self):
        thesaurus = Thesaurus()
        assert thesaurus.are_synonyms("Article", "INPROCEEDINGS")

    def test_custom_groups(self):
        thesaurus = Thesaurus(groups=[({"foo", "bar"}, 2)])
        assert thesaurus.synonyms("foo") == [("bar", 2)]
        assert thesaurus.synonyms("publication") == []

    def test_multi_group_minimum_score(self):
        thesaurus = Thesaurus(groups=[])
        thesaurus.add_group({"a", "b"}, 3)
        thesaurus.add_group({"a", "b", "c"}, 1)
        assert thesaurus.score("a", "b") == 1

    def test_unknown_word(self):
        assert Thesaurus().synonyms("zzz") == []

    def test_vocabulary(self):
        thesaurus = Thesaurus(groups=[({"x", "y"}, 1)])
        assert thesaurus.vocabulary() == ["x", "y"]


class TestAcronymTable:
    def test_paper_acronym_www(self):
        table = AcronymTable()
        assert table.expand("www") == ("world", "wide", "web")
        assert table.contract(("world", "wide", "web")) == "www"

    def test_case_insensitive(self):
        table = AcronymTable()
        assert table.expand("WWW") == ("world", "wide", "web")
        assert table.contract(("World", "Wide", "Web")) == "www"

    def test_contains(self):
        table = AcronymTable()
        assert "ml" in table
        assert "zz" not in table

    def test_unknown(self):
        table = AcronymTable()
        assert table.expand("zz") is None
        assert table.contract(("no", "such")) is None

    def test_custom_table(self):
        table = AcronymTable({"lol": ("laugh", "out", "loud")})
        assert table.expand("lol") == ("laugh", "out", "loud")
        assert table.expand("www") is None

    def test_add(self):
        table = AcronymTable({})
        table.add("tps", ("transactions", "per", "second"))
        assert table.contract(("transactions", "per", "second")) == "tps"
