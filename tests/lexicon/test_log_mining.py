"""Tests for query-log based rule mining."""

from repro.lexicon import (
    OP_MERGING,
    OP_SPLIT,
    OP_SUBSTITUTION,
    mine_rules_from_log,
    rule_support,
)


def pairs(*items):
    return [tuple(map(tuple, pair)) for pair in items]


class TestAlignment:
    def test_merge_rule_mined(self):
        rewrites = pairs(
            ((["on", "line", "xml"]), (["online", "xml"])),
            ((["on", "line", "search"]), (["online", "search"])),
        )
        rules = mine_rules_from_log(rewrites, min_support=2)
        merges = [r for r in rules if r.operation == OP_MERGING]
        assert any(
            r.lhs == ("on", "line") and r.rhs == ("online",) for r in merges
        )

    def test_split_rule_mined(self):
        rewrites = pairs(
            ((["keyword", "fast"]), (["key", "word", "fast"])),
            ((["keyword", "slow"]), (["key", "word", "slow"])),
        )
        rules = mine_rules_from_log(rewrites, min_support=2)
        splits = [r for r in rules if r.operation == OP_SPLIT]
        assert any(
            r.lhs == ("keyword",) and r.rhs == ("key", "word")
            for r in splits
        )

    def test_spelling_rule_with_distance(self):
        rewrites = pairs(
            ((["databse", "xml"]), (["database", "xml"])),
            ((["databse", "web"]), (["database", "web"])),
        )
        rules = mine_rules_from_log(rewrites, min_support=2)
        subs = [r for r in rules if r.operation == OP_SUBSTITUTION]
        assert any(
            r.lhs == ("databse",) and r.rhs == ("database",) and r.ds == 1
            for r in subs
        )

    def test_kept_keywords_not_rules(self):
        rewrites = pairs(
            ((["xml", "databse"]), (["xml", "database"])),
            ((["xml", "databse"]), (["xml", "database"])),
        )
        rules = mine_rules_from_log(rewrites, min_support=1)
        assert not any("xml" in r.lhs for r in rules)

    def test_deletions_not_rules(self):
        """A dropped stray keyword needs no stored rule."""
        rewrites = pairs(
            ((["xml", "zzzunique"]), (["xml"])),
            ((["xml", "zzzunique"]), (["xml"])),
        )
        rules = mine_rules_from_log(rewrites, min_support=1)
        assert len(rules) == 0


class TestSupport:
    def test_min_support_filters_noise(self):
        rewrites = pairs(
            ((["databse"]), (["database"])),  # support 1 only
        )
        assert len(mine_rules_from_log(rewrites, min_support=2)) == 0
        assert len(mine_rules_from_log(rewrites, min_support=1)) == 1

    def test_rule_support_counts(self):
        rewrites = pairs(
            ((["databse"]), (["database"])),
            ((["databse"]), (["database"])),
            ((["machin"]), (["machine"])),
        )
        support = rule_support(rewrites)
        assert support[("substitute", "databse", "database")] == 2
        assert support[("substitute", "machin", "machine")] == 1


class TestEndToEnd:
    def test_mined_rules_fix_logged_queries(self, dblp_index, dblp_engine):
        """Rules mined from a simulated log repair fresh failures."""
        from repro.workload import simulate_log

        log = simulate_log(
            dblp_index, sessions=80, rewrite_probability=1.0, seed=13
        )
        rewrites = log.rewrite_pairs()
        rules = mine_rules_from_log(rewrites, min_support=1)
        assert len(rules) > 10

        repaired = 0
        checked = 0
        for dirty, clean in rewrites[:10]:
            response = dblp_engine.search(dirty, k=3, rules=rules)
            if not response.needs_refinement:
                continue
            checked += 1
            if frozenset(clean) in [r.rq.key for r in response.refinements]:
                repaired += 1
        if checked:
            assert repaired >= checked * 0.5
