"""Porter stemmer tests against classic reference vectors."""

import pytest

from repro.lexicon import share_stem, stem


class TestKnownStems:
    @pytest.mark.parametrize(
        "word, expected",
        [
            # Canonical examples from Porter's paper.
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("formative", "form"),
            ("formalize", "formal"),
            # Note: Porter's paper lists electriciti->electric as a
            # *step-3* example; the full algorithm's step 4 then strips
            # the -ic (m("electr") = 2 > 1), as NLTK's reference
            # implementation also does.
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("effective", "effect"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_porter_reference(self, word, expected):
        assert stem(word) == expected

    @pytest.mark.parametrize(
        "word, expected",
        [
            # Domain words the refinement rules rely on.
            ("matching", "match"),
            ("databases", "databas"),
            ("learning", "learn"),
            ("queries", "queri"),
        ],
    )
    def test_domain_words(self, word, expected):
        assert stem(word) == expected

    def test_short_words_untouched(self):
        assert stem("is") == "is"
        assert stem("a") == "a"


class TestShareStem:
    def test_inflections_share(self):
        assert share_stem("match", "matching")
        assert share_stem("learn", "learning")

    def test_unrelated_do_not(self):
        assert not share_stem("database", "machine")

    def test_identical_words_excluded(self):
        assert not share_stem("match", "match")
