"""Tests for Levenshtein distance and spelling candidates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lexicon import (
    bounded_distance,
    levenshtein,
    spelling_candidates,
    within_distance,
)

words = st.text(alphabet="abcde", max_size=10)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("mecin", "machine", 3),
            ("databse", "database", 1),
            ("eficient", "efficient", 1),
            ("same", "same", 0),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(words, words)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words, words)
    def test_length_difference_lower_bound(self, a, b):
        assert levenshtein(a, b) >= abs(len(a) - len(b))


class TestWithinDistance:
    @given(words, words, st.integers(0, 4))
    def test_agrees_with_exact(self, a, b, limit):
        assert within_distance(a, b, limit) == (levenshtein(a, b) <= limit)

    def test_early_exit_on_length(self):
        assert not within_distance("ab", "abcdefgh", 2)

    @given(words, words, st.integers(0, 4))
    def test_bounded_distance(self, a, b, limit):
        result = bounded_distance(a, b, limit)
        exact = levenshtein(a, b)
        if exact <= limit:
            assert result == exact
        else:
            assert result is None


class TestSpellingCandidates:
    VOCAB = ["machine", "matching", "database", "databases", "match"]

    def test_finds_typo_target(self):
        got = spelling_candidates("machin", self.VOCAB)
        assert got[0] == ("machine", 1)

    def test_sorted_by_distance(self):
        got = spelling_candidates("databse", self.VOCAB)
        distances = [d for _, d in got]
        assert distances == sorted(distances)

    def test_excludes_self(self):
        got = spelling_candidates("machine", self.VOCAB)
        assert all(word != "machine" for word, _ in got)

    def test_short_terms_skipped(self):
        assert spelling_candidates("cat", self.VOCAB) == []

    def test_limit_respected(self):
        got = spelling_candidates("match", self.VOCAB, limit=1)
        assert all(d <= 1 for _, d in got)
