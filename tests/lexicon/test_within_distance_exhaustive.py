"""Exhaustive band-edge check of ``within_distance``.

The banded DP only fills cells within ``limit`` of the diagonal; an
off-by-one at the band edge shows up exactly when the true distance
equals the limit or exceeds it by one.  Every pair over a 2-letter
alphabet up to length 6 is checked for every limit 0..3, plus a
length-skew sweep where the band clips hardest.
"""

import itertools

from repro.lexicon.edit_distance import levenshtein, within_distance

ALPHABET = "ab"
MAX_LEN = 6


def _words():
    for length in range(MAX_LEN + 1):
        for letters in itertools.product(ALPHABET, repeat=length):
            yield "".join(letters)


class TestWithinDistanceExhaustive:
    def test_agrees_with_levenshtein_everywhere(self):
        words = list(_words())
        for a in words:
            for b in words:
                reference = levenshtein(a, b)
                for limit in range(4):
                    assert within_distance(a, b, limit) == (
                        reference <= limit
                    ), (
                        f"within_distance({a!r}, {b!r}, {limit}) != "
                        f"levenshtein == {reference}"
                    )

    def test_length_skew_band_edges(self):
        # |len(a) - len(b)| > limit must short-circuit to False, and
        # == limit (pure insertions) must be True.
        for limit in range(4):
            assert within_distance("a" * (limit + 1), "", limit) is False
            assert within_distance("", "a" * (limit + 1), limit) is False
            assert within_distance("a" * limit, "", limit) is True
            assert within_distance("", "a" * limit, limit) is True

    def test_distance_exactly_at_limit(self):
        # Three substitutions at limit 3 — the far band edge.
        assert within_distance("aaa", "bbb", 3) is True
        assert within_distance("aaa", "bbb", 2) is False
