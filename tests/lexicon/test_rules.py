"""Tests for refinement rules and the rule set index."""

import pytest

from repro.errors import RuleError
from repro.lexicon import (
    OP_MERGING,
    OP_SPLIT,
    OP_SUBSTITUTION,
    RefinementRule,
    RuleSet,
    acronym_rules,
    merging_rule,
    split_rule,
    substitution_rule,
)


class TestRuleConstruction:
    def test_merging_rule_r1(self):
        rule = merging_rule(("on", "line"), "online")
        assert rule.lhs == ("on", "line")
        assert rule.rhs == ("online",)
        assert rule.operation == OP_MERGING
        assert rule.ds == 1  # one removed space

    def test_merging_three_parts(self):
        rule = merging_rule(("a", "b", "c"), "abc")
        assert rule.ds == 2

    def test_merging_spelling_mismatch(self):
        with pytest.raises(RuleError):
            merging_rule(("on", "line"), "offline")

    def test_merging_needs_two_parts(self):
        with pytest.raises(RuleError):
            merging_rule(("online",), "online")

    def test_split_rule_r7(self):
        rule = split_rule("online", ("on", "line"))
        assert rule.operation == OP_SPLIT
        assert rule.ds == 1

    def test_split_mismatch(self):
        with pytest.raises(RuleError):
            split_rule("online", ("off", "line"))

    def test_substitution_r3(self):
        rule = substitution_rule("article", "inproceedings")
        assert rule.operation == OP_SUBSTITUTION
        assert rule.ds == 1

    def test_substitution_spelling_r5(self):
        rule = substitution_rule("mecin", "machine", ds=2)
        assert rule.ds == 2

    def test_acronym_both_directions_r6(self):
        expand, contract = acronym_rules("www", ("world", "wide", "web"))
        assert expand.lhs == ("www",)
        assert expand.rhs == ("world", "wide", "web")
        assert contract.lhs == ("world", "wide", "web")
        assert contract.rhs == ("www",)
        assert expand.ds == contract.ds == 1

    def test_empty_sides_rejected(self):
        with pytest.raises(RuleError):
            RefinementRule((), ("x",), OP_SUBSTITUTION, 1)
        with pytest.raises(RuleError):
            RefinementRule(("x",), (), OP_SUBSTITUTION, 1)

    def test_bad_operation_rejected(self):
        with pytest.raises(RuleError):
            RefinementRule(("a",), ("b",), "teleport", 1)

    def test_non_positive_ds_rejected(self):
        with pytest.raises(RuleError):
            RefinementRule(("a",), ("b",), OP_SUBSTITUTION, 0)

    def test_equality_and_hash(self):
        a = substitution_rule("x", "y")
        b = substitution_rule("x", "y")
        assert a == b
        assert hash(a) == hash(b)


class TestRuleSet:
    def make(self):
        return RuleSet(
            [
                merging_rule(("on", "line"), "online"),
                split_rule("online", ("on", "line")),
                substitution_rule("article", "inproceedings"),
            ]
        )

    def test_rules_ending_with(self):
        rules = self.make()
        endings = rules.rules_ending_with("line")
        assert len(endings) == 1
        assert endings[0].operation == OP_MERGING

    def test_rules_ending_with_single_lhs(self):
        rules = self.make()
        assert len(rules.rules_ending_with("online")) == 1
        assert len(rules.rules_ending_with("article")) == 1

    def test_no_rules_for_unknown(self):
        assert self.make().rules_ending_with("zebra") == []

    def test_generated_keywords(self):
        generated = self.make().generated_keywords()
        assert generated == {"online", "on", "line", "inproceedings"}

    def test_duplicates_ignored(self):
        rules = self.make()
        size = len(rules)
        rules.add(substitution_rule("article", "inproceedings"))
        assert len(rules) == size

    def test_deletion_cost_default(self):
        assert RuleSet().deletion_cost == 2

    def test_deletion_cost_positive(self):
        with pytest.raises(RuleError):
            RuleSet(deletion_cost=0)

    def test_deletion_greater_than_unit_rules(self):
        """Section III-B: deletion outweighs the other operations."""
        rules = self.make()
        unit_costs = [rule.ds for rule in rules]
        assert all(rules.deletion_cost > 0 for _ in unit_costs)
        assert rules.deletion_cost > min(unit_costs)
