"""Tests for the streaming XML tokenizer."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltree.tokenizer import (
    COMMENT,
    EMPTY,
    END,
    PI,
    START,
    TEXT,
    Token,
    tokenize,
)


def kinds(text):
    return [token.kind for token in tokenize(text)]


def tokens(text):
    return list(tokenize(text))


class TestBasicTokens:
    def test_simple_element(self):
        result = tokens("<a>hi</a>")
        assert result == [
            Token(START, "a"),
            Token(TEXT, "hi"),
            Token(END, "a"),
        ]

    def test_empty_element(self):
        assert tokens("<a/>") == [Token(EMPTY, "a")]

    def test_nested(self):
        assert kinds("<a><b>x</b></a>") == [START, START, TEXT, END, END]

    def test_attributes_double_quoted(self):
        (token,) = tokens('<a key="v1" other="v2"/>')
        assert token.attributes == {"key": "v1", "other": "v2"}

    def test_attributes_single_quoted(self):
        (token,) = tokens("<a key='v'/>")
        assert token.attributes == {"key": "v"}

    def test_whitespace_in_tag(self):
        result = tokens('<a   key = "v"  >x</a>')
        assert result[0].attributes == {"key": "v"}

    def test_names_with_punctuation(self):
        assert tokens("<ns:tag-1.x/>")[0].value == "ns:tag-1.x"


class TestEntities:
    def test_named_entities_in_text(self):
        result = tokens("<a>&lt;&amp;&gt;</a>")
        assert result[1].value == "<&>"

    def test_numeric_entity(self):
        assert tokens("<a>&#65;</a>")[1].value == "A"

    def test_hex_entity(self):
        assert tokens("<a>&#x41;</a>")[1].value == "A"

    def test_entity_in_attribute(self):
        (token,) = tokens('<a k="a&amp;b"/>')
        assert token.attributes == {"k": "a&b"}

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            tokens("<a>&nope;</a>")


class TestStructuralPieces:
    def test_comment(self):
        result = tokens("<a><!-- note --></a>")
        assert result[1].kind == COMMENT
        assert result[1].value == " note "

    def test_pi(self):
        result = tokens('<?xml version="1.0"?><a/>')
        assert result[0].kind == PI

    def test_cdata(self):
        result = tokens("<a><![CDATA[<raw>&stuff;]]></a>")
        assert result[1] == Token(TEXT, "<raw>&stuff;")

    def test_doctype_skipped(self):
        assert kinds("<!DOCTYPE bib SYSTEM 'x.dtd'><a/>") == [EMPTY]

    def test_doctype_internal_subset_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tokens("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>")


class TestErrors:
    def test_unterminated_comment(self):
        with pytest.raises(XMLSyntaxError):
            tokens("<a><!-- oops</a>")

    def test_unterminated_start_tag(self):
        with pytest.raises(XMLSyntaxError):
            tokens("<a")

    def test_missing_attribute_value(self):
        with pytest.raises(XMLSyntaxError):
            tokens("<a k></a>")

    def test_unquoted_attribute_value(self):
        with pytest.raises(XMLSyntaxError):
            tokens("<a k=v></a>")

    def test_duplicate_attribute(self):
        with pytest.raises(XMLSyntaxError):
            tokens('<a k="1" k="2"/>')

    def test_bad_end_tag(self):
        with pytest.raises(XMLSyntaxError):
            tokens("<a></a b>")

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            tokens("<a>\n<b k=></b></a>")
        assert excinfo.value.line == 2


class TestPositions:
    def test_line_tracking(self):
        result = tokens("<a>\n  <b/>\n</a>")
        b_token = result[1] if result[1].kind == EMPTY else result[2]
        assert b_token.line == 2

    def test_text_between_tags_preserved(self):
        result = tokens("<a>one<b/>two</a>")
        texts = [t.value for t in result if t.kind == TEXT]
        assert texts == ["one", "two"]
