"""Tests for XML entity escaping/decoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import XMLSyntaxError
from repro.xmltree.escape import (
    decode_entity,
    escape_attribute,
    escape_text,
    unescape,
)


class TestEscape:
    def test_text_escapes_markup(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_text_leaves_quotes(self):
        assert escape_text('say "hi"') == 'say "hi"'

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_noop_fast_path(self):
        text = "plain words only"
        assert escape_text(text) is text


class TestDecodeEntity:
    @pytest.mark.parametrize(
        "body, expected",
        [
            ("lt", "<"),
            ("gt", ">"),
            ("amp", "&"),
            ("apos", "'"),
            ("quot", '"'),
            ("#65", "A"),
            ("#x41", "A"),
            ("#X41", "A"),
        ],
    )
    def test_known(self, body, expected):
        assert decode_entity(body) == expected

    def test_unknown_named(self):
        with pytest.raises(XMLSyntaxError):
            decode_entity("nbsp")

    def test_bad_numeric(self):
        with pytest.raises(XMLSyntaxError):
            decode_entity("#zz")

    def test_out_of_range(self):
        with pytest.raises(XMLSyntaxError):
            decode_entity("#99999999999")


class TestUnescape:
    def test_mixed(self):
        assert unescape("a&lt;b &amp;&#33;") == "a<b &!"

    def test_no_entities_fast_path(self):
        text = "no entities"
        assert unescape(text) is text

    def test_unterminated(self):
        with pytest.raises(XMLSyntaxError):
            unescape("broken &amp")

    @given(st.text(alphabet="abc<>&\"' 123", max_size=30))
    def test_roundtrip_text(self, value):
        assert unescape(escape_text(value)) == value

    @given(st.text(alphabet="abc<>&\"' 123", max_size=30))
    def test_roundtrip_attribute(self, value):
        assert unescape(escape_attribute(value)) == value
