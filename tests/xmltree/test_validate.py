"""Tests for structural validation and multi-document merging."""

import pytest

from repro.errors import XMLError
from repro.xmltree import (
    Dewey,
    XMLNode,
    build_tree,
    check_tree,
    merge_documents,
    parse,
)


class TestCheckTree:
    def test_valid_tree(self, figure1_tree):
        assert check_tree(figure1_tree) == len(figure1_tree)

    def test_valid_generated(self, dblp_tree):
        assert check_tree(dblp_tree) == len(dblp_tree)

    def test_detects_broken_dewey(self):
        tree = build_tree(("a", None, [("b", "x")]))
        # Sabotage: relabel the child inconsistently.
        bad = XMLNode("b", Dewey((0, 5, 1)), ("a", "b"), "x")
        tree.root.children[0] = bad
        with pytest.raises(XMLError):
            check_tree(tree)

    def test_detects_broken_type(self):
        tree = build_tree(("a", None, [("b", "x")]))
        tree.root.children[0].node_type = ("z", "b")
        with pytest.raises(XMLError):
            check_tree(tree)

    def test_detects_stale_lookup(self):
        tree = build_tree(("a", None, [("b", "x")]))
        phantom = XMLNode("c", Dewey((0, 9)), ("a", "c"))
        tree._by_dewey[phantom.dewey] = phantom
        tree._ordered.append(phantom.dewey.components)
        with pytest.raises(XMLError):
            check_tree(tree)

    def test_survives_partition_churn(self, figure1_tree):
        from repro.index import (
            append_partition,
            build_document_index,
            remove_partition,
        )

        index = build_document_index(parse("<bib><author><name>x</name></author></bib>"))
        append_partition(
            index, ("author", None, [("name", "y")])
        )
        remove_partition(index, Dewey((0, 0)))
        check_tree(index.tree)


class TestMergeDocuments:
    def test_each_document_is_a_partition(self):
        docs = [
            parse("<ad><headline>red shoes</headline></ad>"),
            parse("<ad><headline>blue hats</headline></ad>"),
            parse("<listing><title>green bags</title></listing>"),
        ]
        merged = merge_documents(docs)
        assert merged.root.tag == "collection"
        assert len(merged.partitions()) == 3
        check_tree(merged)

    def test_cross_document_results_are_root_only(self):
        """A query spanning two documents can only 'match' at the
        synthetic root — which meaningful-SLCA rejects, exactly like
        the single-document meaningless-root case."""
        from repro import XRefine

        docs = [
            parse("<ad><headline>red shoes</headline></ad>"),
            parse("<ad><headline>blue hats</headline></ad>"),
        ]
        engine = XRefine.from_tree(merge_documents(docs))
        slcas = engine.slca_search("red hats")
        assert slcas == [Dewey.root()]
        response = engine.search("red hats", k=2)
        assert response.needs_refinement

    def test_search_within_one_document(self):
        from repro import XRefine

        docs = [
            parse("<ad><headline>red shoes</headline><price>10</price></ad>"),
            parse("<ad><headline>blue hats</headline><price>20</price></ad>"),
        ]
        engine = XRefine.from_tree(merge_documents(docs))
        response = engine.search("blue hats")
        assert not response.needs_refinement
