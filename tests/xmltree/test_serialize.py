"""Round-trip tests: build/parse -> serialize -> parse."""

from hypothesis import given
from hypothesis import strategies as st

from repro.xmltree import build_tree, parse, serialize

tags = st.sampled_from(["a", "b", "title", "year", "name"])
# Texts are pre-stripped: the parser normalizes leading/trailing
# whitespace of character data, so only stripped text round-trips.
texts = st.one_of(
    st.none(),
    st.text(
        alphabet="abcxyz<>&'\" 0123456789",
        min_size=1,
        max_size=12,
    ).map(str.strip).filter(bool),
)


def specs(depth):
    if depth == 0:
        return st.tuples(tags, texts)
    return st.one_of(
        st.tuples(tags, texts),
        st.tuples(
            tags,
            st.none(),
            st.lists(specs(depth - 1), min_size=1, max_size=3),
        ),
    )


def _normalized(spec):
    tag = spec[0]
    text = spec[1] if len(spec) > 1 else None
    children = spec[2] if len(spec) > 2 else []
    return (tag, (text or "").strip(), [_normalized(c) for c in children])


def _tree_spec(node):
    return (node.tag, node.text, [_tree_spec(c) for c in node.children])


class TestSerialize:
    def test_simple_roundtrip(self):
        tree = parse("<a><b>x &amp; y</b><c/></a>")
        again = parse(serialize(tree))
        assert _tree_spec(again.root) == _tree_spec(tree.root)

    def test_declaration_emitted(self):
        tree = parse("<a/>")
        assert serialize(tree).startswith("<?xml")

    def test_declaration_optional(self):
        tree = parse("<a/>")
        assert serialize(tree, declaration=False).startswith("<a")

    def test_escaping(self):
        tree = build_tree(("a", "x < y & z"))
        text = serialize(tree)
        assert "&lt;" in text and "&amp;" in text
        assert parse(text).root.text == "x < y & z"

    @given(specs(3))
    def test_build_serialize_parse_roundtrip(self, spec):
        tree = build_tree(spec)
        again = parse(serialize(tree))
        assert _tree_spec(again.root) == _tree_spec(tree.root)

    @given(specs(2))
    def test_deweys_regenerated_identically(self, spec):
        tree = build_tree(spec)
        again = parse(serialize(tree))
        assert [n.dewey for n in tree.iter_nodes()] == [
            n.dewey for n in again.iter_nodes()
        ]


class TestBuildTree:
    def test_minimal(self):
        tree = build_tree(("root", "text"))
        assert tree.root.tag == "root"
        assert tree.root.text == "text"

    def test_node_types_assigned(self):
        tree = build_tree(("a", None, [("b", None, [("c", "x")])]))
        nodes = {node.tag: node for node in tree.iter_nodes()}
        assert nodes["c"].node_type == ("a", "b", "c")

    def test_deep_tree_stack_safe(self):
        spec = ("n0", None)
        for i in range(1, 2000):
            spec = (f"n{i}", None, [spec])
        tree = build_tree(spec)
        assert len(tree) == 2000
