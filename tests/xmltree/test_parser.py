"""Tests for the DOM builder (Dewey/node-type assignment, events)."""

import pytest

from repro.errors import XMLError, XMLSyntaxError
from repro.xmltree import (
    EVENT_END,
    EVENT_START,
    Dewey,
    iterparse,
    parse,
)


class TestParse:
    def test_root_label(self):
        tree = parse("<bib><author/></bib>")
        assert tree.root.dewey == Dewey.root()
        assert tree.root.tag == "bib"

    def test_children_labels(self):
        tree = parse("<a><b/><c/><d/></a>")
        assert [child.dewey for child in tree.root.children] == [
            Dewey((0, 0)),
            Dewey((0, 1)),
            Dewey((0, 2)),
        ]

    def test_node_types_are_prefix_paths(self):
        tree = parse("<bib><author><name>x</name></author></bib>")
        name = tree.node(Dewey((0, 0, 0)))
        assert name.node_type == ("bib", "author", "name")

    def test_text_collected(self):
        tree = parse("<a><b>hello world</b></a>")
        assert tree.node(Dewey((0, 0))).text == "hello world"

    def test_mixed_text_concatenated(self):
        tree = parse("<a>one<b/>two</a>")
        assert tree.root.text == "one two"

    def test_whitespace_only_text_dropped(self):
        tree = parse("<a>\n  <b/>\n</a>")
        assert tree.root.text == ""

    def test_attributes_become_children(self):
        tree = parse('<a key="v"><b/></a>')
        first = tree.root.children[0]
        assert first.tag == "key"
        assert first.text == "v"
        assert first.node_type == ("a", "key")

    def test_attributes_can_be_dropped(self):
        tree = parse('<a key="v"><b/></a>', keep_attributes=False)
        assert [child.tag for child in tree.root.children] == ["b"]

    def test_figure1_shape(self, figure1_tree):
        partitions = figure1_tree.partitions()
        assert [p.tag for p in partitions] == ["author", "author", "author"]
        assert partitions[0].dewey == Dewey((0, 0))


class TestParseErrors:
    def test_mismatched_tags(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><b></a></b>")

    def test_unclosed(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><b>")

    def test_stray_end(self):
        with pytest.raises(XMLSyntaxError):
            parse("</a>")

    def test_two_roots(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/><b/>")

    def test_empty_document(self):
        with pytest.raises(XMLSyntaxError):
            parse("   ")

    def test_text_outside_root(self):
        with pytest.raises(XMLSyntaxError):
            parse("junk<a/>")


class TestIterparse:
    def test_event_order(self):
        events = [
            (event, node.tag)
            for event, node in iterparse("<a><b/><c><d/></c></a>")
        ]
        assert events == [
            (EVENT_START, "a"),
            (EVENT_START, "b"),
            (EVENT_END, "b"),
            (EVENT_START, "c"),
            (EVENT_START, "d"),
            (EVENT_END, "d"),
            (EVENT_END, "c"),
            (EVENT_END, "a"),
        ]

    def test_end_event_nodes_complete(self):
        for event, node in iterparse("<a><b>x</b></a>"):
            if event == EVENT_END and node.tag == "b":
                assert node.text == "x"


class TestTreeAccess:
    def test_len(self, figure1_tree):
        assert len(figure1_tree) == sum(
            1 for _ in figure1_tree.root.iter_subtree()
        )

    def test_node_lookup_missing(self, figure1_tree):
        with pytest.raises(XMLError):
            figure1_tree.node(Dewey((0, 99)))

    def test_get_default(self, figure1_tree):
        assert figure1_tree.get(Dewey((0, 99))) is None

    def test_iter_nodes_document_order(self, figure1_tree):
        labels = [node.dewey.components for node in figure1_tree.iter_nodes()]
        assert labels == sorted(labels)

    def test_iter_subtree_scoped(self, figure1_tree):
        root = Dewey((0, 1))
        for node in figure1_tree.iter_subtree(root):
            assert root.is_ancestor_or_self_of(node.dewey)

    def test_partition_of(self, figure1_tree):
        node = figure1_tree.partition_of(Dewey((0, 1, 1, 0)))
        assert node.dewey == Dewey((0, 1))

    def test_node_types_count(self, figure1_tree):
        counts = figure1_tree.node_types()
        assert counts[("bib",)] == 1
        assert counts[("bib", "author")] == 3
