"""Tests for Dewey labels: ordering, LCA, prefixes, partitions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DeweyError
from repro.xmltree import Dewey, descendant_range_key, lca_of_all

components = st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=6)


class TestConstruction:
    def test_from_tuple(self):
        assert Dewey((0, 1, 2)).components == (0, 1, 2)

    def test_parse(self):
        assert Dewey.parse("0.1.2") == Dewey((0, 1, 2))

    def test_parse_single(self):
        assert Dewey.parse("0") == Dewey.root()

    def test_parse_rejects_garbage(self):
        with pytest.raises(DeweyError):
            Dewey.parse("0.a.2")

    def test_empty_rejected(self):
        with pytest.raises(DeweyError):
            Dewey(())

    def test_negative_rejected(self):
        with pytest.raises(DeweyError):
            Dewey((0, -1))

    def test_non_int_rejected(self):
        with pytest.raises(DeweyError):
            Dewey((0, "1"))

    def test_immutable(self):
        label = Dewey((0, 1))
        with pytest.raises(AttributeError):
            label.components = (0,)

    def test_child(self):
        assert Dewey((0,)).child(3) == Dewey((0, 3))

    def test_from_trusted_equals_validated(self):
        trusted = Dewey.from_trusted((0, 1, 2))
        assert trusted == Dewey((0, 1, 2))
        assert hash(trusted) == hash(Dewey((0, 1, 2)))
        assert trusted.components == (0, 1, 2)

    def test_from_trusted_is_immutable(self):
        trusted = Dewey.from_trusted((0, 4))
        with pytest.raises(AttributeError):
            trusted.components = (0,)

    def test_from_trusted_interoperates(self):
        trusted = Dewey.from_trusted((0, 1, 2))
        assert Dewey((0, 1)).is_ancestor_of(trusted)
        assert trusted.lca(Dewey((0, 1, 5))) == Dewey((0, 1))
        assert trusted.partition_id() == Dewey((0, 1))

    def test_public_constructors_still_validate(self):
        """from_trusted must not loosen the public construction routes."""
        with pytest.raises(DeweyError):
            Dewey(())
        with pytest.raises(DeweyError):
            Dewey((0, -3))
        with pytest.raises(DeweyError):
            Dewey((0, 1.5))
        with pytest.raises(DeweyError):
            Dewey.parse("")
        with pytest.raises(DeweyError):
            Dewey.parse("0..1")
        with pytest.raises(DeweyError):
            Dewey((0,)).child(-1)

    def test_child_negative_rejected(self):
        with pytest.raises(DeweyError):
            Dewey((0,)).child(-1)

    def test_parent(self):
        assert Dewey((0, 1, 2)).parent == Dewey((0, 1))

    def test_root_has_no_parent(self):
        assert Dewey.root().parent is None

    def test_str_roundtrip(self):
        assert str(Dewey.parse("0.4.17")) == "0.4.17"


class TestPredicates:
    def test_ancestor(self):
        assert Dewey((0,)).is_ancestor_of(Dewey((0, 1)))

    def test_not_own_ancestor(self):
        assert not Dewey((0, 1)).is_ancestor_of(Dewey((0, 1)))

    def test_ancestor_or_self(self):
        assert Dewey((0, 1)).is_ancestor_or_self_of(Dewey((0, 1)))
        assert Dewey((0,)).is_ancestor_or_self_of(Dewey((0, 1)))

    def test_sibling_not_ancestor(self):
        assert not Dewey((0, 1)).is_ancestor_of(Dewey((0, 2)))

    def test_descendant(self):
        assert Dewey((0, 1, 2)).is_descendant_of(Dewey((0, 1)))

    def test_depth(self):
        assert Dewey.root().depth == 1
        assert Dewey((0, 1, 2)).depth == 3

    def test_document_order(self):
        # Ancestors precede descendants; siblings by ordinal.
        assert Dewey((0,)) < Dewey((0, 0))
        assert Dewey((0, 0, 5)) < Dewey((0, 1))

    def test_partition_id(self):
        assert Dewey((0, 3, 1)).partition_id() == Dewey((0, 3))
        assert Dewey((0, 3)).partition_id() == Dewey((0, 3))
        assert Dewey.root().partition_id() is None


class TestLCA:
    def test_basic(self):
        assert Dewey((0, 1, 2)).lca(Dewey((0, 1, 5))) == Dewey((0, 1))

    def test_ancestor_is_lca(self):
        assert Dewey((0, 1)).lca(Dewey((0, 1, 5))) == Dewey((0, 1))

    def test_self_lca(self):
        label = Dewey((0, 2))
        assert label.lca(label) == label

    def test_disjoint_raises(self):
        with pytest.raises(DeweyError):
            Dewey((0,)).lca(Dewey((1,)))

    def test_lca_of_all(self):
        labels = [Dewey((0, 1, 2)), Dewey((0, 1, 5)), Dewey((0, 2))]
        assert lca_of_all(labels) == Dewey((0,))

    def test_lca_of_all_empty_raises(self):
        with pytest.raises(DeweyError):
            lca_of_all([])


class TestDescendantRange:
    def test_range_key(self):
        assert descendant_range_key(Dewey((0, 1))) == (0, 2)

    def test_range_captures_descendants(self):
        prefix = Dewey((0, 1))
        inside = [(0, 1), (0, 1, 0), (0, 1, 9, 9)]
        outside = [(0, 0, 9), (0, 2), (1,)]
        hi = descendant_range_key(prefix)
        for label in inside:
            assert prefix.components <= label < hi
        for label in outside:
            assert not (prefix.components <= label < hi)


class TestHypothesis:
    @given(components, components)
    def test_order_matches_tuple_order(self, a, b):
        assert (Dewey(a) < Dewey(b)) == (tuple(a) < tuple(b))

    @given(components, components)
    def test_lca_is_common_ancestor(self, a, b):
        a = [0] + a
        b = [0] + b
        lca = Dewey(a).lca(Dewey(b))
        assert lca.is_ancestor_or_self_of(Dewey(a))
        assert lca.is_ancestor_or_self_of(Dewey(b))

    @given(components, components)
    def test_lca_commutative(self, a, b):
        a = [0] + a
        b = [0] + b
        assert Dewey(a).lca(Dewey(b)) == Dewey(b).lca(Dewey(a))

    @given(components)
    def test_parse_str_roundtrip(self, parts):
        label = Dewey(parts)
        assert Dewey.parse(str(label)) == label

    @given(components)
    def test_hash_consistency(self, parts):
        assert hash(Dewey(parts)) == hash(Dewey(tuple(parts)))

    @given(components, components)
    def test_ancestor_iff_prefix(self, a, b):
        is_prefix = len(a) < len(b) and tuple(b[: len(a)]) == tuple(a)
        assert Dewey(a).is_ancestor_of(Dewey(b)) == is_prefix
