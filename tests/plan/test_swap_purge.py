"""Planner state across snapshot hot-swaps (the plan-cache leak fix).

The plan cache keys on the index version, so entries from a swapped-out
generation could never *hit* again — but they used to survive the swap
and squat in the LRU, and the learned per-route drift corrections kept
applying the **old** corpus's cost-model bias to the new one,
mis-routing queries until the medians washed out.  ``on_index_swap``
now drops both; these tests pin that, and that routing accuracy
recovers to what a from-scratch planner would decide.
"""

from __future__ import annotations

import pytest

from repro import XRefine, build_document_index
from repro.datasets import generate_dblp
from repro.verify.oracle import response_fingerprint
from repro.workload import WorkloadGenerator


@pytest.fixture()
def corpus_pair():
    index_a = build_document_index(generate_dblp(num_authors=30, seed=7))
    index_b = build_document_index(generate_dblp(num_authors=45, seed=8))
    return index_a, index_b


def queries_for(index, seed, count=6):
    generator = WorkloadGenerator(index, seed=seed)
    pool = [generator.refinable_query() for _ in range(count - 2)]
    pool += [generator.clean_query() for _ in range(2)]
    return [list(q.query) for q in pool]


class TestPlanCachePurge:
    def test_swap_drops_the_old_generations_entries(self, corpus_pair):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a, cache_size=0)
        for query in queries_for(index_a, seed=11):
            engine.search(query, k=2, algorithm="auto")
        planner = engine.planner
        occupied = len(planner.cache)
        assert occupied >= 1

        engine.swap_index(index_b)
        # Every entry was keyed on the old version: all purged, none
        # left squatting in the LRU.
        assert len(planner.cache) == 0
        assert planner.index is index_b

        for query in queries_for(index_b, seed=12):
            engine.search(query, k=2, algorithm="auto")
        for key in planner.cache._entries:
            assert key[-1] == index_b.version

    def test_purge_stale_reports_the_dropped_count(self, corpus_pair):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a, cache_size=0)
        for query in queries_for(index_a, seed=13):
            engine.search(query, k=2, algorithm="auto")
        planner = engine.planner
        occupied = len(planner.cache)
        assert planner.cache.purge_stale(index_a.version) == 0  # no-op
        assert planner.cache.purge_stale(index_a.version + 1) == occupied
        assert len(planner.cache) == 0


class TestCorrectionReset:
    def test_poisoned_corrections_are_dropped_on_swap(self, corpus_pair):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a, cache_size=0)
        planner = engine.planner
        # Simulate a corpus where every SLE run blew 10x past its
        # estimate: the clamped correction pins to the maximum.
        planner._route_ratios["sle"].extend(
            [10.0] * planner.CORRECTION_MIN_SAMPLES
        )
        assert (
            planner._correction_factor("sle")
            == planner.CORRECTION_CLAMP[1]
        )

        engine.swap_index(index_b)
        # The old corpus's bias must not route the new one.
        assert planner._correction_factor("sle") is None
        assert all(not r for r in planner._route_ratios.values())
        assert planner.cost_ratios == []

    def test_routing_recovers_to_a_fresh_planners_decisions(
        self, corpus_pair
    ):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a, cache_size=0)
        planner = engine.planner
        # Poison every route's drift with nonsense from "corpus A".
        for samples in planner._route_ratios.values():
            samples.extend([10.0, 0.1] * 8)
        engine.swap_index(index_b)

        fresh = XRefine(index_b, cache_size=0)
        # Pin both planners to the same calibration so the comparison
        # is deterministic (an in-memory calibration is measured), and
        # stay under CORRECTION_MIN_SAMPLES so neither planner starts
        # learning new (timing-noise) corrections mid-test.
        planner._calibration = fresh.planner.calibration
        queries = queries_for(index_b, seed=17, count=4)
        assert len(queries) <= planner.CORRECTION_MIN_SAMPLES
        for query in queries:
            swapped_response = engine.search(
                query, k=2, algorithm="auto", explain=True
            )
            fresh_response = fresh.search(
                query, k=2, algorithm="auto", explain=True
            )
            # Identical routing decision and identical answer: the
            # poisoned corrections are gone, not still steering.
            assert (
                swapped_response.plan.chosen
                == fresh_response.plan.chosen
            ), query
            assert response_fingerprint(
                swapped_response
            ) == response_fingerprint(fresh_response)

    def test_routing_counters_survive_the_swap(self, corpus_pair):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a, cache_size=0)
        for query in queries_for(index_a, seed=19, count=4):
            engine.search(query, k=2, algorithm="auto")
        planner = engine.planner
        planned_before = planner.planned
        routed_before = sum(planner.routed.values())
        assert planned_before >= 1

        engine.swap_index(index_b)
        assert planner.planned == planned_before
        assert sum(planner.routed.values()) == routed_before
