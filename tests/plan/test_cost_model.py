"""Unit tests for the planner's calibrated cost model."""

import math
import struct

import pytest

from repro.plan.cost_model import (
    DEFAULT_CALIBRATION,
    Calibration,
    calibration_for,
    decode_calibration,
    dp_units,
    encode_calibration,
    micro_calibrate,
)


class TestCalibration:
    def test_defaults_are_positive(self):
        for name in Calibration.FIELDS:
            assert getattr(DEFAULT_CALIBRATION, name) > 0.0
        assert DEFAULT_CALIBRATION.source == "default"

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_invalid_values_fall_back_to_defaults(self, bad):
        calibration = Calibration("measured", scan_posting=bad)
        assert calibration.scan_posting == DEFAULT_CALIBRATION.scan_posting

    def test_as_dict_round_trip(self):
        calibration = Calibration("measured", probe=3.5e-7)
        data = calibration.as_dict()
        assert data["probe"] == 3.5e-7
        assert data["source"] == "measured"
        assert set(data) == set(Calibration.FIELDS) | {"source"}


class TestSnapshotRecord:
    def test_encode_decode_round_trip(self):
        original = Calibration(
            "measured",
            **{
                name: (index + 1) * 1e-7
                for index, name in enumerate(Calibration.FIELDS)
            },
        )
        decoded = decode_calibration(encode_calibration(original))
        assert decoded is not None
        assert decoded.source == "snapshot"
        for name in Calibration.FIELDS:
            assert math.isclose(
                getattr(decoded, name), getattr(original, name)
            )

    def test_unknown_record_version_decodes_to_none(self):
        raw = bytearray(encode_calibration(DEFAULT_CALIBRATION))
        raw[0] = 99  # a future record version
        assert decode_calibration(bytes(raw)) is None

    def test_wrong_size_decodes_to_none(self):
        raw = encode_calibration(DEFAULT_CALIBRATION)
        assert decode_calibration(raw[:-1]) is None
        assert decode_calibration(raw + b"\x00") is None
        assert decode_calibration(b"") is None

    def test_record_is_fixed_width(self):
        raw = encode_calibration(DEFAULT_CALIBRATION)
        assert len(raw) == struct.calcsize(
            "<B%dd" % len(Calibration.FIELDS)
        )


class TestDpUnits:
    def test_monotone_in_query_length_and_beam(self):
        assert dp_units(4, 2, 2) > dp_units(2, 2, 2)
        assert dp_units(4, 2, 8) > dp_units(4, 2, 2)

    def test_rule_count_is_capped(self):
        assert dp_units(4, 8, 2) == dp_units(4, 800, 2)

    def test_degenerate_inputs_stay_positive(self):
        assert dp_units(0, 0, 0) >= 1.0


class TestMicroCalibrate:
    def test_measures_every_field(self):
        calibration = micro_calibrate(repeats=1)
        assert calibration.source == "measured"
        for name in Calibration.FIELDS:
            assert getattr(calibration, name) > 0.0

    def test_calibration_for_stashes_on_the_index(self):
        class FakeIndex:
            calibration = None

        index = FakeIndex()
        first = calibration_for(index)
        assert index.calibration is first
        # Second call reuses the stash, no re-measurement.
        assert calibration_for(index) is first

    def test_calibration_for_prefers_existing(self):
        class FakeIndex:
            calibration = DEFAULT_CALIBRATION

        assert calibration_for(FakeIndex()) is DEFAULT_CALIBRATION
