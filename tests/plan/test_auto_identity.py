"""``algorithm="auto"`` must be byte-identical to every fixed choice.

The differential oracle sweeps this over random documents; these tests
pin the property on the shared corpora plus the engine-level behaviors
the oracle cannot see (explain plans, batch validation hoisting,
planner bookkeeping).
"""

import pytest

from repro.core.engine import ALGORITHMS, XRefine
from repro.errors import QueryError
from repro.verify.oracle import response_fingerprint
from repro.workload import WorkloadGenerator, replay, simulate_log


@pytest.fixture(scope="module")
def queries(dblp_index):
    generator = WorkloadGenerator(dblp_index, seed=23)
    pool = [generator.refinable_query() for _ in range(6)]
    pool += [generator.clean_query() for _ in range(3)]
    return [list(q.query) for q in pool]


@pytest.fixture(scope="module")
def engine(dblp_index):
    return XRefine(dblp_index, cache_size=0)


class TestAutoIdentity:
    def test_auto_is_the_default_algorithm(self):
        assert ALGORITHMS[0] == "auto"

    def test_auto_equals_partition_and_sle(self, engine, queries):
        for query in queries:
            auto = response_fingerprint(
                engine.search(query, k=2, algorithm="auto")
            )
            for fixed in ("partition", "sle"):
                assert auto == response_fingerprint(
                    engine.search(query, k=2, algorithm=fixed)
                ), (query, fixed)

    def test_auto_equals_partition_sharded(self, engine, queries):
        for query in queries[:3]:
            auto = response_fingerprint(
                engine.search(query, k=2, algorithm="auto", parallelism=3)
            )
            serial = response_fingerprint(
                engine.search(query, k=2, algorithm="partition")
            )
            assert auto == serial

    def test_forced_stack_route_falls_back_identically(
        self, engine, queries
    ):
        planner = engine.planner
        for query in queries[:4]:
            terms = tuple(query)
            rules = engine.mine_rules(terms)
            reference = response_fingerprint(
                engine.search(terms, k=2, algorithm="partition")
            )
            plan = planner.plan(terms, rules, k=2, force="stack")
            response = engine._execute_plan(plan, terms, rules, k=2)
            assert response_fingerprint(response) == reference
            if response.needs_refinement:
                assert plan.fallback == "stack->partition"
                assert plan.executed == "partition"

    def test_explain_attaches_a_plan(self, engine, queries):
        response = engine.search(queries[0], k=2, explain=True)
        plan = response.plan
        assert plan is not None
        assert plan.executed in ("partition", "sle", "stack")
        assert plan.actual_seconds is not None
        assert "plan: algorithm=" in plan.describe()

    def test_explain_on_fixed_algorithm_records_a_forced_plan(
        self, engine, queries
    ):
        response = engine.search(
            queries[0], k=2, algorithm="sle", explain=True
        )
        assert response.plan is not None
        assert response.plan.forced == "sle"
        assert response.plan.executed == "sle"

    def test_planner_stats_exposed_via_cache_stats(self, engine, queries):
        engine.search(queries[0], k=2, algorithm="auto")
        stats = engine.cache_stats()["planner"]
        assert stats is not None
        assert stats["planned"] >= 1
        assert sum(stats["routed"].values()) >= 1
        assert "plan_cache" in stats


class TestSearchManyValidationHoist:
    def test_duplicate_batch_validates_once(self, dblp_index, monkeypatch):
        engine = XRefine(dblp_index, cache_size=0)
        import repro.core.engine as engine_module

        calls = {"k": 0}
        original = engine_module._validate_k

        def counting_validate_k(k):
            calls["k"] += 1
            return original(k)

        monkeypatch.setattr(engine_module, "_validate_k", counting_validate_k)
        responses = engine.search_many(
            ["databse systems"] * 10_000, k=2, algorithm="auto"
        )
        assert len(responses) == 10_000
        # One evaluation, mutation-isolated copies for the duplicates.
        assert all(
            r.refinements[0].keywords == responses[0].refinements[0].keywords
            and r.stats is responses[0].stats
            for r in responses
        )
        assert calls["k"] == 1

    def test_batch_rejects_bad_arguments_up_front(self, dblp_index):
        engine = XRefine(dblp_index, cache_size=0)
        with pytest.raises(QueryError):
            engine.search_many(["xml"], k=0)
        with pytest.raises(QueryError):
            engine.search_many(["xml"], algorithm="bogus")
        with pytest.raises(QueryError):
            engine.search_many(["xml"], algorithm="sle", parallelism=2)
        with pytest.raises(QueryError, match="empty"):
            engine.search_many(["xml", "   "])


class TestQueryLogReplay:
    def test_replay_routes_through_the_planner(self, dblp_index):
        engine = XRefine(dblp_index)
        log = simulate_log(dblp_index, sessions=12, seed=5)
        responses = replay(engine, log, k=2)
        assert len(responses) == len(log)
        stats = engine.planner.stats()
        assert sum(stats["routed"].values()) >= 1

    def test_replay_answers_match_fixed_partition(self, dblp_index):
        engine = XRefine(dblp_index, cache_size=0)
        log = simulate_log(dblp_index, sessions=6, seed=9)
        auto = replay(engine, log, k=1, algorithm="auto")
        fixed = replay(engine, log, k=1, algorithm="partition")
        for a, f in zip(auto, fixed):
            assert response_fingerprint(a) == response_fingerprint(f)
