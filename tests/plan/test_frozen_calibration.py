"""Calibration persistence in frozen snapshots (format version 2+)."""

import pytest

import repro.index.frozen as frozen_module
from repro.core.engine import XRefine
from repro.errors import IndexingError
from repro.index.frozen import FORMAT_VERSION, freeze_index, load_frozen_index
from repro.verify.oracle import response_fingerprint


@pytest.fixture()
def snapshot_path(tmp_path, figure1_index):
    path = tmp_path / "corpus.frz"
    freeze_index(figure1_index, path)
    return path


class TestFormatVersion2:
    def test_snapshot_carries_a_calibration(self, snapshot_path):
        index = load_frozen_index(snapshot_path)
        assert index.frozen_snapshot.format_version == FORMAT_VERSION
        assert index.calibration is not None
        assert index.calibration.source == "snapshot"

    def test_planner_uses_the_snapshot_calibration(self, snapshot_path):
        index = load_frozen_index(snapshot_path)
        engine = XRefine(index)
        engine.search("databse systems", algorithm="auto")
        stats = engine.cache_stats()["planner"]
        assert stats["calibration"]["source"] == "snapshot"

    def test_freezing_stashes_the_calibration_on_the_source(
        self, tmp_path, figure1_index
    ):
        freeze_index(figure1_index, tmp_path / "again.frz")
        assert figure1_index.calibration is not None

    def test_calibration_key_never_collides_with_node_types(
        self, snapshot_path
    ):
        index = load_frozen_index(snapshot_path)
        for node_type in index.statistics.types():
            assert "\x00calibration" not in node_type


class TestVersionSkew:
    def test_version_1_snapshot_loads_without_calibration(
        self, tmp_path, figure1_index, monkeypatch
    ):
        monkeypatch.setattr(frozen_module, "FORMAT_VERSION", 1)
        monkeypatch.setattr(
            frozen_module, "_calibration_pairs", lambda index: []
        )
        path = tmp_path / "v1.frz"
        freeze_index(figure1_index, path)

        index = load_frozen_index(path)
        assert index.frozen_snapshot.format_version == 1
        assert index.calibration is None
        # Queries still work; the planner falls back to defaults.
        engine = XRefine(index)
        auto = engine.search("databse systems", k=2, algorithm="auto")
        fixed = engine.search("databse systems", k=2, algorithm="partition")
        assert response_fingerprint(auto) == response_fingerprint(fixed)

    def test_unknown_calibration_record_version_degrades_to_none(
        self, tmp_path, figure1_index, monkeypatch
    ):
        from repro.index.frozen import CALIBRATION_KEY
        from repro.plan.cost_model import DEFAULT_CALIBRATION, encode_calibration

        raw = bytearray(encode_calibration(DEFAULT_CALIBRATION))
        raw[0] = 200  # a record version this build does not know
        monkeypatch.setattr(
            frozen_module,
            "_calibration_pairs",
            lambda index: [(CALIBRATION_KEY, bytes(raw))],
        )
        path = tmp_path / "skewed.frz"
        freeze_index(figure1_index, path)

        index = load_frozen_index(path)
        assert index.calibration is None

    def test_pre_batch_record_versions_degrade_to_none(
        self, tmp_path, figure1_index, monkeypatch
    ):
        """v1/v2 records predate the batch-score term: recalibrate.

        Their constants were measured against the pre-batch scoring
        loops, so carrying them forward would mis-cost every route.
        Decoding must reject them outright; the planner then lazily
        recalibrates on first use.
        """
        import struct

        from repro.index.frozen import CALIBRATION_KEY
        from repro.plan.cost_model import decode_calibration

        v1 = struct.pack("<B7d", 1, *([1e-6] * 7))
        v2 = struct.pack("<B8d", 2, *([1e-6] * 8))
        assert decode_calibration(v1) is None
        assert decode_calibration(v2) is None

        monkeypatch.setattr(
            frozen_module,
            "_calibration_pairs",
            lambda index: [(CALIBRATION_KEY, v2)],
        )
        path = tmp_path / "prebatch.frz"
        freeze_index(figure1_index, path)

        index = load_frozen_index(path)
        assert index.calibration is None
        engine = XRefine(index)
        engine.search("databse systems", algorithm="auto")
        stats = engine.cache_stats()["planner"]
        assert stats["calibration"]["source"] != "snapshot"

    def test_future_format_version_is_rejected(
        self, tmp_path, figure1_index, monkeypatch
    ):
        monkeypatch.setattr(frozen_module, "FORMAT_VERSION", FORMAT_VERSION + 1)
        path = tmp_path / "future.frz"
        freeze_index(figure1_index, path)
        monkeypatch.undo()
        with pytest.raises(IndexingError, match="format version"):
            load_frozen_index(path)
