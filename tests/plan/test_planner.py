"""Routing, plan-cache, and misroute-tracking tests for the planner.

The regime tests build :class:`QueryFeatures` by hand so each cost
regime is forced deterministically (no dependence on corpus timing):
a tiny shortest list must route to SLE, many sparse partitions with an
expensive SLE step 2 must route to Partition, and a dense query with a
predicted direct hit must route to stack-refine.
"""

import pytest

from repro.core.engine import XRefine
from repro.index import append_partition, build_document_index, remove_partition
from repro.lexicon.rules import RuleSet
from repro.plan.cost_model import DEFAULT_CALIBRATION
from repro.plan.features import QueryFeatures
from repro.plan.planner import PARALLEL_ROUTE, PlanCache, QueryPlanner
from repro.xmltree.build import build_tree


def make_features(
    terms=("alpha", "beta"),
    keyword_space=None,
    total_postings=100,
    query_postings=None,
    anchor="alpha",
    anchor_length=10,
    anchor_partitions=4,
    union_partitions=8,
    rule_count=2,
    avg_list_length=50.0,
    direct_hit=False,
):
    features = QueryFeatures()
    features.terms = tuple(terms)
    features.keyword_space = (
        tuple(keyword_space) if keyword_space is not None else tuple(terms)
    )
    features.list_lengths = {}
    features.total_postings = total_postings
    features.query_postings = (
        total_postings if query_postings is None else query_postings
    )
    features.all_terms_present = True
    features.anchor = anchor
    features.anchor_length = anchor_length
    features.anchor_partitions = anchor_partitions
    features.union_partitions = union_partitions
    features.rule_count = rule_count
    features.avg_list_length = avg_list_length
    features.expected_direct_results = 2.0 if direct_hit else 0.0
    features.direct_hit_predicted = direct_hit
    return features


@pytest.fixture()
def planner():
    class FakeIndex:
        version = 0
        calibration = DEFAULT_CALIBRATION

    return QueryPlanner(FakeIndex())


def chosen_route(planner, features, k=1, parallelism=1):
    estimates = planner.estimate_routes(features, k, parallelism)
    serial = [n for n in ("partition", "sle", "stack") if n in estimates]
    return min(serial, key=lambda name: estimates[name]), estimates


class TestCostRegimes:
    def test_tiny_shortest_list_routes_to_sle(self, planner):
        features = make_features(
            terms=("alpha", "beta", "gamma"),
            keyword_space=("alpha", "beta", "gamma", "delta"),
            total_postings=10_000,
            anchor="delta",
            anchor_length=5,
            anchor_partitions=3,
            union_partitions=500,
            avg_list_length=50.0,
        )
        route, estimates = chosen_route(planner, features)
        assert route == "sle"
        assert estimates["sle"] < estimates["partition"]

    def test_many_sparse_partitions_route_to_partition(self, planner):
        # No usefully short list, and SLE's back-loaded whole-list
        # SLCA (step 2) is expensive: Partition's single merged scan
        # with the per-partition skip bound wins.
        features = make_features(
            terms=("alpha", "beta"),
            total_postings=200,
            anchor="alpha",
            anchor_length=90,
            anchor_partitions=8,
            union_partitions=8,
            avg_list_length=5_000.0,
        )
        route, estimates = chosen_route(planner, features)
        assert route == "partition"
        assert estimates["partition"] < estimates["sle"]

    def test_rule_heavy_direct_hit_routes_to_stack(self, planner):
        # Stack-refine's single document-order pass pays a per-posting
        # premium but no per-partition DP, so it wins a predicted
        # direct hit when the rule pool makes each DP invocation dear,
        # the partitions are many, and the original query's lists are a
        # small slice of the rule-expanded keyword space (the SLCA term
        # stack pays covers only the original lists).
        features = make_features(
            terms=("alpha", "beta"),
            keyword_space=("alpha", "beta", "gamma", "delta", "epsilon"),
            total_postings=3_000,
            query_postings=500,
            anchor="alpha",
            anchor_length=2_000,
            anchor_partitions=250,
            union_partitions=300,
            rule_count=8,
            direct_hit=True,
        )
        route, estimates = chosen_route(planner, features)
        assert route == "stack"
        assert estimates["stack"] < estimates["partition"]
        assert estimates["stack"] < estimates["sle"]

    def test_stack_ineligible_without_predicted_direct_hit(self, planner):
        features = make_features(direct_hit=False)
        estimates = planner.estimate_routes(features, k=1, parallelism=1)
        assert "stack" not in estimates

    def test_huge_scan_prefers_the_sharded_route(self, planner):
        features = make_features(
            terms=("alpha", "beta", "gamma"),
            total_postings=100_000,
            anchor="alpha",
            anchor_length=50_000,
            anchor_partitions=2_000,
            union_partitions=2_000,
        )
        estimates = planner.estimate_routes(features, k=1, parallelism=4)
        assert PARALLEL_ROUTE in estimates
        assert estimates[PARALLEL_ROUTE] < estimates["partition"]

    def test_parallel_route_absent_when_serial(self, planner):
        features = make_features()
        estimates = planner.estimate_routes(features, k=1, parallelism=1)
        assert PARALLEL_ROUTE not in estimates


class TestStackSleMargin:
    """Stack must beat SLE by STACK_VS_SLE_MARGIN to win the route.

    The stack model has the worst misestimate tail of the three routes
    (~4-5x under actual on mid-sized-list direct hits, which saturates
    the clamped drift correction), so a narrow predicted win over SLE
    is treated as model error and the route goes to SLE instead.
    """

    def test_narrow_stack_win_reroutes_to_sle(self, planner):
        chosen, estimated = planner._choose_serial(
            {"partition": 1.0, "sle": 0.5, "stack": 0.4}
        )
        assert chosen == "sle"
        assert estimated == 0.5

    def test_decisive_stack_win_keeps_stack(self, planner):
        chosen, estimated = planner._choose_serial(
            {"partition": 1.0, "sle": 0.5, "stack": 0.3}
        )
        assert chosen == "stack"
        assert estimated == 0.3

    def test_guard_inert_when_sle_ineligible(self, planner):
        # Without SLE in the mix only the partition specialist margin
        # applies: a near-tie stack prediction still goes to partition.
        chosen, _ = planner._choose_serial({"partition": 1.0, "stack": 0.9})
        assert chosen == "partition"


class TestPlanRouting:
    def test_plan_routes_to_the_cheapest_estimate(self, planner, monkeypatch):
        features = make_features(
            terms=("alpha", "beta", "gamma"),
            keyword_space=("alpha", "beta", "gamma", "delta"),
            total_postings=10_000,
            anchor="delta",
            anchor_length=5,
            anchor_partitions=3,
            union_partitions=500,
        )
        monkeypatch.setattr(
            "repro.plan.planner.extract_features",
            lambda *args, **kwargs: features,
        )
        plan = planner.plan(("alpha", "beta", "gamma"), RuleSet(), k=1)
        assert plan.chosen == "sle"
        assert plan.estimated_seconds == plan.estimates["sle"]
        assert not plan.cached

    def test_second_plan_is_a_cache_hit(self, planner, monkeypatch):
        monkeypatch.setattr(
            "repro.plan.planner.extract_features",
            lambda *args, **kwargs: make_features(),
        )
        rules = RuleSet()
        first = planner.plan(("alpha", "beta"), rules, k=1)
        second = planner.plan(("alpha", "beta"), rules, k=1)
        assert not first.cached
        assert second.cached
        assert second.chosen == first.chosen
        assert planner.cache.hits == 1

    def test_forced_plan_bypasses_the_cache(self, planner, monkeypatch):
        monkeypatch.setattr(
            "repro.plan.planner.extract_features",
            lambda *args, **kwargs: make_features(),
        )
        rules = RuleSet()
        planner.plan(("alpha", "beta"), rules, k=1)
        forced = planner.plan(("alpha", "beta"), rules, k=1, force="stack")
        assert forced.forced == "stack"
        assert forced.chosen == "stack"
        assert not forced.cached

    def test_bound_recorded_and_seeded_on_the_next_plan(
        self, planner, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.plan.planner.extract_features",
            lambda *args, **kwargs: make_features(),
        )
        rules = RuleSet()
        plan = planner.plan(("alpha", "beta"), rules, k=1)
        assert plan.bound_seed is None

        class FakeRQ:
            dissimilarity = 0.75

        class FakeCandidate:
            rq = FakeRQ()

        class FakeStats:
            elapsed_seconds = 1e-3

        class FakeResponse:
            needs_refinement = True
            candidates = [FakeCandidate(), FakeCandidate()]  # capacity 2
            stats = FakeStats()

        plan.executed = plan.chosen
        planner.record(plan, FakeResponse())
        seeded = planner.plan(("alpha", "beta"), rules, k=1)
        assert seeded.cached
        assert seeded.bound_seed == 0.75

    def test_learned_drift_rescores_the_cached_route(
        self, planner, monkeypatch
    ):
        # Default features route to SLE on raw estimates (~0.7x the
        # Partition estimate).  Executions consistently running 2x the
        # raw estimate teach the planner SLE's drift on this corpus;
        # once CORRECTION_MIN_SAMPLES are in, record() re-scores the
        # cached entry and the same identity routes to Partition —
        # without any new feature extraction.
        monkeypatch.setattr(
            "repro.plan.planner.extract_features",
            lambda *args, **kwargs: make_features(),
        )
        rules = RuleSet()
        first = planner.plan(("alpha", "beta"), rules, k=1)
        assert first.chosen == "sle"

        class FakeResponse:
            needs_refinement = False
            candidates = []

        for _ in range(planner.CORRECTION_MIN_SAMPLES):
            plan = planner.plan(("alpha", "beta"), rules, k=1)

            class FakeStats:
                elapsed_seconds = plan.estimates["sle"] * 2.0

            response = FakeResponse()
            response.stats = FakeStats()
            plan.executed = "sle"
            planner.record(plan, response)

        rerouted = planner.plan(("alpha", "beta"), rules, k=1)
        assert rerouted.cached
        assert rerouted.chosen == "partition"
        assert planner.stats()["corrections"]["sle"] == pytest.approx(
            2.0, abs=0.01
        )
        assert planner.stats()["corrections"]["partition"] is None

    def test_misroute_ratio_is_logged(self, planner, monkeypatch):
        monkeypatch.setattr(
            "repro.plan.planner.extract_features",
            lambda *args, **kwargs: make_features(),
        )
        plan = planner.plan(("alpha", "beta"), RuleSet(), k=1)

        class FakeStats:
            elapsed_seconds = plan.estimated_seconds * 2.0

        class FakeResponse:
            needs_refinement = False
            candidates = []
            stats = FakeStats()

        plan.executed = plan.chosen
        planner.record(plan, FakeResponse())
        assert planner.cost_ratios
        executed, ratio = planner.cost_ratios[-1]
        assert executed == plan.chosen
        assert ratio == pytest.approx(2.0, abs=0.001)
        assert planner.stats()["cost_ratios"]


class TestBucketedCorrections:
    """Drift corrections are learned per (route, direct-hit) bucket."""

    def test_direct_hit_drift_lands_in_its_own_bucket(
        self, planner, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.plan.planner.extract_features",
            lambda *args, **kwargs: make_features(direct_hit=True),
        )
        plan = planner.plan(("alpha", "beta"), RuleSet(), k=1)

        class FakeStats:
            elapsed_seconds = plan.estimates[plan.chosen] * 2.0

        class FakeResponse:
            needs_refinement = False
            candidates = []
            stats = FakeStats()

        plan.executed = plan.chosen
        planner.record(plan, FakeResponse())
        assert planner._route_ratios[plan.chosen + ":direct"]
        assert not planner._route_ratios[plan.chosen]

    def test_choose_serial_consults_the_right_bucket(self, planner):
        # Teach the planner that SLE drifts 3x — but only on
        # direct-hit queries.
        for _ in range(planner.CORRECTION_MIN_SAMPLES):
            planner._route_ratios["sle:direct"].append(3.0)
        estimates = {"partition": 1.0, "sle": 0.6}
        assert planner._choose_serial(dict(estimates))[0] == "sle"
        assert (
            planner._choose_serial(dict(estimates), direct_hit=True)[0]
            == "partition"
        )

    def test_stats_reports_both_buckets(self, planner):
        corrections = planner.stats()["corrections"]
        assert "sle" in corrections
        assert "sle:direct" in corrections

    def test_stack_estimate_scales_with_push_pop_cost(self):
        from repro.plan.cost_model import _FIELDS, Calibration

        values = {
            name: getattr(DEFAULT_CALIBRATION, name) for name in _FIELDS
        }
        cheap = Calibration("test", **values)
        values["stack_push_pop"] = values["stack_push_pop"] * 10
        pricey = Calibration("test", **values)
        features = make_features(direct_hit=True, total_postings=10_000)

        def stack_estimate(calibration):
            class FakeIndex:
                version = 0

            FakeIndex.calibration = calibration
            estimates = QueryPlanner(FakeIndex()).estimate_routes(
                features, 1, 1
            )
            assert "stack" in estimates
            return estimates["stack"]

        assert stack_estimate(pricey) > stack_estimate(cheap)


class TestPlanCacheInvalidation:
    @pytest.fixture()
    def engine(self):
        tree = build_tree(
            (
                "bib",
                None,
                [
                    (
                        "paper",
                        None,
                        [("title", "xml database systems"), ("year", "2003")],
                    ),
                    (
                        "paper",
                        None,
                        [("title", "database query refinement"), ("year", "2004")],
                    ),
                ],
            )
        )
        return XRefine(build_document_index(tree))

    def test_append_partition_invalidates_cached_plans(self, engine):
        engine.search("databse xml", algorithm="auto")
        terms = ("databse", "xml")
        rules = engine.mine_rules(terms)
        assert engine.planner.plan(terms, rules, k=1).cached

        append_partition(
            engine.index,
            ("paper", None, [("title", "xml stream systems")]),
        )
        # The version is part of the key: the old entry is unreachable.
        assert not engine.planner.plan(terms, rules, k=1).cached

    def test_remove_partition_invalidates_cached_plans(self, engine):
        engine.search("databse xml", algorithm="auto")
        terms = ("databse", "xml")
        rules = engine.mine_rules(terms)
        assert engine.planner.plan(terms, rules, k=1).cached

        remove_partition(
            engine.index, engine.index.tree.partitions()[0].dewey
        )
        assert not engine.planner.plan(terms, rules, k=1).cached

    def test_partition_count_memo_tracks_the_version(self, engine):
        before = engine.planner.partition_count("database")
        append_partition(
            engine.index,
            ("paper", None, [("title", "database engines")]),
        )
        after = engine.planner.partition_count("database")
        assert after == before + 1


class TestPlanCacheLRU:
    def test_capacity_is_enforced(self):
        cache = PlanCache(capacity=2)
        cache.put("a", {"chosen": "partition"})
        cache.put("b", {"chosen": "sle"})
        cache.put("c", {"chosen": "partition"})
        assert len(cache) == 2
        assert cache.peek("a") is None

    def test_get_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put("a", {})
        cache.put("b", {})
        cache.get("a")
        cache.put("c", {})
        assert cache.peek("a") is not None
        assert cache.peek("b") is None

    def test_peek_does_not_touch_accounting(self):
        cache = PlanCache()
        cache.put("a", {})
        cache.peek("a")
        cache.peek("missing")
        assert cache.hits == 0
        assert cache.misses == 0
