"""Zero-downtime snapshot hot-swap: drain, flip, release.

The contract under test, end to end and at the lifecycle layer:

* a reload under concurrent client load drops **zero** requests —
  every response is a well-formed answer from exactly one generation;
* a failed reload (missing or corrupt snapshot) is a typed error and
  the old generation keeps serving, untouched;
* the swapped-out generation's mmap is released when its last reader
  exits — not at flip time, and not before.
"""

from __future__ import annotations

import multiprocessing
import threading

import pytest

from repro import XRefine
from repro.serve import (
    BackgroundServer,
    ServeClientError,
    SnapshotManager,
)
from repro.serve.wire import encode_response

QUERY = "databse systems"


def wire_answer(payload):
    return {
        key: value
        for key, value in payload.items()
        if key not in ("stats", "generation", "plan", "plan_text")
    }


class TestReloadUnderLoad:
    def test_swap_cycle_drops_nothing(self, serve_snapshots):
        """Clients hammer /search while the daemon swaps A→B→A→B."""
        snap_a, snap_b = serve_snapshots
        # Ground truth per corpus, computed with library engines.
        expected = {}
        for path in (snap_a, snap_b):
            engine = XRefine.from_frozen(path)
            expected[path] = wire_answer(
                encode_response(engine.search(QUERY, k=2))
            )
        assert expected[snap_a] != expected[snap_b]  # swap is observable

        failures = []
        answers = []
        stop = threading.Event()

        with BackgroundServer(snap_a) as daemon:

            def hammer():
                with daemon.client() as client:
                    while not stop.is_set():
                        try:
                            answers.append(client.search(QUERY, k=2))
                        except Exception as exc:  # noqa: BLE001
                            failures.append(exc)
                            return

            workers = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for worker in workers:
                worker.start()
            try:
                with daemon.client() as admin:
                    # Guarantee at least one pre-swap answer on record.
                    answers.append(admin.search(QUERY, k=2))
                    generations = [0]
                    for target in (snap_b, snap_a, snap_b, snap_a):
                        flip = admin.reload(target)
                        assert flip["ok"] is True
                        generations.append(flip["generation"])
            finally:
                stop.set()
                for worker in workers:
                    worker.join(30.0)

            assert failures == []
            assert generations == [0, 1, 2, 3, 4]
            assert daemon.server.manager.swaps == 4
            assert len(answers) >= 4
            seen_generations = set()
            for answer in answers:
                generation = answer["generation"]
                seen_generations.add(generation)
                source = snap_a if generation % 2 == 0 else snap_b
                # Every answer is exactly one generation's answer —
                # never a stale-cache mix across the swap.
                assert wire_answer(answer) == expected[source], generation
            assert 0 in seen_generations  # load spanned the first flip

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="the shard pool needs the fork start method",
    )
    def test_reload_hands_off_the_shard_pool(self, serve_snapshots):
        """A parallel daemon swaps its worker pool with the snapshot."""
        snap_a, snap_b = serve_snapshots
        with BackgroundServer(snap_a, parallelism=2) as daemon:
            with daemon.client() as client:
                # Pinned to "partition" so the sharded path actually
                # runs (with "auto" the planner may stay serial).
                before = client.search(QUERY, k=2, algorithm="partition")
                client.reload(snap_b)
                after = client.search(QUERY, k=2, algorithm="partition")
            assert after["generation"] == 1
            assert wire_answer(after) != wire_answer(before)
            serial = XRefine.from_frozen(snap_b)
            expected = wire_answer(
                encode_response(
                    serial.search(QUERY, k=2, algorithm="partition")
                )
            )
            # The rebuilt pool serves the *new* corpus, byte-identical
            # to a serial engine over the same snapshot.
            assert wire_answer(after) == expected
        # The session-wide no-leak fixture backstops the segment swap.

    def test_swap_purges_cached_answers(self, serve_snapshots):
        """A query cached on generation N must re-evaluate on N+1."""
        snap_a, snap_b = serve_snapshots
        with BackgroundServer(snap_a) as daemon:
            with daemon.client() as client:
                before = client.search(QUERY, k=2)
                again = client.search(QUERY, k=2)  # served warm
                assert wire_answer(again) == wire_answer(before)
                client.reload(snap_b)
                after = client.search(QUERY, k=2)
                assert after["generation"] == 1
                assert wire_answer(after) != wire_answer(before)

    def test_reload_prewarms_recently_served_queries(
        self, serve_snapshots
    ):
        """The slow half pre-mines the hot set against the new index."""
        snap_a, snap_b = serve_snapshots
        with BackgroundServer(snap_a) as daemon:
            with daemon.client() as client:
                client.search(QUERY, k=2)
                flip = client.reload(snap_b)
                # The served signature was warmed before the flip, so
                # its first post-swap evaluation skips the cold mining
                # cost; a cold daemon (nothing served yet) warms none.
                assert flip["prewarmed"] >= 1
        with BackgroundServer(snap_a) as daemon:
            with daemon.client() as client:
                assert client.reload(snap_b)["prewarmed"] == 0


class TestFailedReload:
    def test_missing_snapshot_keeps_old_live(self, daemon, client):
        healthy = client.search(QUERY, k=2)
        with pytest.raises(ServeClientError) as err:
            client.reload("/nonexistent/snapshot.frz")
        assert err.value.status == 500
        assert err.value.error_type == "IndexingError"
        assert daemon.server.manager.generation == 0
        still = client.search(QUERY, k=2)
        assert wire_answer(still) == wire_answer(healthy)

    def test_corrupt_snapshot_keeps_old_live(
        self, daemon, client, tmp_path
    ):
        from repro.index.frozen import MAGIC

        corrupt = tmp_path / "corrupt.frz"
        corrupt.write_bytes(MAGIC + b"\x00" * 16)  # truncated body
        healthy = client.search(QUERY, k=2)
        with pytest.raises(ServeClientError) as err:
            client.reload(str(corrupt))
        assert err.value.status == 500
        assert err.value.error_type == "IndexingError"
        assert daemon.server.manager.generation == 0
        still = client.search(QUERY, k=2)
        assert wire_answer(still) == wire_answer(healthy)


class TestSnapshotLifecycle:
    def test_old_mmap_released_after_last_reader(self, serve_snapshots):
        snap_a, snap_b = serve_snapshots
        manager = SnapshotManager(snap_a)
        try:
            old_snapshot = manager.engine.index.frozen_snapshot
            reader = manager.current()  # an in-flight request
            assert reader.generation == 0

            new_index = manager.load(snap_b)
            manager.flip(new_index, snap_b)
            assert manager.generation == 1
            # The reader admitted before the flip still pins the old
            # generation's mmap open.
            assert not reader.disposed
            assert not old_snapshot.closed

            reader.release()
            assert reader.disposed
            assert old_snapshot.closed
        finally:
            manager.close()

    def test_handles_acquired_after_flip_see_the_new_generation(
        self, serve_snapshots
    ):
        snap_a, snap_b = serve_snapshots
        manager = SnapshotManager(snap_a)
        try:
            new_index = manager.load(snap_b)
            manager.flip(new_index, snap_b)
            handle = manager.current()
            assert handle.generation == 1
            assert handle.index is manager.engine.index
            handle.release()
        finally:
            manager.close()

    def test_flip_restamps_the_index_version(self, serve_snapshots):
        snap_a, snap_b = serve_snapshots
        manager = SnapshotManager(snap_a)
        try:
            for expected_version, target in ((1, snap_b), (2, snap_a)):
                new_index = manager.load(target)
                assert getattr(new_index, "version", 0) == 0  # fresh
                flip = manager.flip(new_index, target)
                assert flip["index_version"] == expected_version
                assert manager.engine.index.version == expected_version
        finally:
            manager.close()

    def test_close_releases_the_current_generation(self, serve_snapshots):
        manager = SnapshotManager(serve_snapshots[0])
        snapshot = manager.engine.index.frozen_snapshot
        manager.close()
        assert snapshot.closed

    def test_acquire_after_dispose_is_refused(self, serve_snapshots):
        manager = SnapshotManager(serve_snapshots[0])
        handle = manager.current()
        manager.close()
        handle.release()
        assert handle.disposed
        with pytest.raises(RuntimeError):
            handle.acquire()
