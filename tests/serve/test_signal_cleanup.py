"""SIGTERM must not leave shared-memory segments in /dev/shm.

The regression: a serving process holding a published posting blob
(``parallelism>1``) dies on SIGTERM without running finalizers, so its
``xrefshard_*`` segment survived in ``/dev/shm`` until a reboot.  Two
layers now prevent that, each tested in a real subprocess:

* the daemon's graceful-shutdown path (asyncio signal handler → drain
  → engine close) unlinks the segment and exits 0;
* :func:`repro.shard.shm.install_signal_cleanup` backstops non-async
  processes — unlink first, then die with the conventional
  128+signum status.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.shard.shm import live_segments

fork_available = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the shard pool needs the fork start method",
)

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)


def subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    return env


def wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@fork_available
class TestServingDaemon:
    def test_sigterm_unlinks_segments_and_exits_cleanly(
        self, serve_snapshots
    ):
        before = set(live_segments())
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                serve_snapshots[0], "--port", "0",
                "--parallelism", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=subprocess_env(),
        )
        try:
            ready = process.stdout.readline()
            assert "serving" in ready and "http://" in ready
            # The daemon prewarms its shard pool on startup, so the
            # published segment is already live.
            assert wait_for(lambda: set(live_segments()) - before), (
                "daemon never published a shared-memory segment"
            )
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
            stderr = process.stderr.read()
            process.stdout.close()
            process.stderr.close()
        assert process.returncode == 0, stderr
        leaked = set(live_segments()) - before
        assert not leaked, f"SIGTERM leaked segments: {leaked}"


SIGNAL_BACKSTOP_SCRIPT = """\
import os, signal, sys
from repro.datasets import generate_dblp
from repro.index.builder import build_document_index
from repro.shard.shm import SharedPostingBlob, install_signal_cleanup

index = build_document_index(generate_dblp(num_authors=10, seed=3))
blob = SharedPostingBlob.publish(index.inverted, 0)
install_signal_cleanup()
print(blob.name, flush=True)
signal.pause()
"""


class TestSignalBackstop:
    def test_handler_unlinks_then_dies_by_signal(self):
        """The non-async backstop: unlink first, then 128+SIGTERM."""
        process = subprocess.Popen(
            [sys.executable, "-c", SIGNAL_BACKSTOP_SCRIPT],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=subprocess_env(),
        )
        try:
            name = process.stdout.readline().strip()
            assert name, process.stderr.read()
            assert name in live_segments()
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
            process.stdout.close()
            process.stderr.close()
        # Cleaned up, yet the exit status still reports the signal.
        assert name not in live_segments()
        assert process.returncode == -signal.SIGTERM

    def test_sigint_is_covered_too(self):
        process = subprocess.Popen(
            [sys.executable, "-c", SIGNAL_BACKSTOP_SCRIPT],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=subprocess_env(),
        )
        try:
            name = process.stdout.readline().strip()
            assert name, process.stderr.read()
            assert name in live_segments()
            process.send_signal(signal.SIGINT)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
            process.stdout.close()
            process.stderr.close()
        assert name not in live_segments()
        # SIGINT lands on Python's default KeyboardInterrupt handler
        # (chained by install_signal_cleanup), which exits non-zero.
        assert process.returncode != 0
