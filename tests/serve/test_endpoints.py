"""Endpoint behavior of the serving daemon: happy paths and failures.

One in-process daemon per module (``conftest.daemon``); answers are
cross-checked against a library engine over the same snapshot, and
every client-error path must come back as a typed 4xx JSON body — not
a connection reset, not a 500.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro import XRefine
from repro.serve import BackgroundServer, ServeClientError
from repro.serve.wire import encode_response

QUERY = "databse systems"


def wire_answer(payload):
    """The answer-bearing part of a wire response (drop timings)."""
    return {
        key: value
        for key, value in payload.items()
        if key not in ("stats", "generation", "plan", "plan_text")
    }


class TestHappyPaths:
    def test_healthz(self, client):
        body = client.healthz()
        assert body["ok"] is True
        assert body["generation"] == 0
        assert body["uptime_seconds"] >= 0

    def test_search_matches_library_engine(
        self, client, serve_snapshots
    ):
        served = client.search(QUERY, k=2)
        engine = XRefine.from_frozen(serve_snapshots[0])
        local = encode_response(engine.search(QUERY, k=2))
        assert wire_answer(served) == wire_answer(local)
        assert served["generation"] == 0
        assert served["stats"]["elapsed_seconds"] >= 0

    def test_search_accepts_term_lists(self, client):
        as_string = client.search(QUERY, k=2)
        as_list = client.search(QUERY.split(), k=2)
        assert wire_answer(as_string) == wire_answer(as_list)

    def test_explain_attaches_the_plan(self, client):
        body = client.explain(QUERY, k=2)
        assert body["plan"] is not None
        assert body["plan"]["executed"] in ("partition", "sle", "stack")
        assert "plan: algorithm=" in body["plan_text"]

    def test_search_many(self, client):
        queries = [QUERY, "xml keyword", QUERY]
        body = client.search_many(queries, k=1)
        answers = body["responses"]
        assert len(answers) == 3
        assert wire_answer(answers[0]) == wire_answer(answers[2])
        single = client.search(queries[1], k=1)
        assert wire_answer(answers[1]) == wire_answer(single)

    def test_stats_shape(self, client):
        client.search(QUERY, k=2)
        stats = client.stats()
        assert stats["generation"] == 0
        assert stats["swaps"] == 0
        assert stats["engine"]["index_version"] == 0
        assert stats["engine"]["results"]["maxsize"] > 0
        assert stats["admission"]["admitted"] >= 1
        assert stats["singleflight"]["leaders"] >= 1
        assert stats["server"]["requests"] >= 2

    def test_keep_alive_connection_reuse(self, daemon):
        with daemon.client() as client:
            sock_ids = set()
            for _ in range(3):
                client.healthz()
                sock_ids.add(id(client._connection))
        assert len(sock_ids) == 1  # one persistent connection


class TestClientErrors:
    def test_invalid_k(self, client):
        for bad_k in (0, -3, 1.5, True):
            with pytest.raises(ServeClientError) as err:
                client.search(QUERY, k=bad_k)
            assert err.value.status == 400
            assert err.value.error_type == "QueryError"

    def test_empty_query(self, client):
        for bad_query in ("", "   !!!"):
            with pytest.raises(ServeClientError) as err:
                client.search(bad_query)
            assert err.value.status == 400
            assert err.value.error_type == "QueryError"
            assert "empty" in err.value.error

    def test_non_string_query(self, client):
        with pytest.raises(ServeClientError) as err:
            client._request("POST", "/search", {"query": 17})
        assert err.value.status == 400
        assert err.value.error_type == "QueryError"

    def test_unknown_algorithm(self, client):
        with pytest.raises(ServeClientError) as err:
            client.search(QUERY, algorithm="bogus")
        assert err.value.status == 400
        assert "bogus" in err.value.error

    def test_unknown_field_is_rejected(self, client):
        with pytest.raises(ServeClientError) as err:
            client._request(
                "POST", "/search", {"query": QUERY, "topk": 3}
            )
        assert err.value.status == 400
        assert "topk" in err.value.error

    def test_missing_query_field(self, client):
        with pytest.raises(ServeClientError) as err:
            client._request("POST", "/search", {})
        assert err.value.status == 400

    def test_search_many_requires_queries(self, client):
        for body in ({}, {"queries": []}, {"queries": "not a list"}):
            with pytest.raises(ServeClientError) as err:
                client._request("POST", "/search_many", body)
            assert err.value.status == 400

    def test_unknown_route_404(self, client):
        with pytest.raises(ServeClientError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServeClientError) as err:
            client._request("GET", "/search")
        assert err.value.status == 405
        with pytest.raises(ServeClientError) as err:
            client._request("POST", "/healthz", {})
        assert err.value.status == 405

    def test_malformed_json_body_400(self, daemon):
        connection = http.client.HTTPConnection(
            daemon.host, daemon.port, timeout=30.0
        )
        try:
            connection.request(
                "POST", "/search", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert body["error_type"] == "HttpError"
        assert "JSON" in body["error"]

    def test_failed_requests_leave_the_daemon_serving(self, client):
        with pytest.raises(ServeClientError):
            client.search("", k=1)
        assert client.search(QUERY, k=1)["needs_refinement"] in (
            True, False,
        )


class TestAdmissionControl:
    def test_overload_rejected_with_429(self, serve_snapshots):
        with BackgroundServer(
            serve_snapshots[0], max_inflight=1
        ) as daemon:
            engine = daemon.server.manager.engine
            gate = threading.Event()
            entered = threading.Event()
            real_search = engine.search

            def slow_search(*args, **kwargs):
                entered.set()
                assert gate.wait(30.0)
                return real_search(*args, **kwargs)

            engine.search = slow_search
            try:
                results = {}

                def blocked():
                    with daemon.client() as c:
                        results["blocked"] = c.search(QUERY, k=1)

                worker = threading.Thread(target=blocked)
                worker.start()
                assert entered.wait(30.0)
                # The budget (1) is consumed by the blocked request:
                # the next one is rejected immediately, with a hint.
                with daemon.client() as c:
                    with pytest.raises(ServeClientError) as err:
                        c.search("xml keyword", k=1)
                assert err.value.status == 429
                assert err.value.error_type == "ServerOverloadedError"
                assert err.value.retry_after > 0
            finally:
                gate.set()
            worker.join(30.0)
            assert not worker.is_alive()
            assert results["blocked"]["query"]
            stats = daemon.server.admission.stats()
            assert stats["rejected"] >= 1
            assert stats["inflight"] == 0


class TestSingleflight:
    def test_identical_inflight_queries_coalesce(self, serve_snapshots):
        with BackgroundServer(serve_snapshots[0]) as daemon:
            engine = daemon.server.manager.engine
            gate = threading.Event()
            entered = threading.Event()
            calls = []
            real_search = engine.search

            def slow_search(query, **kwargs):
                calls.append(query)
                entered.set()
                assert gate.wait(30.0)
                return real_search(query, **kwargs)

            engine.search = slow_search
            try:
                answers = []

                def issue():
                    with daemon.client() as c:
                        answers.append(c.search(QUERY, k=2))

                workers = [
                    threading.Thread(target=issue) for _ in range(5)
                ]
                workers[0].start()
                assert entered.wait(30.0)
                # Leader is parked on the query thread; these four
                # arrive while it is in flight and must coalesce.
                for worker in workers[1:]:
                    worker.start()
                sf = daemon.server.singleflight
                deadline = threading.Event()
                for _ in range(200):
                    if sf.coalesced >= 4:
                        break
                    deadline.wait(0.05)
            finally:
                gate.set()
            for worker in workers:
                worker.join(30.0)
            assert len(answers) == 5
            assert len(calls) == 1  # one evaluation for five requests
            assert daemon.server.singleflight.coalesced >= 4
            first = wire_answer(answers[0])
            assert all(wire_answer(a) == first for a in answers[1:])
