"""Fixtures for the serving-daemon tests: frozen snapshots + a daemon."""

from __future__ import annotations

import pytest

from repro.datasets import generate_dblp
from repro.index.builder import build_document_index
from repro.index.frozen import freeze_index
from repro.serve import BackgroundServer


@pytest.fixture(scope="session")
def serve_snapshots(tmp_path_factory):
    """Two frozen snapshots of *different* corpora (generations A, B)."""
    root = tmp_path_factory.mktemp("serve_snapshots")
    paths = []
    for name, authors, seed in (("gen_a", 40, 7), ("gen_b", 55, 8)):
        index = build_document_index(
            generate_dblp(num_authors=authors, seed=seed)
        )
        path = str(root / f"{name}.frz")
        freeze_index(index, path)
        paths.append(path)
    return tuple(paths)


@pytest.fixture(scope="module")
def daemon(serve_snapshots):
    """One shared in-process daemon serving generation A."""
    with BackgroundServer(serve_snapshots[0]) as server:
        yield server


@pytest.fixture()
def client(daemon):
    with daemon.client() as connection:
        yield connection
