"""Tests for the seeded document and query generators."""

from repro.verify.generate import DocumentGenerator, QueryGenerator
from repro.xmltree.serialize import serialize


def _depth(spec):
    children = spec[2] if len(spec) > 2 else []
    return 1 + max((_depth(c) for c in children), default=0)


def _tags(spec):
    yield spec[0]
    for child in spec[2] if len(spec) > 2 else []:
        yield from _tags(child)


class TestDocumentGenerator:
    def test_same_seed_same_document(self):
        assert DocumentGenerator(7).spec() == DocumentGenerator(7).spec()

    def test_different_seeds_differ(self):
        specs = {repr(DocumentGenerator(seed).spec()) for seed in range(8)}
        assert len(specs) > 1

    def test_specs_are_buildable(self):
        for seed in range(10):
            tree = DocumentGenerator(seed).tree()
            assert len(tree) >= 2

    def test_depth_respects_bound(self):
        # A partition budgeted depth d has height d + 1, plus the root.
        for seed in range(10):
            generator = DocumentGenerator(seed, max_depth=5)
            assert _depth(generator.spec()) <= 5 + 2

    def test_duplicate_tags_occur(self):
        # The generators bias toward repeated tags along ancestor
        # chains — the regime where SLCA algorithms disagree if buggy.
        duplicated = 0
        for seed in range(20):
            tags = list(_tags(DocumentGenerator(seed).spec()))
            if len(tags) != len(set(tags)):
                duplicated += 1
        assert duplicated >= 15

    def test_tree_call_is_deterministic(self):
        first = DocumentGenerator(3).tree()
        second = DocumentGenerator(3).tree()
        assert serialize(first) == serialize(second)


class TestQueryGenerator:
    def test_same_seed_same_queries(self):
        vocabulary = ["xml", "data", "query", "index"]
        first = QueryGenerator(5, vocabulary).queries(10)
        second = QueryGenerator(5, vocabulary).queries(10)
        assert first == second

    def test_queries_nonempty(self):
        vocabulary = ["xml", "data", "query"]
        for query in QueryGenerator(1, vocabulary).queries(20):
            assert query
            assert all(term for term in query)

    def test_absent_terms_injected(self):
        # The generator is biased toward empty/near-empty results: some
        # queries must contain terms outside the document vocabulary.
        vocabulary = ["xml", "data", "query", "index", "tree"]
        queries = QueryGenerator(2, vocabulary).queries(40)
        in_vocab = set(vocabulary)
        assert any(
            any(term not in in_vocab for term in query)
            for query in queries
        )

    def test_typos_injected(self):
        # Some queries must perturb vocabulary words (near-miss terms
        # that exercise the spelling-rule refinement path).
        vocabulary = ["database", "querying", "indexing", "structure"]
        queries = QueryGenerator(3, vocabulary).queries(60)
        exact = set(vocabulary)
        near = [
            term
            for query in queries
            for term in query
            if term not in exact and any(v in term or term in v or
                                         len(term) == len(v)
                                         for v in vocabulary)
        ]
        assert near
