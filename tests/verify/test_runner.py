"""Smoke tests for the verify-diff sweep driver and its CLI entry."""

import io

from repro.cli import main
from repro.verify.oracle import Divergence
from repro.verify.runner import VerifyReport, verify_diff


class TestVerifyDiff:
    def test_small_sweep_is_clean(self):
        report = verify_diff(seeds=3, queries_per_doc=2)
        assert report.ok
        assert report.seeds == 3
        assert report.documents == 3
        assert report.queries == 6
        assert report.checks > 0
        assert "OK" in report.summary()

    def test_sweep_is_deterministic(self):
        first = verify_diff(seeds=2, queries_per_doc=2)
        second = verify_diff(seeds=2, queries_per_doc=2)
        assert first.ok == second.ok
        assert first.queries == second.queries

    def test_report_flags_divergences(self):
        report = VerifyReport()
        assert report.ok
        report.divergences.append(
            Divergence("demo:kind", "detail", ("root", None, []),
                       ("q",), 1, 2)
        )
        assert not report.ok
        assert "DIVERGED" in report.summary()
        assert "demo:kind" in report.summary()


class TestVerifyDiffCli:
    def test_cli_smoke(self):
        out = io.StringIO()
        code = main(["verify-diff", "--seeds", "2", "--queries", "2"],
                    out=out)
        assert code == 0
        assert "verify-diff: OK" in out.getvalue()

    def test_cli_no_shrink_flag(self):
        out = io.StringIO()
        code = main(
            ["verify-diff", "--seeds", "1", "--no-shrink"], out=out
        )
        assert code == 0
