"""Replay every committed shrunken fixture.

Each fixture in ``tests/verify/fixtures/`` is a delta-debugged
(document, query) pair that exposed a real divergence before its fix
landed.  A healthy build replays all of them with zero divergences;
a regression resurfaces as the original divergence kind.
"""

import os

import pytest

from repro.verify.runner import replay_fixture
from repro.verify.shrink import load_fixture

FIXTURES_DIR = os.path.join(os.path.dirname(__file__), "fixtures")

FIXTURE_NAMES = sorted(
    name[:-5]
    for name in os.listdir(FIXTURES_DIR)
    if name.endswith(".json")
)


def test_fixtures_exist():
    # The harness has found (and this PR fixed) real divergences; the
    # reduced witnesses must stay committed.
    assert FIXTURE_NAMES


@pytest.mark.parametrize("name", FIXTURE_NAMES)
def test_fixture_replays_clean(name):
    spec, query, kind = load_fixture(FIXTURES_DIR, name)
    divergences = replay_fixture(spec, query)
    assert divergences == [], (
        f"fixture {name} (originally {kind}) diverges again:\n"
        + "\n".join(d.describe() for d in divergences)
    )


@pytest.mark.parametrize("name", FIXTURE_NAMES)
def test_fixture_has_xml_witness(name):
    assert os.path.exists(os.path.join(FIXTURES_DIR, f"{name}.xml"))
