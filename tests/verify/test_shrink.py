"""Tests for the delta-debugging shrinker."""

from repro.verify.shrink import (
    _normalize,
    fixture_name,
    load_fixture,
    shrink_divergence,
    write_fixture,
)


def _count_nodes(spec):
    return 1 + sum(_count_nodes(c) for c in spec[2])


WIDE_SPEC = (
    "root",
    None,
    [
        ("a", "xml data", [("b", "query", []), ("c", "noise", [])]),
        ("d", "filler words here", [("e", "target", [])]),
        ("f", None, [("g", "unrelated", [])]),
    ],
)


class TestShrinkDivergence:
    def test_reaches_minimal_document(self):
        # Predicate: the word "target" survives somewhere in the spec.
        def predicate(spec, query):
            def has(s):
                return (s[1] and "target" in s[1]) or any(
                    has(c) for c in s[2]
                )
            return has(_normalize(spec))

        spec, query = shrink_divergence(WIDE_SPEC, ("q1", "q2"), predicate)
        # 1-minimal: the root plus one leaf carrying only the word
        # (no operator can move text onto the root), one query term.
        assert _count_nodes(spec) == 2
        assert spec[2][0][1] == "target"
        assert len(query) == 1

    def test_query_terms_dropped(self):
        def predicate(spec, query):
            return "keep" in query

        _, query = shrink_divergence(
            WIDE_SPEC, ("drop1", "keep", "drop2"), predicate
        )
        assert query == ("keep",)

    def test_result_still_fails_predicate(self):
        def predicate(spec, query):
            def nodes(s):
                return 1 + sum(nodes(c) for c in s[2])
            return nodes(_normalize(spec)) >= 3

        spec, query = shrink_divergence(WIDE_SPEC, ("q",), predicate)
        assert predicate(spec, query)
        assert _count_nodes(spec) == 3

    def test_predicate_exception_counts_as_gone(self):
        # A reduction that crashes the checker must not be accepted —
        # the shrinker never trades one bug for a different one.
        def predicate(spec, query):
            if _count_nodes(_normalize(spec)) < 4:
                raise RuntimeError("different bug")
            return True

        spec, _ = shrink_divergence(WIDE_SPEC, ("q",), predicate)
        assert _count_nodes(spec) >= 4

    def test_eval_budget_respected(self):
        calls = []

        def predicate(spec, query):
            calls.append(1)
            return True

        shrink_divergence(WIDE_SPEC, ("q1", "q2"), predicate, max_evals=17)
        assert len(calls) <= 17

    def test_terminates_when_nothing_reproduces(self):
        spec, query = shrink_divergence(
            WIDE_SPEC, ("q1", "q2"), lambda s, q: False
        )
        # No reduction holds, so the (normalized) input comes back.
        assert spec == _normalize(WIDE_SPEC)
        assert query == ("q1", "q2")


class TestFixtureRoundTrip:
    def test_write_then_load(self, tmp_path):
        spec = ("root", "xml", [("a", "data", [])])
        name = write_fixture(
            str(tmp_path), "refine:example", spec, ("xml", "data"),
            detail="demo",
        )
        loaded_spec, loaded_query, kind = load_fixture(str(tmp_path), name)
        assert loaded_spec == _normalize(spec)
        assert loaded_query == ("xml", "data")
        assert kind == "refine:example"
        assert (tmp_path / f"{name}.xml").exists()

    def test_name_is_stable_and_safe(self):
        spec = ("root", None, [])
        first = fixture_name("slca:scan:cold", spec, ("a",))
        second = fixture_name("slca:scan:cold", spec, ("a",))
        assert first == second
        assert "/" not in first and ":" not in first
