"""The oracle must pass on healthy code and catch planted faults."""

import repro.verify.oracle as oracle_module
from repro.verify.invariants import check_invariants
from repro.verify.oracle import DocumentOracle, run_oracle

SPEC = (
    "root",
    None,
    [
        ("item", "xml database", [("a", "query index", [])]),
        ("item", "xml", [("b", "database", [])]),
        ("c", "tree web data", []),
    ],
)


class TestHealthyOracle:
    def test_no_divergences_on_hit_query(self):
        assert run_oracle(SPEC, ("xml", "database")) == []

    def test_no_divergences_on_typo_query(self):
        assert run_oracle(SPEC, ("xml", "databse")) == []

    def test_no_divergences_on_absent_term(self):
        assert run_oracle(SPEC, ("zzzq",)) == []

    def test_invariants_clean(self):
        oracle = DocumentOracle(SPEC)
        assert check_invariants(oracle, ("xml", "database")) == []

    def test_empty_query_is_skipped(self):
        assert run_oracle(SPEC, ("", "  ")) == []


class TestPlantedFaults:
    def test_slca_fault_detected(self, monkeypatch):
        # Plant: the "scan" variant silently drops its last answer.
        real = oracle_module.SLCA_VARIANTS["scan"]
        monkeypatch.setitem(
            oracle_module.SLCA_VARIANTS, "scan",
            lambda lists: real(lists)[:-1],
        )
        oracle = DocumentOracle(SPEC)
        divergences = oracle.check_slca(("xml", "database"))
        kinds = {d.kind for d in divergences}
        assert "slca:scan:cold" in kinds
        # The other variants stay clean: the diff localizes the fault.
        assert not any(k.startswith("slca:stack") for k in kinds)

    def test_refinement_fault_detected(self, monkeypatch):
        # Plant: Algorithm 2 drops its lowest-ranked refined query.
        real = oracle_module.partition_refine

        def faulty(index, terms, **kwargs):
            response = real(index, terms, **kwargs)
            if response.refinements:
                del response.refinements[-1]
            return response

        monkeypatch.setattr(oracle_module, "partition_refine", faulty)
        oracle = DocumentOracle(SPEC)
        divergences = oracle.check_refinement(("xml", "databse"))
        assert "refine:partition-vs-sle" in {d.kind for d in divergences}

    def test_divergence_carries_repro_context(self, monkeypatch):
        real = oracle_module.SLCA_VARIANTS["indexed"]
        monkeypatch.setitem(
            oracle_module.SLCA_VARIANTS, "indexed",
            lambda lists: real(lists)[:-1],
        )
        (divergence, *_) = DocumentOracle(SPEC).check_slca(
            ("xml", "database")
        )
        # Everything the shrinker needs to reproduce the failure.
        assert divergence.spec == SPEC
        assert divergence.query == ("xml", "database")
        assert divergence.expected != divergence.actual
        assert "indexed" in divergence.describe()
