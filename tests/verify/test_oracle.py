"""The oracle must pass on healthy code and catch planted faults."""

import repro.verify.oracle as oracle_module
from repro.verify.invariants import check_invariants
from repro.verify.oracle import DocumentOracle, run_oracle

SPEC = (
    "root",
    None,
    [
        ("item", "xml database", [("a", "query index", [])]),
        ("item", "xml", [("b", "database", [])]),
        ("c", "tree web data", []),
    ],
)


class TestHealthyOracle:
    def test_no_divergences_on_hit_query(self):
        assert run_oracle(SPEC, ("xml", "database")) == []

    def test_no_divergences_on_typo_query(self):
        assert run_oracle(SPEC, ("xml", "databse")) == []

    def test_no_divergences_on_absent_term(self):
        assert run_oracle(SPEC, ("zzzq",)) == []

    def test_invariants_clean(self):
        oracle = DocumentOracle(SPEC)
        assert check_invariants(oracle, ("xml", "database")) == []

    def test_empty_query_is_skipped(self):
        assert run_oracle(SPEC, ("", "  ")) == []


class TestPlantedFaults:
    def test_slca_fault_detected(self, monkeypatch):
        # Plant: the "scan" variant silently drops its last answer.
        real = oracle_module.SLCA_VARIANTS["scan"]
        monkeypatch.setitem(
            oracle_module.SLCA_VARIANTS, "scan",
            lambda lists: real(lists)[:-1],
        )
        oracle = DocumentOracle(SPEC)
        divergences = oracle.check_slca(("xml", "database"))
        kinds = {d.kind for d in divergences}
        assert "slca:scan:cold" in kinds
        # The other variants stay clean: the diff localizes the fault.
        assert not any(k.startswith("slca:stack") for k in kinds)

    def test_refinement_fault_detected(self, monkeypatch):
        # Plant: Algorithm 2 drops its lowest-ranked refined query.
        real = oracle_module.partition_refine

        def faulty(index, terms, **kwargs):
            response = real(index, terms, **kwargs)
            if response.refinements:
                del response.refinements[-1]
            return response

        monkeypatch.setattr(oracle_module, "partition_refine", faulty)
        oracle = DocumentOracle(SPEC)
        divergences = oracle.check_refinement(("xml", "databse"))
        assert "refine:partition-vs-sle" in {d.kind for d in divergences}

    def test_divergence_carries_repro_context(self, monkeypatch):
        real = oracle_module.SLCA_VARIANTS["indexed"]
        monkeypatch.setitem(
            oracle_module.SLCA_VARIANTS, "indexed",
            lambda lists: real(lists)[:-1],
        )
        (divergence, *_) = DocumentOracle(SPEC).check_slca(
            ("xml", "database")
        )
        # Everything the shrinker needs to reproduce the failure.
        assert divergence.spec == SPEC
        assert divergence.query == ("xml", "database")
        assert divergence.expected != divergence.actual
        assert "indexed" in divergence.describe()


class TestChainLayer:
    def test_chain_state_builds_for_multi_partition_docs(self):
        oracle = DocumentOracle(SPEC)
        assert oracle.chain_state is not None
        assert oracle.check_chain(("xml", "database")) == []

    def test_single_partition_docs_are_skipped(self):
        oracle = DocumentOracle(
            ("root", None, [("only", "xml database", [])])
        )
        assert oracle.chain_state is None
        assert oracle.check_chain(("xml",)) == []

    def test_compaction_mismatch_reported_once(self):
        oracle = DocumentOracle(SPEC)
        chain_engine, blocked_engine, _ = oracle.chain_state
        oracle._chain_state = (chain_engine, blocked_engine, False)
        first = oracle.check_chain(("xml", "database"))
        assert "chain:compaction" in {d.kind for d in first}
        again = oracle.check_chain(("xml", "database"))
        assert "chain:compaction" not in {d.kind for d in again}

    def test_blocked_posting_fault_detected(self):
        oracle = DocumentOracle(SPEC)
        chain_engine, blocked_engine, identical = oracle.chain_state
        # Plant: the blocked view serves a truncated posting list.
        term = "xml"
        lists = blocked_engine.index.inverted
        real = lists.get

        class Truncated:
            def __init__(self, source):
                self._source = source

            @property
            def postings(self):
                return list(self._source.postings)[:-1]

            def __iter__(self):
                return iter(self.postings)

            def __len__(self):
                return len(self.postings)

            def __getattr__(self, name):
                return getattr(self._source, name)

        class Faulty:
            def get(self, keyword):
                found = real(keyword)
                return Truncated(found) if keyword == term else found

            def __getattr__(self, name):
                return getattr(lists, name)

        blocked_engine.index.inverted = Faulty()
        try:
            divergences = oracle.check_chain(("xml", "database"))
        finally:
            blocked_engine.index.inverted = lists
        assert "blocked:postings" in {d.kind for d in divergences}
