"""Property tests: no interleaving of cache operations serves a wrong
entry.

A model dict tracks, for every key, the exact ``(version, value,
put_time)`` of its last ``put``.  Hypothesis drives random
interleavings of ``put`` / ``get`` / ``purge_other_versions`` / clock
advances over the W-TinyLFU cache (window + frequency-gated segmented
main region + TTL + version stamps) and asserts the one contract all
the machinery must preserve: a returned value is always the last one
stored for that key, at the requested version, within its TTL.
Returning ``None`` is always legal (eviction, admission rejection);
returning anything stale never is.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import QueryResultCache

TTL = 10.0

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.integers(0, 11),      # key
            st.integers(0, 999),     # value
            st.integers(0, 2),       # version
        ),
        st.tuples(
            st.just("get"),
            st.integers(0, 11),
            st.integers(0, 2),
        ),
        st.tuples(st.just("purge"), st.integers(0, 2)),
        st.tuples(st.just("advance"), st.floats(0.5, 6.0)),
    ),
    min_size=1,
    max_size=200,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@settings(max_examples=150, deadline=None)
@given(ops=operations, maxsize=st.integers(1, 8), ttl=st.booleans())
def test_interleavings_never_serve_stale_or_expired(ops, maxsize, ttl):
    clock = Clock()
    cache = QueryResultCache(
        maxsize=maxsize, ttl=TTL if ttl else None, clock=clock
    )
    model = {}
    for op in ops:
        if op[0] == "put":
            _, key, value, version = op
            cache.put(key, value, version)
            model[key] = (version, value, clock.now)
        elif op[0] == "get":
            _, key, version = op
            served = cache.get(key, version)
            if served is None:
                continue
            stored_version, stored_value, put_time = model[key]
            assert served == stored_value, "served a superseded value"
            assert stored_version == version, "served a stale version"
            if ttl:
                assert clock.now - put_time < TTL, "served past its TTL"
        elif op[0] == "purge":
            survivor = op[1]
            cache.purge_other_versions(survivor)
            model = {
                key: entry
                for key, entry in model.items()
                if entry[0] == survivor
            }
        else:
            clock.now += op[1]
    # Closing sweep: whatever survived must still obey the contract.
    for key, (version, value, put_time) in model.items():
        served = cache.get(key, version)
        if served is not None:
            assert served == value
            if ttl:
                assert clock.now - put_time < TTL


@settings(max_examples=30, deadline=None)
@given(ops=operations, hot=st.integers(1000, 1003))
def test_admission_stays_live_after_any_history(ops, hot):
    """After any operation history, a newly hot key wins admission.

    The frequency sketch's halving must keep admission adaptive: no
    matter what popularity history the interleaving built up, a key
    requested persistently against background noise accumulates enough
    estimated frequency to displace a victim — a sketch that saturated
    or never aged would starve it forever.
    """
    clock = Clock()
    cache = QueryResultCache(maxsize=8, clock=clock)
    for op in ops:
        if op[0] == "put":
            cache.put(op[1], op[2], 0)
        elif op[0] == "get":
            cache.get(op[1], 0)
        elif op[0] == "purge":
            cache.purge_other_versions(0)
        else:
            clock.now += op[1]
    for round_number in range(12 * cache.maxsize):
        if cache.get(hot, 0) is None:
            cache.put(hot, "payload", 0)
        # One-hit-wonder noise competing for the same slots.
        noise = ("noise", round_number)
        cache.get(noise, 0)
        cache.put(noise, round_number, 0)
    assert cache.get(hot, 0) == "payload"
