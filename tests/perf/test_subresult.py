"""The term-signature sub-result cache and its engine integration.

The invalidation contract under test: a sub-result entry is served
only when (a) its version stamp equals the index's current version and
(b) the requesting query's inferred search-for types equal the types
the SLCA set was computed against — meaningfulness is relative to the
query's own type inference, so a types mismatch is a miss, never a
wrong answer.  Deposits cover only oracle-fingerprinted surfaces: a
direct hit's own results and a refinement evaluation's per-refinement
SLCA sets.
"""

from __future__ import annotations

import pytest

from repro import XRefine, build_document_index
from repro.datasets import generate_dblp
from repro.perf import SubResultCache, term_signature
from repro.verify.oracle import response_fingerprint
from repro.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def index():
    return build_document_index(generate_dblp(num_authors=30, seed=7))


class TestTermSignature:
    def test_order_insensitive(self):
        assert term_signature(["b", "a"]) == term_signature(["a", "b"])

    def test_duplicate_insensitive(self):
        assert term_signature(["a", "a", "b"]) == term_signature(
            ["b", "a"]
        )


class TestSubResultCache:
    TYPES = (("inproceedings",),)

    def test_put_get_roundtrip(self):
        cache = SubResultCache(maxsize=8)
        signature = ("a", "b")
        cache.put(signature, 0, self.TYPES, ["0.1", "0.2"])
        assert cache.get(signature, 0, self.TYPES) == ("0.1", "0.2")
        assert cache.stats()["hits"] == 1

    def test_stale_version_dropped(self):
        cache = SubResultCache(maxsize=8)
        cache.put(("a",), 0, self.TYPES, ["0.1"])
        assert cache.get(("a",), 1, self.TYPES) is None
        assert cache.stats()["invalidations"] == 1
        assert len(cache) == 0

    def test_types_mismatch_is_a_miss_not_an_answer(self):
        cache = SubResultCache(maxsize=8)
        cache.put(("a",), 0, self.TYPES, ["0.1"])
        other = (("article",),)
        assert cache.get(("a",), 0, other) is None
        assert cache.stats()["mismatches"] == 1
        # The entry stays — a query with the matching types can still
        # use it.
        assert cache.get(("a",), 0, self.TYPES) == ("0.1",)

    def test_empty_slcas_never_deposited(self):
        cache = SubResultCache(maxsize=8)
        cache.put(("a",), 0, self.TYPES, [])
        assert len(cache) == 0
        assert cache.stats()["deposits"] == 0

    def test_capacity_evicts_least_recent(self):
        cache = SubResultCache(maxsize=2)
        cache.put(("a",), 0, self.TYPES, ["0.1"])
        cache.put(("b",), 0, self.TYPES, ["0.2"])
        cache.get(("a",), 0, self.TYPES)
        cache.put(("c",), 0, self.TYPES, ["0.3"])
        assert cache.get(("b",), 0, self.TYPES) is None
        assert cache.get(("a",), 0, self.TYPES) is not None
        assert cache.stats()["evictions"] == 1

    def test_purge_other_versions(self):
        cache = SubResultCache(maxsize=8)
        cache.put(("a",), 0, self.TYPES, ["0.1"])
        cache.put(("b",), 1, self.TYPES, ["0.2"])
        assert cache.purge_other_versions(1) == 1
        assert cache.get(("b",), 1, self.TYPES) is not None
        assert len(cache) == 1

    def test_zero_size_disables(self):
        cache = SubResultCache(maxsize=0)
        assert not cache.enabled
        cache.put(("a",), 0, self.TYPES, ["0.1"])
        assert cache.get(("a",), 0, self.TYPES) is None


class TestEngineIntegration:
    def refinable_terms(self, index, seed=5):
        return list(
            WorkloadGenerator(index, seed=seed).refinable_query().query
        )

    def test_refinement_evaluation_deposits_subresults(self, index):
        engine = XRefine(index)
        response = engine.search(self.refinable_terms(index), k=2)
        assert response.needs_refinement
        deposited = engine.subresult_cache.stats()["deposits"]
        assert deposited >= len(
            [r for r in response.refinements if r.slcas]
        ) > 0

    def test_assembly_matches_cold_evaluation(self, index):
        """A reformulation chain's follow-up reuses deposited SLCAs.

        The refinable query's evaluation deposits its refinements'
        SLCA sets; re-issuing each refinement with the result cache
        emptied must be served through sub-result assembly and still
        be byte-identical to a cache-disabled engine.
        """
        engine = XRefine(index)
        cold = XRefine(index, cache_size=0)
        first = engine.search(self.refinable_terms(index), k=2)
        followups = [list(r.rq.keywords) for r in first.refinements]
        assert followups
        engine.result_cache.clear()
        hits_before = engine.subresult_cache.stats()["hits"]
        for follow in followups:
            warm = engine.search(follow, k=2)
            assert response_fingerprint(warm) == response_fingerprint(
                cold.search(follow, k=2)
            )
        assert engine.subresult_cache.stats()["hits"] > hits_before

    def test_assembled_response_hits_the_result_cache(self, index):
        engine = XRefine(index)
        first = engine.search(self.refinable_terms(index), k=2)
        follow = list(first.refinements[0].rq.keywords)
        engine.result_cache.clear()
        assembled = engine.search(follow, k=2)
        assert engine.search(follow, k=2) is assembled

    def test_index_update_invalidates_deposits(self, index):
        """Any index mutation bumps the version; stale entries die."""
        corpus = build_document_index(
            generate_dblp(num_authors=30, seed=7)
        )
        engine = XRefine(corpus)
        first = engine.search(self.refinable_terms(corpus), k=2)
        assert engine.subresult_cache.stats()["size"] > 0
        follow = list(first.refinements[0].rq.keywords)
        corpus.invalidate_caches()  # what every index update calls
        engine.result_cache.clear()
        warm = engine.search(follow, k=2)
        stats = engine.subresult_cache.stats()
        assert stats["invalidations"] > 0 or stats["mismatches"] > 0
        cold = XRefine(corpus, cache_size=0)
        assert response_fingerprint(warm) == response_fingerprint(
            cold.search(follow, k=2)
        )

    def test_subresult_size_zero_disables_assembly(self, index):
        engine = XRefine(index, subresult_size=0)
        engine.search(self.refinable_terms(index), k=2)
        assert engine.subresult_cache.stats()["deposits"] == 0

    def test_cache_stats_surface_every_layer(self, index):
        engine = XRefine(index)
        stats = engine.cache_stats()
        assert "admission_rejects" in stats["results"]
        assert "evictions" in stats["results"]
        assert stats["results"]["policy"] == "tinylfu"
        assert set(stats["subresults"]) >= {
            "hits", "misses", "mismatches", "deposits", "evictions",
        }
