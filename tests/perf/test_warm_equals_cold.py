"""Regression: the hot-path caches never change an answer.

For every refinement algorithm in ``ALGORITHMS`` and every plain-SLCA
algorithm in ``SLCA_ALGORITHMS``, a warm (cached) engine must return
results identical to a cold engine with caching disabled, across a
generated workload mix of refinable and clean queries.
"""

import pytest

from repro import XRefine
from repro.core.engine import ALGORITHMS, SLCA_ALGORITHMS
from repro.workload import ALL_KINDS, WorkloadGenerator


def response_fingerprint(response):
    """Everything observable about an answer, hashable-comparable."""
    return (
        response.query,
        response.needs_refinement,
        tuple(map(str, response.original_results)),
        tuple(
            (
                refinement.rq.key,
                refinement.rq.dissimilarity,
                round(refinement.rank_score, 9),
                tuple(map(str, refinement.slcas)),
            )
            for refinement in response.refinements
        ),
        tuple(c.node_type for c in response.search_for),
    )


@pytest.fixture(scope="module")
def query_mix(dblp_index):
    generator = WorkloadGenerator(dblp_index, seed=101)
    queries = [generator.refinable_query(kinds=[kind]) for kind in ALL_KINDS[:4]]
    queries.append(generator.clean_query())
    queries.append(generator.clean_query())
    return [list(q.query) for q in queries]


@pytest.fixture(scope="module")
def warm_engine(dblp_index):
    return XRefine(dblp_index)


@pytest.fixture(scope="module")
def cold_engine(dblp_index):
    engine = XRefine(dblp_index, cache_size=0)
    assert not engine.result_cache.enabled
    return engine


class TestRefinementAlgorithms:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_warm_equals_cold(
        self, warm_engine, cold_engine, query_mix, algorithm
    ):
        for query in query_mix:
            first = warm_engine.search(query, k=2, algorithm=algorithm)
            second = warm_engine.search(query, k=2, algorithm=algorithm)
            fresh = cold_engine.search(query, k=2, algorithm=algorithm)
            assert second is first  # served from the cache
            assert response_fingerprint(first) == response_fingerprint(fresh)

    def test_distinct_k_cached_separately(self, warm_engine, query_mix):
        query = query_mix[0]
        top1 = warm_engine.search(query, k=1)
        top3 = warm_engine.search(query, k=3)
        assert top1 is not top3
        assert warm_engine.search(query, k=1) is top1
        assert warm_engine.search(query, k=3) is top3

    def test_caller_rules_bypass_cache(self, warm_engine, query_mix):
        query = query_mix[0]
        rules = warm_engine.mine_rules(query)
        a = warm_engine.search(query, k=2, rules=rules)
        b = warm_engine.search(query, k=2, rules=rules)
        assert a is not b  # explicit rules are never cached
        assert response_fingerprint(a) == response_fingerprint(b)


class TestSLCAAlgorithms:
    @pytest.mark.parametrize("algorithm", sorted(SLCA_ALGORITHMS))
    def test_warm_equals_cold(
        self, warm_engine, cold_engine, query_mix, algorithm
    ):
        for query in query_mix:
            first = warm_engine.slca_search(query, algorithm=algorithm)
            second = warm_engine.slca_search(query, algorithm=algorithm)
            fresh = cold_engine.slca_search(query, algorithm=algorithm)
            assert first == second == fresh

    def test_cached_list_is_caller_safe(self, warm_engine, query_mix):
        """Mutating a returned result list must not corrupt the cache."""
        query = query_mix[-1]
        first = warm_engine.slca_search(query)
        first.append("garbage")
        second = warm_engine.slca_search(query)
        assert "garbage" not in second


class TestBatchAPI:
    def test_search_many_matches_singles(self, cold_engine, query_mix):
        batch_engine = XRefine(cold_engine.index)
        log = query_mix + query_mix[::-1]  # repeats in one batch
        responses = batch_engine.search_many(log, k=2)
        assert len(responses) == len(log)
        for query, response in zip(log, responses):
            fresh = cold_engine.search(query, k=2)
            assert response_fingerprint(response) == response_fingerprint(fresh)

    def test_search_many_dedups_but_isolates_duplicates(
        self, dblp_index, query_mix
    ):
        """Duplicates are evaluated once but returned as copies.

        Identity sharing (the pre-serve behavior) let one caller's
        list mutation corrupt every duplicate position's answer; the
        batch still deduplicates before dispatch, the duplicate
        positions just get mutation-isolated copies now.
        """
        engine = XRefine(dblp_index, cache_size=0)  # even with LRU off
        log = [query_mix[0], query_mix[1], query_mix[0]]
        responses = engine.search_many(log)
        assert responses[0] is not responses[2]
        assert responses[0] is not responses[1]
        assert response_fingerprint(responses[0]) == response_fingerprint(
            responses[2]
        )
