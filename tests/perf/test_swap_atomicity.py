"""Result-cache version-stamp atomicity across snapshot hot-swaps.

The bug class under test: the cache stamp check used to read the index
version and consult the cache as two separate steps, and ``put`` used
to stamp entries with the *store-time* version — so an evaluation (or
even just a lookup) straddling :meth:`XRefine.swap_index` could serve
or store a previous generation's answer under the new generation's
stamp.  The fix captures the version exactly once, atomically with the
lookup, under the cache's lock (which the swap also holds while it
flips), and stamps the put with that captured version.
"""

from __future__ import annotations

import threading

import pytest

from repro import XRefine, build_document_index
from repro.datasets import generate_dblp
from repro.index.tokenize_text import query_terms
from repro.lexicon.mining import RuleMiner
from repro.perf.result_cache import QueryResultCache
from repro.verify.oracle import response_fingerprint
from repro.workload import WorkloadGenerator


@pytest.fixture()
def corpus_pair():
    """Two distinct corpora (what two frozen snapshots would hold)."""
    index_a = build_document_index(generate_dblp(num_authors=30, seed=7))
    index_b = build_document_index(generate_dblp(num_authors=45, seed=8))
    return index_a, index_b


def refinable_query(index, seed=5):
    return list(WorkloadGenerator(index, seed=seed).refinable_query().query)


class TestSwapPurgesTheCache:
    def test_stale_entries_are_unreachable_after_swap(self, corpus_pair):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a)
        query = refinable_query(index_a)
        first = engine.search(query, k=2)
        assert engine.search(query, k=2) is first  # warm

        old_version = engine.index.version
        engine.swap_index(index_b)
        assert engine.index.version == old_version + 1
        # The purge ran under the same lock as the flip: even a reader
        # that captured the *old* version before the swap finds nothing.
        assert engine.result_cache.stats()["size"] == 0
        assert len(engine.result_cache) == 0
        # The sub-result layer obeys the same generation contract.
        assert engine.subresult_cache.stats()["size"] == 0

        after = engine.search(query, k=2)
        assert after is not first
        fresh = XRefine(index_b, cache_size=0)
        assert response_fingerprint(after) == response_fingerprint(
            fresh.search(query, k=2)
        )

    def test_swap_is_idempotent_for_the_same_index(self, corpus_pair):
        index_a, _ = corpus_pair
        engine = XRefine(index_a)
        query = refinable_query(index_a)
        cached = engine.search(query, k=2)
        version = engine.index.version
        engine.swap_index(index_a)  # no-op: same object
        assert engine.index.version == version
        assert engine.search(query, k=2) is cached  # cache survived


class TestStraddlingEvaluation:
    def test_evaluation_across_a_swap_cannot_poison_the_cache(
        self, corpus_pair, monkeypatch
    ):
        """A response computed against generation N, whose store races
        the flip to N+1, must never be served on N+1."""
        import repro.core.ranking.results as results_module

        index_a, index_b = corpus_pair
        engine = XRefine(index_a)
        query = refinable_query(index_a)
        real = results_module.rank_response_results
        swapped = []

        def swapping_hook(index, response):
            real(index, response)
            # Between evaluation and the cache put: the flip happens.
            if not swapped:
                swapped.append(True)
                engine.swap_index(index_b)

        monkeypatch.setattr(
            results_module, "rank_response_results", swapping_hook
        )
        straddler = engine.search(query, k=2, rank_results=True)
        assert swapped  # the race fired

        # The straddling response was stamped with the generation it
        # was computed against (now purged/unreachable) — the next
        # request re-evaluates against the new index.
        after = engine.search(query, k=2, rank_results=True)
        assert after is not straddler
        fresh = XRefine(index_b, cache_size=0)
        assert response_fingerprint(after) == response_fingerprint(
            fresh.search(query, k=2, rank_results=True)
        )

    def test_slca_lookup_and_version_capture_are_atomic(
        self, corpus_pair
    ):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a)
        query = refinable_query(index_a)
        before = engine.slca_search(query)
        engine.swap_index(index_b)
        after = engine.slca_search(query)
        fresh = XRefine(index_b, cache_size=0)
        assert after == fresh.slca_search(query)
        # Not a stale serve of the old generation's list.
        assert engine.result_cache.stats()["invalidations"] >= 1 or (
            after != before
        )


class TestPreparedSwap:
    """``prepare_swap`` pre-builds exactly the state the flip installs."""

    def test_flip_adopts_the_prepared_miner_and_rules(self, corpus_pair):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a)
        query = refinable_query(index_b)
        terms = tuple(query_terms(query))

        warmup = engine.prepare_swap(index_b, [query])
        assert warmup.queries == 1
        assert warmup.miner is not engine.miner  # built for index_b
        prepared_rules = warmup.rules_memo[terms][1]

        engine.swap_index(index_b, warmup=warmup)
        # The flip installed the pre-built miner, so the first post-swap
        # mine_rules is a memo hit on the prepared rule set — no
        # fresh-vocabulary mining on the serving path.
        assert engine.miner is warmup.miner
        assert engine.mine_rules(query) is prepared_rules

    def test_prepared_swap_answers_match_a_fresh_engine(self, corpus_pair):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a)
        query = refinable_query(index_b)
        warmup = engine.prepare_swap(index_b, [query])
        engine.swap_index(index_b, warmup=warmup)
        fresh = XRefine(index_b, cache_size=0)
        assert response_fingerprint(
            engine.search(query, k=2)
        ) == response_fingerprint(fresh.search(query, k=2))

    def test_incremental_prepare_dedups_and_accumulates(self, corpus_pair):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a)
        gen = WorkloadGenerator(index_b, seed=11)
        queries = [list(gen.refinable_query().query) for _ in range(3)]

        warmup = engine.prepare_swap(index_b, queries[:1])
        warmup = engine.prepare_swap(index_b, queries, warmup=warmup)
        # Chained calls share one warmup: the repeat of queries[0] is
        # deduplicated, distinct signatures accumulate.
        distinct = {tuple(query_terms(q)) for q in queries}
        assert warmup.queries == len(distinct)
        assert warmup.seen == distinct

    def test_seed_reuses_mined_rules_when_vocabulary_matches(
        self, corpus_pair
    ):
        """Cycling back to a served snapshot skips re-mining."""
        index_a, index_b = corpus_pair
        engine = XRefine(index_a)
        query = refinable_query(index_b)
        terms = tuple(query_terms(query))
        first = engine.prepare_swap(index_b, [query])
        seed = first.seed_only()
        assert seed.packed is None  # never pins the old generation
        again = engine.prepare_swap(index_b, [query], seed=seed)
        assert again.miner is first.miner
        assert again.rules_memo[terms][1] is first.rules_memo[terms][1]
        assert again.packed is not None  # per-index state is rebuilt
        assert again.queries == 1

    def test_seed_with_different_vocabulary_is_ignored(self, corpus_pair):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a)
        seed = engine.prepare_swap(index_b, [refinable_query(index_b)])
        warmup = engine.prepare_swap(
            index_a, [refinable_query(index_a)], seed=seed.seed_only()
        )
        # index_a's vocabulary differs from index_b's: a reused miner
        # would mine against the wrong keyword set.
        assert warmup.miner is not seed.miner
        assert warmup.miner.vocabulary == set(index_a.inverted.keywords())

    def test_explicit_miner_is_left_untouched(self, corpus_pair):
        index_a, index_b = corpus_pair
        miner = RuleMiner(index_a.inverted.keywords())
        engine = XRefine(index_a, miner=miner)
        query = refinable_query(index_b)
        warmup = engine.prepare_swap(index_b, [query])
        # Caller-supplied miners are the caller's contract: prepare
        # builds no replacement and the flip must not install one.
        assert warmup.miner is None
        engine.swap_index(index_b, warmup=warmup)
        assert engine.miner is miner

    def test_swap_without_warmup_still_works(self, corpus_pair):
        index_a, index_b = corpus_pair
        engine = XRefine(index_a)
        engine.swap_index(index_b)
        query = refinable_query(index_b)
        fresh = XRefine(index_b, cache_size=0)
        assert response_fingerprint(
            engine.search(query, k=2)
        ) == response_fingerprint(fresh.search(query, k=2))


class TestThreadedStamps:
    def test_concurrent_readers_never_cross_generations(self):
        """Readers doing atomic capture+get while a writer flips.

        Models the engine's locking discipline directly on the cache:
        each reader captures the current version and consults the
        cache under ``cache.lock`` (as ``_search_validated`` does), and
        stores values tagged with their captured version.  The writer
        thread flips the version and purges under the same lock, as
        ``swap_index`` does.  A hit whose payload tag differs from the
        version the reader captured would be a cross-generation serve.
        """
        cache = QueryResultCache(128)
        current = [0]
        violations = []
        errors = []
        stop = threading.Event()
        keys = [("q", i) for i in range(8)]

        def reader(seed):
            local = 0
            try:
                while not stop.is_set():
                    key = keys[(seed + local) % len(keys)]
                    local += 1
                    with cache.lock:
                        version = current[0]
                        hit = cache.get(key, version)
                    if hit is None:
                        # Outside the lock, like a real evaluation —
                        # the put carries the *captured* version.
                        cache.put(key, ("answer", version), version)
                    elif hit != ("answer", version):
                        violations.append((key, version, hit))
                        return
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def swapper():
            try:
                for _ in range(400):
                    if stop.is_set():
                        return
                    with cache.lock:
                        current[0] += 1
                        cache.purge_other_versions(current[0])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()

        threads = [
            threading.Thread(target=reader, args=(i,)) for i in range(4)
        ]
        threads.append(threading.Thread(target=swapper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert errors == []
        assert violations == []
        # The final purge left only current-generation entries behind:
        # every surviving entry must be servable at the final version.
        with cache.lock:
            final = current[0]
            cache.purge_other_versions(final)
            survivors = [key for key in keys if key in cache]
            for key in survivors:
                assert cache.get(key, final) is not None
