"""Cache invalidation: warm answers equal a from-scratch rebuild.

After ``append_partition`` / ``remove_partition``, every cached answer
must be re-derived — a warm engine over the updated index has to agree
with a cold engine over a document rebuilt from scratch.
"""

import pytest

from repro import XRefine, build_document_index
from repro.index import append_partition, remove_partition
from repro.xmltree import Dewey, parse, serialize

from .test_warm_equals_cold import response_fingerprint

DOCUMENT = """<bib>
<author><name>john</name><publications>
  <inproceedings><title>xml keyword search</title><year>2003</year></inproceedings>
</publications></author>
<author><name>mary</name><publications>
  <article><title>database query refinement</title><year>2005</year></article>
</publications></author>
</bib>"""


def author_spec(name, titles):
    return (
        "author",
        None,
        [
            ("name", name),
            (
                "publications",
                None,
                [
                    ("article", None, [("title", title), ("year", "2010")])
                    for title in titles
                ],
            ),
        ],
    )


@pytest.fixture()
def engine():
    return XRefine(build_document_index(parse(DOCUMENT)))


def rebuilt_engine(index):
    """A cold engine over a document rebuilt from scratch."""
    return XRefine(
        build_document_index(parse(serialize(index.tree))), cache_size=0
    )


QUERIES = ["xml search", "database query", "keyword refinement", "john xml"]


def warm_up(engine):
    for query in QUERIES:
        engine.search(query, k=2)
        engine.slca_search(query)
    assert len(engine.result_cache) > 0


def result_texts(engine, labels):
    """Label-independent view of a result set (subtree contents).

    A from-scratch rebuild renumbers partitions after a removal, so
    answers are compared by what they contain, not by raw Dewey labels.
    """
    return sorted(
        engine.index.tree.node(label).subtree_text() for label in labels
    )


def content_fingerprint(engine, response):
    return (
        response.query,
        response.needs_refinement,
        result_texts(engine, response.original_results),
        [
            (
                refinement.rq.key,
                refinement.rq.dissimilarity,
                round(refinement.rank_score, 9),
                result_texts(engine, refinement.slcas),
            )
            for refinement in response.refinements
        ],
        [c.node_type for c in response.search_for],
    )


def assert_matches_rebuild(engine):
    fresh = rebuilt_engine(engine.index)
    for query in QUERIES:
        warm = engine.search(query, k=2)
        cold = fresh.search(query, k=2)
        assert content_fingerprint(engine, warm) == content_fingerprint(
            fresh, cold
        ), query
        assert result_texts(engine, engine.slca_search(query)) == result_texts(
            fresh, fresh.slca_search(query)
        ), query


class TestAppendInvalidation:
    def test_version_bumped(self, engine):
        before = engine.index.version
        append_partition(engine.index, author_spec("alice", ["xml views"]))
        assert engine.index.version == before + 1

    def test_warm_answers_equal_rebuild(self, engine):
        warm_up(engine)
        append_partition(
            engine.index, author_spec("alice", ["xml database search"])
        )
        assert_matches_rebuild(engine)

    def test_new_vocabulary_reaches_warm_queries(self, engine):
        warm_up(engine)
        response = engine.search("quantum xml")
        assert response.needs_refinement
        append_partition(
            engine.index, author_spec("alice", ["quantum xml models"])
        )
        response = engine.search("quantum xml")
        assert not response.needs_refinement
        assert_matches_rebuild(engine)

    def test_miner_refreshed_for_new_vocabulary(self, engine):
        warm_up(engine)
        append_partition(
            engine.index, author_spec("alice", ["skyline computation"])
        )
        # "skylne" can only be fixed through a rule mined over the
        # *updated* vocabulary; a stale miner would fail this.
        response = engine.search("skylne computation")
        assert response.needs_refinement
        assert response.best is not None
        assert response.best.rq.key == frozenset({"skyline", "computation"})


class TestRemoveInvalidation:
    def test_warm_answers_equal_rebuild(self, engine):
        warm_up(engine)
        remove_partition(engine.index, Dewey((0, 0)))
        assert_matches_rebuild(engine)

    def test_removed_content_not_served_from_cache(self, engine):
        warm_up(engine)
        assert engine.slca_search("xml search") != []
        remove_partition(engine.index, Dewey((0, 0)))
        assert engine.slca_search("xml search") == []

    def test_churn_sequence(self, engine):
        warm_up(engine)
        append_partition(engine.index, author_spec("ada", ["xml streams"]))
        assert_matches_rebuild(engine)
        warm_up(engine)
        remove_partition(engine.index, Dewey((0, 1)))
        assert_matches_rebuild(engine)
        append_partition(engine.index, author_spec("eve", ["query logs"]))
        assert_matches_rebuild(engine)


class TestIndexLevelCaches:
    def test_search_for_cache_cleared(self, engine):
        index = engine.index
        index.search_for_cache.infer(["xml", "search"])
        assert len(index.search_for_cache) > 0
        append_partition(index, author_spec("alice", ["xml views"]))
        assert len(index.search_for_cache) == 0

    def test_frequency_memo_consistent_after_update(self, engine):
        index = engine.index
        node_type = ("bib", "author", "publications", "article", "title")
        index.frequency.xml_df("database", node_type)  # prime the memo
        append_partition(
            engine.index, author_spec("alice", ["database tuning"])
        )
        fresh = build_document_index(parse(serialize(index.tree)))
        assert index.frequency.xml_df("database", node_type) == (
            fresh.frequency.xml_df("database", node_type)
        )
        assert sorted(index.frequency.types_for("database")) == sorted(
            fresh.frequency.types_for("database")
        )
