"""Unit tests for the invalidating query-result cache (both policies)."""

import pytest

from repro.perf import QueryResultCache


class FakeClock:
    """Injectable monotonic clock for TTL tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLRU:
    """The plain-LRU baseline policy keeps its original semantics."""

    def test_hit_after_put(self):
        cache = QueryResultCache(maxsize=4, policy="lru")
        cache.put("a", 1, version=0)
        assert cache.get("a", version=0) == 1
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_on_absent(self):
        cache = QueryResultCache(maxsize=4, policy="lru")
        assert cache.get("a", version=0) is None
        assert cache.misses == 1

    def test_capacity_evicts_least_recent(self):
        cache = QueryResultCache(maxsize=2, policy="lru")
        cache.put("a", 1, version=0)
        cache.put("b", 2, version=0)
        assert cache.get("a", version=0) == 1  # refresh "a"
        cache.put("c", 3, version=0)           # evicts "b"
        assert cache.get("b", version=0) is None
        assert cache.get("a", version=0) == 1
        assert cache.get("c", version=0) == 3
        assert cache.evictions == 1
        assert cache.admission_rejects == 0

    def test_put_overwrites(self):
        cache = QueryResultCache(maxsize=2, policy="lru")
        cache.put("a", 1, version=0)
        cache.put("a", 2, version=0)
        assert cache.get("a", version=0) == 2
        assert len(cache) == 1

    def test_zero_size_disables(self):
        cache = QueryResultCache(maxsize=0, policy="lru")
        assert not cache.enabled
        cache.put("a", 1, version=0)
        assert cache.get("a", version=0) is None
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            QueryResultCache(maxsize=-1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            QueryResultCache(maxsize=4, policy="clairvoyant")


class TestTinyLFU:
    """W-TinyLFU admission: window, frequency gate, segmented LRU."""

    def test_default_policy_is_tinylfu(self):
        assert QueryResultCache(maxsize=8).policy == "tinylfu"

    def test_basic_hit(self):
        cache = QueryResultCache(maxsize=8)
        cache.put("a", 1, version=0)
        assert cache.get("a", version=0) == 1

    def test_working_set_below_capacity_never_rejects(self):
        cache = QueryResultCache(maxsize=64)
        for i in range(60):
            cache.put(i, i, version=0)
        for i in range(60):
            assert cache.get(i, version=0) == i
        assert cache.admission_rejects == 0
        assert cache.evictions == 0

    def test_one_hit_wonders_do_not_flush_the_hot_head(self):
        cache = QueryResultCache(maxsize=100)
        # Build a hot head with real request frequency.
        for _ in range(5):
            for key in range(99):
                if cache.get(key, version=0) is None:
                    cache.put(key, key, version=0)
        # A long scan of one-hit wonders tries to flow through.
        for noise in range(1000, 1400):
            cache.get(noise, version=0)
            cache.put(noise, noise, version=0)
        assert cache.admission_rejects > 0
        # The hot head survived the scan.
        survivors = sum(
            1 for key in range(99) if cache.get(key, version=0) is not None
        )
        assert survivors >= 90

    def test_repeated_candidate_eventually_admitted(self):
        cache = QueryResultCache(maxsize=100)
        for _ in range(3):
            for key in range(99):
                if cache.get(key, version=0) is None:
                    cache.put(key, key, version=0)
        # A genuinely popular newcomer builds sketch credit with every
        # (missing) lookup and must eventually displace a victim.
        for _ in range(8):
            cache.get("newcomer", version=0)
            cache.put("newcomer", 42, version=0)
        assert cache.get("newcomer", version=0) == 42

    def test_sketch_halving_keeps_admission_live_after_drift(self):
        cache = QueryResultCache(maxsize=32)
        # Phase 1: an extremely hot head monopolizes the frequency
        # sketch (far beyond the sample limit, forcing halvings).
        for _ in range(200):
            for key in range(30):
                if cache.get(key, version=0) is None:
                    cache.put(key, key, version=0)
        assert cache.stats()["sketch"]["age_resets"] > 0
        # Phase 2: traffic drifts to a brand-new head.  Halving must
        # decay the old head's counts enough for the new head to win
        # admission within a couple of sample windows.
        for _ in range(40):
            for key in range(100, 130):
                if cache.get(key, version=0) is None:
                    cache.put(key, key, version=0)
        admitted = sum(
            1
            for key in range(100, 130)
            if cache.get(key, version=0) is not None
        )
        assert admitted >= 15

    def test_maxsize_one_degenerates_to_lru(self):
        cache = QueryResultCache(maxsize=1)
        cache.put("a", 1, version=0)
        cache.put("b", 2, version=0)
        assert cache.get("b", version=0) == 2
        assert cache.get("a", version=0) is None
        assert cache.evictions == 1

    def test_version_mismatch_invalidates_in_main_region(self):
        cache = QueryResultCache(maxsize=100)
        for key in range(99):  # fill past the window into probation
            cache.put(key, key, version=0)
        assert cache.get(5, version=1) is None
        assert cache.invalidations == 1
        assert 5 not in cache


class TestTTL:
    def test_entry_expires_on_read(self):
        clock = FakeClock()
        cache = QueryResultCache(maxsize=8, ttl=10.0, clock=clock)
        cache.put("a", 1, version=0)
        assert cache.get("a", version=0) == 1
        clock.advance(10.0)
        assert cache.get("a", version=0) is None
        assert cache.expirations == 1
        assert "a" not in cache

    def test_fresh_entry_survives(self):
        clock = FakeClock()
        cache = QueryResultCache(maxsize=8, ttl=10.0, clock=clock)
        cache.put("a", 1, version=0)
        clock.advance(9.9)
        assert cache.get("a", version=0) == 1

    def test_overwrite_refreshes_ttl(self):
        clock = FakeClock()
        cache = QueryResultCache(maxsize=8, ttl=10.0, clock=clock)
        cache.put("a", 1, version=0)
        clock.advance(8.0)
        cache.put("a", 2, version=0)
        clock.advance(8.0)
        assert cache.get("a", version=0) == 2

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            QueryResultCache(maxsize=8, ttl=0)


class TestVersioning:
    def test_version_mismatch_invalidates(self):
        cache = QueryResultCache(maxsize=4)
        cache.put("a", 1, version=0)
        assert cache.get("a", version=1) is None
        assert cache.invalidations == 1
        assert "a" not in cache  # evicted for good, not retried

    def test_entries_at_new_version_coexist(self):
        cache = QueryResultCache(maxsize=4)
        cache.put("a", 1, version=0)
        cache.put("b", 2, version=1)
        assert cache.get("b", version=1) == 2
        assert cache.get("a", version=1) is None

    def test_clear_counts_invalidations(self):
        cache = QueryResultCache(maxsize=4)
        cache.put("a", 1, version=0)
        cache.put("b", 2, version=0)
        cache.clear()
        assert len(cache) == 0
        assert cache.invalidations == 2

    @pytest.mark.parametrize("policy", ["lru", "tinylfu"])
    def test_purge_other_versions_sweeps_every_segment(self, policy):
        cache = QueryResultCache(maxsize=100, policy=policy)
        for key in range(80):
            cache.put(key, key, version=0)
        for key in range(10):
            cache.get(key, version=0)  # promote some to protected
        for key in range(80, 90):
            cache.put(key, key, version=1)
        dropped = cache.purge_other_versions(1)
        assert dropped == 80
        for key in range(80):
            assert key not in cache
        for key in range(80, 90):
            assert cache.get(key, version=1) == key

    def test_stats_snapshot(self):
        cache = QueryResultCache(maxsize=4, policy="lru")
        cache.put("a", 1, version=0)
        cache.get("a", version=0)
        cache.get("zzz", version=0)
        stats = cache.stats()
        assert stats == {
            "size": 1,
            "maxsize": 4,
            "policy": "lru",
            "ttl": None,
            "hits": 1,
            "misses": 1,
            "invalidations": 0,
            "evictions": 0,
            "admission_rejects": 0,
            "expirations": 0,
            "sketch": None,
        }

    def test_tinylfu_stats_include_sketch(self):
        cache = QueryResultCache(maxsize=4)
        stats = cache.stats()
        assert stats["policy"] == "tinylfu"
        assert stats["sketch"]["age_resets"] == 0
        assert stats["sketch"]["sample_limit"] == 40
