"""Unit tests for the invalidating LRU query-result cache."""

import pytest

from repro.perf import QueryResultCache


class TestLRU:
    def test_hit_after_put(self):
        cache = QueryResultCache(maxsize=4)
        cache.put("a", 1, version=0)
        assert cache.get("a", version=0) == 1
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_on_absent(self):
        cache = QueryResultCache(maxsize=4)
        assert cache.get("a", version=0) is None
        assert cache.misses == 1

    def test_capacity_evicts_least_recent(self):
        cache = QueryResultCache(maxsize=2)
        cache.put("a", 1, version=0)
        cache.put("b", 2, version=0)
        assert cache.get("a", version=0) == 1  # refresh "a"
        cache.put("c", 3, version=0)           # evicts "b"
        assert cache.get("b", version=0) is None
        assert cache.get("a", version=0) == 1
        assert cache.get("c", version=0) == 3

    def test_put_overwrites(self):
        cache = QueryResultCache(maxsize=2)
        cache.put("a", 1, version=0)
        cache.put("a", 2, version=0)
        assert cache.get("a", version=0) == 2
        assert len(cache) == 1

    def test_zero_size_disables(self):
        cache = QueryResultCache(maxsize=0)
        assert not cache.enabled
        cache.put("a", 1, version=0)
        assert cache.get("a", version=0) is None
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            QueryResultCache(maxsize=-1)


class TestVersioning:
    def test_version_mismatch_invalidates(self):
        cache = QueryResultCache(maxsize=4)
        cache.put("a", 1, version=0)
        assert cache.get("a", version=1) is None
        assert cache.invalidations == 1
        assert "a" not in cache  # evicted for good, not retried

    def test_entries_at_new_version_coexist(self):
        cache = QueryResultCache(maxsize=4)
        cache.put("a", 1, version=0)
        cache.put("b", 2, version=1)
        assert cache.get("b", version=1) == 2
        assert cache.get("a", version=1) is None

    def test_clear_counts_invalidations(self):
        cache = QueryResultCache(maxsize=4)
        cache.put("a", 1, version=0)
        cache.put("b", 2, version=0)
        cache.clear()
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_stats_snapshot(self):
        cache = QueryResultCache(maxsize=4)
        cache.put("a", 1, version=0)
        cache.get("a", version=0)
        cache.get("zzz", version=0)
        stats = cache.stats()
        assert stats == {
            "size": 1,
            "maxsize": 4,
            "hits": 1,
            "misses": 1,
            "invalidations": 0,
        }
