"""The paper's one-scan guarantee survives the hot-path caches.

Theorems 1–2 bound a *cold* query to a single scan of every opened
inverted list.  The caches must preserve that bound on cold queries and
bypass scanning entirely on warm ones.
"""

import pytest

from repro import XRefine
from repro.core.common import QueryContext
from repro.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def pool(dblp_index):
    generator = WorkloadGenerator(dblp_index, seed=131)
    queries = [generator.refinable_query() for _ in range(3)]
    queries.append(generator.clean_query())
    return queries


@pytest.mark.parametrize("algorithm", ["stack", "partition"])
def test_cold_query_scans_each_list_at_most_once(
    dblp_index, pool, algorithm
):
    engine = XRefine(dblp_index)  # caches enabled; queries are cold
    for pool_query in pool:
        rules = engine.mine_rules(pool_query.query)
        context = QueryContext(dblp_index, pool_query.query, rules)
        total_postings = sum(len(lst) for lst in context.lists.values())
        response = engine.search(pool_query.query, k=2, algorithm=algorithm)
        assert response.stats.postings_scanned <= total_postings, pool_query


def test_sle_cold_query_never_rewinds(dblp_index, pool):
    """skip_to raises on any backward move; a full run proves it."""
    engine = XRefine(dblp_index)
    for pool_query in pool:
        engine.search(pool_query.query, k=2, algorithm="sle")


@pytest.mark.parametrize("algorithm", ["stack", "partition", "sle"])
def test_warm_query_scans_nothing(dblp_index, pool, algorithm):
    engine = XRefine(dblp_index)
    for pool_query in pool:
        cold = engine.search(pool_query.query, k=2, algorithm=algorithm)
        scanned_after_cold = cold.stats.postings_scanned
        warm = engine.search(pool_query.query, k=2, algorithm=algorithm)
        # The cached response is returned as-is: its ScanStats still
        # describe the single cold evaluation, proving no list was
        # re-opened or re-scanned.
        assert warm is cold
        assert warm.stats.postings_scanned == scanned_after_cold


def test_packed_slca_lists_bypass_cursors(dblp_index, pool):
    """Plain SLCA served from packed arrays opens no instrumented cursor
    and agrees with a direct run over freshly decoded label lists."""
    from repro.slca import scan_eager_slca

    engine = XRefine(dblp_index)
    for pool_query in pool:
        terms = [t for t in pool_query.query if dblp_index.has_keyword(t)]
        if not terms:
            continue
        served = engine.slca_search(terms)
        direct = scan_eager_slca(
            [
                [p.dewey for p in dblp_index.inverted_list(t)]
                for t in terms
            ]
        )
        assert served == direct


def test_refinement_cursors_unaffected_by_packed_store(dblp_index, pool):
    """Refinement algorithms still consume instrumented ListCursors even
    after the packed store has materialized the same keywords."""
    engine = XRefine(dblp_index)
    pool_query = pool[0]
    for term in pool_query.query:
        engine.packed.get(term)  # force-pack every query keyword
    response = engine.search(pool_query.query, k=2, algorithm="partition")
    assert response.stats.lists_opened > 0
    assert response.stats.postings_scanned >= 0
    rules = engine.mine_rules(pool_query.query)
    context = QueryContext(dblp_index, pool_query.query, rules)
    total_postings = sum(len(lst) for lst in context.lists.values())
    assert response.stats.postings_scanned <= total_postings
