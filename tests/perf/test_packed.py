"""Packed posting arrays: fidelity, sharing and coherence with updates."""

from repro import XRefine
from repro.index import append_partition, build_document_index
from repro.perf import PackedListStore
from repro.slca import (
    elca,
    indexed_lookup_slca,
    multiway_slca,
    scan_eager_slca,
    stack_slca,
)
from repro.xmltree import parse

ALL_SLCA = [
    stack_slca,
    scan_eager_slca,
    indexed_lookup_slca,
    multiway_slca,
    elca,
]


def test_packed_matches_decoded_list(dblp_index):
    store = PackedListStore(dblp_index)
    for keyword in list(dblp_index.inverted.keywords())[:20]:
        packed = store.get(keyword)
        source = dblp_index.inverted.get(keyword)
        assert len(packed) == len(source)
        assert packed.labels == [p.dewey for p in source]
        assert packed.node_types == [p.node_type for p in source]
        assert packed.counts == [p.count for p in source]


def test_components_are_shared_not_copied(dblp_index):
    store = PackedListStore(dblp_index)
    keyword = dblp_index.inverted.keywords()[0]
    packed = store.get(keyword)
    for label, components in zip(packed.labels, packed.components):
        assert label.components is components


def test_identity_stable_across_calls(dblp_index):
    store = PackedListStore(dblp_index)
    keyword = dblp_index.inverted.keywords()[0]
    assert store.get(keyword) is store.get(keyword)


def test_sequence_protocol(dblp_index):
    store = PackedListStore(dblp_index)
    keyword = dblp_index.inverted.keywords()[0]
    packed = store.get(keyword)
    assert bool(packed) == (len(packed) > 0)
    assert list(iter(packed)) == packed.labels
    if len(packed):
        assert packed[0] is packed.labels[0]


def test_all_algorithms_accept_packed_input(dblp_index):
    """Every SLCA variant gives identical answers on packed vs plain lists."""
    store = PackedListStore(dblp_index)
    terms = ["database", "xml", "query"]
    present = [t for t in terms if dblp_index.has_keyword(t)]
    assert len(present) >= 2
    packed_lists = [store.get(t) for t in present]
    plain_lists = [
        [p.dewey for p in dblp_index.inverted_list(t)] for t in present
    ]
    for algorithm in ALL_SLCA:
        assert algorithm(packed_lists) == algorithm(plain_lists), algorithm


def test_rebuilt_after_index_update():
    tree = parse(
        "<bib><author><name>ann</name><publications>"
        "<article><title>xml search</title><year>2001</year></article>"
        "</publications></author></bib>"
    )
    index = build_document_index(tree)
    store = PackedListStore(index)
    before = store.get("xml")
    assert len(before) == 1
    append_partition(
        index,
        (
            "author",
            None,
            [
                ("name", "bob"),
                (
                    "publications",
                    None,
                    [("article", None, [("title", "xml views"), ("year", "2002")])],
                ),
            ],
        ),
    )
    after = store.get("xml")
    assert after is not before
    assert len(after) == 2
    assert after.labels == [
        p.dewey for p in index.inverted.get("xml")
    ]


def test_engine_slca_uses_packed_store(figure1_index):
    engine = XRefine(figure1_index, cache_size=0)
    assert len(engine.packed) == 0
    engine.slca_search("database 2003")
    assert len(engine.packed) == 2
    # Second query reuses the same packed objects.
    packed = engine.packed.get("database")
    engine.slca_search("database 2003", algorithm="stack")
    assert engine.packed.get("database") is packed
