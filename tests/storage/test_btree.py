"""B+ tree tests: model-based fuzzing plus structural invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import BPlusTree

keys = st.binary(min_size=1, max_size=6)


def make_tree(pairs, order=4):
    tree = BPlusTree(order=order)
    for key, value in pairs:
        tree.insert(key, value)
    return tree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(b"x") is None
        assert tree.first_key() is None

    def test_insert_get(self):
        tree = make_tree([(b"a", 1), (b"b", 2)])
        assert tree.get(b"a") == 1
        assert tree.get(b"b") == 2

    def test_overwrite(self):
        tree = make_tree([(b"a", 1), (b"a", 2)])
        assert tree.get(b"a") == 2
        assert len(tree) == 1

    def test_contains(self):
        tree = make_tree([(b"a", None)])
        assert b"a" in tree
        assert b"b" not in tree

    def test_contains_none_value(self):
        """A stored None value must still count as present."""
        tree = make_tree([(b"k", None)])
        assert b"k" in tree

    def test_non_bytes_key_rejected(self):
        with pytest.raises(StorageError):
            BPlusTree().insert("text", 1)

    def test_order_too_small_rejected(self):
        with pytest.raises(StorageError):
            BPlusTree(order=2)

    def test_delete(self):
        tree = make_tree([(b"a", 1), (b"b", 2)])
        assert tree.delete(b"a") is True
        assert tree.get(b"a") is None
        assert len(tree) == 1

    def test_delete_missing(self):
        assert make_tree([(b"a", 1)]).delete(b"zz") is False


class TestIteration:
    def test_items_sorted(self):
        data = {bytes([b]): b for b in (5, 1, 9, 3, 7)}
        tree = make_tree(data.items())
        assert [k for k, _ in tree.items()] == sorted(data)

    def test_range_half_open(self):
        tree = make_tree((bytes([b]), b) for b in range(10))
        got = [k for k, _ in tree.range(bytes([3]), bytes([7]))]
        assert got == [bytes([b]) for b in range(3, 7)]

    def test_range_open_ends(self):
        tree = make_tree((bytes([b]), b) for b in range(5))
        assert len(list(tree.range())) == 5
        assert len(list(tree.range(low=bytes([3])))) == 2
        assert len(list(tree.range(high=bytes([3])))) == 3

    def test_range_missing_bounds(self):
        tree = make_tree([(bytes([2]), 0), (bytes([6]), 0)])
        got = [k for k, _ in tree.range(bytes([1]), bytes([7]))]
        assert got == [bytes([2]), bytes([6])]


class TestSplitsAndMerges:
    def test_many_inserts_stay_valid(self):
        tree = BPlusTree(order=4)
        for i in range(500):
            tree.insert(f"{i:05d}".encode(), i)
            if i % 50 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == 500

    def test_reverse_inserts(self):
        tree = BPlusTree(order=4)
        for i in reversed(range(300)):
            tree.insert(f"{i:05d}".encode(), i)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == [
            f"{i:05d}".encode() for i in range(300)
        ]

    def test_delete_everything(self):
        tree = BPlusTree(order=4)
        keys_ = [f"{i:04d}".encode() for i in range(200)]
        for key in keys_:
            tree.insert(key, None)
        rng = random.Random(1)
        rng.shuffle(keys_)
        for i, key in enumerate(keys_):
            assert tree.delete(key)
            if i % 25 == 0:
                tree.check_invariants()
        assert len(tree) == 0
        tree.check_invariants()

    def test_interleaved_random_ops(self):
        rng = random.Random(42)
        tree = BPlusTree(order=4)
        model = {}
        for step in range(3000):
            key = bytes([rng.randrange(64)])
            if rng.random() < 0.6:
                value = step
                tree.insert(key, value)
                model[key] = value
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
            if step % 500 == 0:
                tree.check_invariants()
        assert dict(tree.items()) == model
        tree.check_invariants()


class TestBulkLoad:
    def test_bulk_load(self):
        pairs = [(f"{i:03d}".encode(), i) for i in range(100)]
        tree = BPlusTree.bulk_load(pairs, order=8)
        tree.check_invariants()
        assert list(tree.items()) == pairs

    def test_bulk_load_rejects_unsorted(self):
        with pytest.raises(StorageError):
            BPlusTree.bulk_load([(b"b", 1), (b"a", 2)])

    def test_bulk_load_rejects_duplicates(self):
        with pytest.raises(StorageError):
            BPlusTree.bulk_load([(b"a", 1), (b"a", 2)])

    @pytest.mark.parametrize("order", [4, 8, 64, 128])
    @pytest.mark.parametrize(
        "size", [0, 1, 2, 3, 5, 16, 17, 100, 381, 1000]
    )
    def test_bulk_load_invariants_across_sizes(self, order, size):
        """Bottom-up packing must honor fill invariants at every size.

        The trailing-node fix-ups (merge / even redistribution) are the
        delicate part; the size sweep crosses leaf and internal level
        boundaries for every order.
        """
        pairs = [(b"k%06d" % i, i) for i in range(size)]
        tree = BPlusTree.bulk_load(pairs, order=order)
        tree.check_invariants()
        assert list(tree.items()) == pairs
        assert len(tree) == size

    def test_bulk_loaded_tree_stays_mutable(self):
        pairs = [(b"k%04d" % i, i) for i in range(500)]
        tree = BPlusTree.bulk_load(pairs, order=8)
        for i in range(0, 500, 3):
            tree.insert(b"x%04d" % i, i)
        for i in range(0, 500, 7):
            assert tree.delete(b"k%04d" % i)
        tree.check_invariants()
        expected = dict(pairs)
        for i in range(0, 500, 3):
            expected[b"x%04d" % i] = i
        for i in range(0, 500, 7):
            del expected[b"k%04d" % i]
        assert dict(tree.items()) == expected

    def test_bulk_load_accepts_generator(self):
        tree = BPlusTree.bulk_load(
            ((b"%03d" % i, i) for i in range(50)), order=4
        )
        tree.check_invariants()
        assert len(tree) == 50


class TestHypothesis:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(keys, st.integers()), max_size=120))
    def test_matches_dict_model(self, pairs):
        tree = BPlusTree(order=4)
        model = {}
        for key, value in pairs:
            tree.insert(key, value)
            model[key] = value
        assert dict(tree.items()) == model
        assert [k for k, _ in tree.items()] == sorted(model)
        tree.check_invariants()

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(keys, st.booleans()), max_size=150),
    )
    def test_insert_delete_mix(self, operations):
        tree = BPlusTree(order=4)
        model = {}
        for key, is_insert in operations:
            if is_insert:
                tree.insert(key, 0)
                model[key] = 0
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        tree.check_invariants()
        assert set(k for k, _ in tree.items()) == set(model)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(keys, min_size=1, max_size=80), keys, keys)
    def test_range_matches_model(self, inserted, low, high):
        tree = BPlusTree(order=4)
        for key in inserted:
            tree.insert(key, None)
        lo, hi = min(low, high), max(low, high)
        expected = sorted({k for k in inserted if lo <= k < hi})
        assert [k for k, _ in tree.range(lo, hi)] == expected
