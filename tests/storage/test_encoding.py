"""Tests for order-preserving key encoding and posting-list codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import KeyEncodingError
from repro.storage import (
    decode_dewey_list,
    decode_key,
    decode_uvarint,
    encode_dewey_list,
    encode_key,
    encode_uvarint,
    key_prefix_upper_bound,
)

key_parts = st.lists(
    st.one_of(
        st.text(max_size=8),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    ),
    max_size=4,
)


class TestUvarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 1 << 20, 1 << 62])
    def test_roundtrip(self, value):
        data = encode_uvarint(value)
        decoded, offset = decode_uvarint(data)
        assert decoded == value
        assert offset == len(data)

    def test_negative_rejected(self):
        with pytest.raises(KeyEncodingError):
            encode_uvarint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(KeyEncodingError):
            decode_uvarint(b"\x80")

    def test_small_values_one_byte(self):
        assert len(encode_uvarint(127)) == 1
        assert len(encode_uvarint(128)) == 2

    @given(st.integers(min_value=0, max_value=(1 << 63) - 1))
    def test_roundtrip_property(self, value):
        assert decode_uvarint(encode_uvarint(value))[0] == value


class TestKeyEncoding:
    def test_string_roundtrip(self):
        assert decode_key(encode_key(("hello",))) == ("hello",)

    def test_mixed_roundtrip(self):
        key = ("word", 42, "tail")
        assert decode_key(encode_key(key)) == key

    def test_embedded_nul(self):
        key = ("a\x00b",)
        assert decode_key(encode_key(key)) == key

    def test_unicode(self):
        key = ("prüfung", 1)
        assert decode_key(encode_key(key)) == key

    def test_rejects_negative_int(self):
        with pytest.raises(KeyEncodingError):
            encode_key((-1,))

    def test_rejects_bool(self):
        with pytest.raises(KeyEncodingError):
            encode_key((True,))

    def test_rejects_float(self):
        with pytest.raises(KeyEncodingError):
            encode_key((1.5,))

    @given(key_parts)
    def test_roundtrip_property(self, parts):
        parts = tuple(parts)
        assert decode_key(encode_key(parts)) == parts

    @given(key_parts, key_parts)
    def test_order_preserved(self, a, b):
        """Byte order must equal tuple order for same-shaped tuples."""
        a, b = tuple(a), tuple(b)
        shapes_match = len(a) == len(b) and all(
            type(x) is type(y) for x, y in zip(a, b)
        )
        if not shapes_match:
            return
        assert (encode_key(a) < encode_key(b)) == (a < b)

    @given(key_parts, key_parts)
    def test_prefix_sorts_first(self, prefix, extra):
        prefix, extra = tuple(prefix), tuple(extra)
        if not extra:
            return
        assert encode_key(prefix) <= encode_key(prefix + extra)


class TestPrefixUpperBound:
    def test_simple(self):
        prefix = encode_key(("abc",))
        hi = key_prefix_upper_bound(prefix)
        assert prefix < hi

    def test_extension_within_bound(self):
        prefix = encode_key(("abc",))
        hi = key_prefix_upper_bound(prefix)
        assert prefix <= encode_key(("abc", 5)) < hi

    def test_sibling_outside_bound(self):
        prefix = encode_key(("abc",))
        hi = key_prefix_upper_bound(prefix)
        assert encode_key(("abd",)) >= hi

    def test_all_ff(self):
        assert key_prefix_upper_bound(b"\xff\xff") is None


class TestDeweyListCodec:
    def test_roundtrip(self):
        labels = [(0,), (0, 0), (0, 0, 3), (0, 1), (0, 1, 0, 2)]
        assert decode_dewey_list(encode_dewey_list(labels)) == labels

    def test_empty(self):
        assert decode_dewey_list(encode_dewey_list([])) == []

    def test_compression_wins_on_dense_lists(self):
        labels = [(0, 5, i) for i in range(1000)]
        encoded = encode_dewey_list(labels)
        assert len(encoded) < 4 * len(labels)

    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=300), min_size=1, max_size=6
            ).map(tuple),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, labels):
        assert decode_dewey_list(encode_dewey_list(labels)) == labels
