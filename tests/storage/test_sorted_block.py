"""Columnar sorted-KV block and its copy-on-write overlay store.

``SortedKVBlock`` is the zero-copy read side of the frozen index
snapshot format; ``CowKVStore`` layers a mutable overlay on top so a
frozen index can diverge in memory while the mapped bytes stay valid.
"""

import random

import pytest

from repro.errors import KeyEncodingError, StorageError
from repro.storage import CowKVStore, SortedKVBlock, encode_sorted_kv_block


def make_block(pairs):
    return SortedKVBlock(encode_sorted_kv_block(pairs))


SAMPLE = [
    (b"alpha", b"1"),
    (b"beta", b""),
    (b"delta", b"four"),
    (b"gamma", b"33"),
]


class TestSortedKVBlock:
    def test_round_trip(self):
        block = make_block(SAMPLE)
        assert len(block) == 4
        assert list(block.items()) == SAMPLE
        assert list(block.keys()) == [k for k, _ in SAMPLE]

    def test_empty_block(self):
        block = make_block([])
        assert len(block) == 0
        assert list(block.items()) == []
        assert block.get(b"anything") is None
        assert len(block.value_region()) == 0
        assert block.value_spans() == []

    def test_get_and_contains(self):
        block = make_block(SAMPLE)
        assert bytes(block.get(b"delta")) == b"four"
        assert bytes(block.get(b"beta")) == b""
        assert block.get(b"missing") is None
        assert block.get(b"missing", b"dflt") == b"dflt"
        assert b"alpha" in block
        assert b"omega" not in block

    def test_values_are_memoryviews(self):
        block = make_block(SAMPLE)
        assert isinstance(block.get(b"alpha"), memoryview)

    def test_range(self):
        block = make_block(SAMPLE)
        got = [k for k, _ in block.range(b"beta", b"gamma")]
        assert got == [b"beta", b"delta"]
        assert [k for k, _ in block.range()] == [k for k, _ in SAMPLE]
        assert [k for k, _ in block.range(low=b"c")] == [b"delta", b"gamma"]
        assert [k for k, _ in block.range(high=b"c")] == [b"alpha", b"beta"]

    def test_value_region_and_spans(self):
        block = make_block(SAMPLE)
        region = bytes(block.value_region())
        assert region == b"".join(v for _, v in SAMPLE)
        rebuilt = {
            key: region[offset : offset + length]
            for key, offset, length in block.value_spans()
        }
        assert rebuilt == dict(SAMPLE)

    def test_encoder_rejects_unsorted(self):
        with pytest.raises(KeyEncodingError):
            encode_sorted_kv_block([(b"b", b""), (b"a", b"")])

    def test_encoder_rejects_duplicates(self):
        with pytest.raises(KeyEncodingError):
            encode_sorted_kv_block([(b"a", b"1"), (b"a", b"2")])

    def test_encoder_accepts_generator(self):
        block = make_block((b"%03d" % i, b"v%d" % i) for i in range(40))
        assert len(block) == 40
        assert bytes(block.get(b"017")) == b"v17"

    def test_truncated_blob_rejected(self):
        blob = encode_sorted_kv_block(SAMPLE)
        for cut in (4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(KeyEncodingError):
                SortedKVBlock(blob[:cut])

    def test_binary_search_large(self):
        pairs = [(b"k%05d" % i, b"%d" % (i * i)) for i in range(2000)]
        block = make_block(pairs)
        for i in (0, 1, 999, 1998, 1999):
            assert bytes(block.get(b"k%05d" % i)) == b"%d" % (i * i)
        assert block.get(b"k99999") is None


class TestCowKVStore:
    def make(self, pairs=SAMPLE):
        return CowKVStore(make_block(pairs))

    def test_pristine_reads(self):
        store = self.make()
        assert store.is_pristine()
        assert len(store) == 4
        assert store.get(b"delta") == b"four"
        assert isinstance(store.get(b"delta"), bytes)
        assert b"alpha" in store
        assert list(store.items()) == SAMPLE

    def test_contiguous_region_only_while_pristine(self):
        store = self.make()
        region, spans = store.contiguous_region()
        assert bytes(region) == b"".join(v for _, v in SAMPLE)
        assert len(spans) == 4
        store.put(b"zeta", b"new")
        assert store.contiguous_region() is None
        assert not store.is_pristine()

    def test_overlay_shadows_base(self):
        store = self.make()
        store.put(b"alpha", b"overridden")
        assert store.get(b"alpha") == b"overridden"
        assert len(store) == 4
        assert dict(store.items())[b"alpha"] == b"overridden"

    def test_insert_new_key(self):
        store = self.make()
        store.put(b"epsilon", b"5")
        assert len(store) == 5
        assert [k for k in store.keys()] == [
            b"alpha", b"beta", b"delta", b"epsilon", b"gamma",
        ]

    def test_delete_base_key(self):
        store = self.make()
        assert store.delete(b"beta") is True
        assert b"beta" not in store
        assert store.get(b"beta") is None
        assert len(store) == 3
        assert store.delete(b"beta") is False

    def test_delete_overlay_key(self):
        store = self.make()
        store.put(b"new", b"x")
        assert store.delete(b"new") is True
        assert b"new" not in store
        assert len(store) == 4

    def test_delete_shadowing_key_removes_base_view_too(self):
        store = self.make()
        store.put(b"alpha", b"overridden")
        assert store.delete(b"alpha") is True
        assert b"alpha" not in store
        assert len(store) == 3

    def test_resurrect_deleted_base_key(self):
        store = self.make()
        store.delete(b"alpha")
        store.put(b"alpha", b"back")
        assert store.get(b"alpha") == b"back"
        assert len(store) == 4

    def test_delete_missing_key(self):
        store = self.make()
        assert store.delete(b"nope") is False
        assert len(store) == 4

    def test_base_bytes_never_change(self):
        blob = encode_sorted_kv_block(SAMPLE)
        snapshot = bytes(blob)
        store = CowKVStore(SortedKVBlock(blob))
        store.put(b"alpha", b"clobbered")
        store.delete(b"gamma")
        store.put(b"zzz", b"tail")
        assert blob == snapshot

    def test_range_merges_base_and_overlay(self):
        store = self.make()
        store.put(b"carol", b"c")
        store.delete(b"delta")
        got = [k for k, _ in store.range(b"beta", b"gamma")]
        assert got == [b"beta", b"carol"]

    def test_scan_prefix(self):
        store = self.make([(b"ab:1", b"x"), (b"ab:2", b"y"), (b"ac:1", b"z")])
        store.put(b"ab:3", b"w")
        store.delete(b"ab:1")
        got = [k for k, _ in store.scan_prefix(b"ab:")]
        assert got == [b"ab:2", b"ab:3"]

    def test_load_sorted_unsupported(self):
        with pytest.raises(StorageError):
            self.make().load_sorted([(b"a", b"b")])

    def test_randomized_vs_dict_model(self):
        rng = random.Random(99)
        base_pairs = [(b"k%04d" % i, b"v%d" % i) for i in range(0, 400, 2)]
        store = CowKVStore(make_block(base_pairs))
        model = dict(base_pairs)
        for step in range(3000):
            key = b"k%04d" % rng.randrange(400)
            if rng.random() < 0.55:
                value = b"s%d" % step
                store.put(key, value)
                model[key] = value
            else:
                assert store.delete(key) == (key in model)
                model.pop(key, None)
            if step % 500 == 0:
                assert len(store) == len(model)
        assert len(store) == len(model)
        assert dict(store.items()) == model
        assert list(store.keys()) == sorted(model)
        lo, hi = b"k0100", b"k0300"
        expected = sorted(
            (k, v) for k, v in model.items() if lo <= k < hi
        )
        assert list(store.range(lo, hi)) == expected
