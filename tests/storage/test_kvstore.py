"""Tests for the Berkeley-DB-style key-value store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageClosedError, StorageError
from repro.storage import FileKVStore, MemoryKVStore, encode_key


class TestMemoryStore:
    def test_put_get(self):
        store = MemoryKVStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_get_default(self):
        assert MemoryKVStore().get(b"k", b"d") == b"d"

    def test_delete(self):
        store = MemoryKVStore()
        store.put(b"k", b"v")
        assert store.delete(b"k") is True
        assert store.delete(b"k") is False

    def test_len_contains(self):
        store = MemoryKVStore()
        store.put(b"a", b"")
        store.put(b"b", b"")
        assert len(store) == 2
        assert b"a" in store and b"c" not in store

    def test_items_sorted(self):
        store = MemoryKVStore()
        for key in (b"c", b"a", b"b"):
            store.put(key, key)
        assert [k for k, _ in store.items()] == [b"a", b"b", b"c"]

    def test_range(self):
        store = MemoryKVStore()
        for b in range(10):
            store.put(bytes([b]), b"")
        assert len(list(store.range(bytes([2]), bytes([5])))) == 3

    def test_scan_prefix(self):
        store = MemoryKVStore()
        store.put(encode_key(("apple", 1)), b"1")
        store.put(encode_key(("apple", 2)), b"2")
        store.put(encode_key(("apricot", 1)), b"3")
        hits = list(store.scan_prefix(encode_key(("apple",))))
        assert len(hits) == 2

    def test_rejects_non_bytes(self):
        store = MemoryKVStore()
        with pytest.raises(StorageError):
            store.put("str", b"v")
        with pytest.raises(StorageError):
            store.put(b"k", 42)

    def test_closed_store(self):
        store = MemoryKVStore()
        store.close()
        with pytest.raises(StorageClosedError):
            store.get(b"k")

    def test_context_manager(self):
        with MemoryKVStore() as store:
            store.put(b"k", b"v")
        with pytest.raises(StorageClosedError):
            store.get(b"k")


class TestFileStore:
    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "store.db"
        with FileKVStore(path) as store:
            store.put(b"alpha", b"1")
            store.put(b"beta", b"2")
        with FileKVStore(path) as store:
            assert store.get(b"alpha") == b"1"
            assert store.get(b"beta") == b"2"
            assert len(store) == 2

    def test_delete_persists(self, tmp_path):
        path = tmp_path / "store.db"
        with FileKVStore(path) as store:
            store.put(b"a", b"1")
            store.put(b"b", b"2")
            store.delete(b"a")
        with FileKVStore(path) as store:
            assert b"a" not in store
            assert store.get(b"b") == b"2"

    def test_multiple_flushes_latest_wins(self, tmp_path):
        path = tmp_path / "store.db"
        with FileKVStore(path) as store:
            store.put(b"k", b"old")
            store.flush()
            store.put(b"k", b"new")
            store.flush()
        with FileKVStore(path) as store:
            assert store.get(b"k") == b"new"

    def test_empty_store_reopens(self, tmp_path):
        path = tmp_path / "store.db"
        with FileKVStore(path):
            pass
        with FileKVStore(path) as store:
            assert len(store) == 0

    def test_large_values(self, tmp_path):
        path = tmp_path / "store.db"
        big = bytes(range(256)) * 100
        with FileKVStore(path) as store:
            store.put(b"big", big)
        with FileKVStore(path) as store:
            assert store.get(b"big") == big

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.dictionaries(
            st.binary(min_size=1, max_size=8),
            st.binary(max_size=16),
            max_size=40,
        )
    )
    def test_roundtrip_property(self, tmp_path_factory, data):
        path = tmp_path_factory.mktemp("kv") / "store.db"
        with FileKVStore(path) as store:
            for key, value in data.items():
                store.put(key, value)
        with FileKVStore(path) as store:
            assert dict(store.items()) == data
