"""Tests for the fixed-size page file."""

import pytest

from repro.errors import PageError
from repro.storage import Pager


class TestLifecycle:
    def test_create(self, tmp_path):
        with Pager(tmp_path / "p.db", create=True) as pager:
            assert pager.page_count == 1  # header only

    def test_missing_without_create(self, tmp_path):
        with pytest.raises(PageError):
            Pager(tmp_path / "missing.db")

    def test_reopen_preserves_header(self, tmp_path):
        path = tmp_path / "p.db"
        with Pager(path, page_size=1024, create=True) as pager:
            pager.allocate(3)
        with Pager(path) as pager:
            assert pager.page_size == 1024
            assert pager.page_count == 4

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"not a page file " * 300)
        with pytest.raises(PageError):
            Pager(path)

    def test_closed_operations_fail(self, tmp_path):
        pager = Pager(tmp_path / "p.db", create=True)
        pager.close()
        with pytest.raises(PageError):
            pager.allocate()


class TestPageIO:
    def test_write_read(self, tmp_path):
        with Pager(tmp_path / "p.db", create=True) as pager:
            page = pager.allocate()
            pager.write_page(page, b"hello")
            assert pager.read_page(page).rstrip(b"\x00") == b"hello"

    def test_page_zero_protected(self, tmp_path):
        with Pager(tmp_path / "p.db", create=True) as pager:
            with pytest.raises(PageError):
                pager.write_page(0, b"x")
            with pytest.raises(PageError):
                pager.read_page(0)

    def test_out_of_range(self, tmp_path):
        with Pager(tmp_path / "p.db", create=True) as pager:
            with pytest.raises(PageError):
                pager.read_page(5)

    def test_oversized_write_rejected(self, tmp_path):
        with Pager(tmp_path / "p.db", page_size=256, create=True) as pager:
            page = pager.allocate()
            with pytest.raises(PageError):
                pager.write_page(page, b"x" * 257)


class TestStreams:
    def test_roundtrip_small(self, tmp_path):
        with Pager(tmp_path / "p.db", create=True) as pager:
            first, run = pager.write_stream(b"tiny")
            assert pager.read_stream(first, run) == b"tiny"

    def test_roundtrip_multi_page(self, tmp_path):
        payload = bytes(range(256)) * 64  # 16 KiB > several pages
        with Pager(tmp_path / "p.db", page_size=1024, create=True) as pager:
            first, run = pager.write_stream(payload)
            assert run > 1
            assert pager.read_stream(first, run) == payload

    def test_roundtrip_empty(self, tmp_path):
        with Pager(tmp_path / "p.db", create=True) as pager:
            first, run = pager.write_stream(b"")
            assert pager.read_stream(first, run) == b""

    def test_streams_survive_reopen(self, tmp_path):
        path = tmp_path / "p.db"
        with Pager(path, create=True) as pager:
            first, run = pager.write_stream(b"persistent data")
        with Pager(path) as pager:
            assert pager.read_stream(first, run) == b"persistent data"
