"""Tests for the synthetic DBLP/Baseball generators and scaling."""

import pytest

from repro.datasets import (
    BaseballConfig,
    DBLPConfig,
    authors_for_nodes,
    corpus_for_nodes,
    generate_baseball,
    generate_dblp,
    scaled_series,
    scaled_subtree,
)
from repro.datasets.dblp import rare_token
from repro.datasets.scaling import RARE_TOKEN_PERIOD
from repro.errors import DatasetError
from repro.index import build_document_index
from repro.xmltree import parse, serialize


class TestDBLP:
    def test_structure(self, dblp_tree):
        assert dblp_tree.root.tag == "bib"
        for author in dblp_tree.partitions():
            assert author.tag == "author"
            tags = [child.tag for child in author.children]
            assert "name" in tags
            assert "publications" in tags

    def test_partition_count_matches_config(self):
        tree = generate_dblp(num_authors=37, seed=1)
        assert len(tree.partitions()) == 37

    def test_deterministic(self):
        a = generate_dblp(num_authors=25, seed=9)
        b = generate_dblp(num_authors=25, seed=9)
        assert serialize(a) == serialize(b)

    def test_seed_changes_output(self):
        a = generate_dblp(num_authors=25, seed=9)
        b = generate_dblp(num_authors=25, seed=10)
        assert serialize(a) != serialize(b)

    def test_publication_kinds_present(self, dblp_tree):
        tags = {node.tag for node in dblp_tree.iter_nodes()}
        assert {"inproceedings", "article", "title", "year"} <= tags

    def test_config_validation(self):
        with pytest.raises(DatasetError):
            generate_dblp(num_authors=0)
        with pytest.raises(DatasetError):
            generate_dblp(min_pubs=5, max_pubs=2)

    def test_config_object_and_overrides_exclusive(self):
        with pytest.raises(DatasetError):
            generate_dblp(DBLPConfig(), num_authors=5)

    def test_roundtrips_through_parser(self):
        tree = generate_dblp(num_authors=10, seed=3)
        again = parse(serialize(tree))
        assert len(again) == len(tree)

    def test_skewed_list_lengths(self, dblp_index):
        """Some keywords must be much more frequent than others."""
        lengths = sorted(
            dblp_index.inverted.list_length(k)
            for k in dblp_index.inverted.keywords()
        )
        assert lengths[-1] >= 5 * max(1, lengths[0])


class TestBaseball:
    def test_structure(self, baseball_tree):
        assert baseball_tree.root.tag == "season"
        leagues = [
            child for child in baseball_tree.root.children
            if child.tag == "league"
        ]
        assert len(leagues) == 2

    def test_small_partition_fanout(self, baseball_tree):
        # Root children: year + 2 leagues -> few partitions, by design.
        assert len(baseball_tree.partitions()) <= 4

    def test_players_have_statistics(self, baseball_tree):
        players = [
            node for node in baseball_tree.iter_nodes()
            if node.tag == "player"
        ]
        assert players
        for player in players[:10]:
            tags = {child.tag for child in player.children}
            assert {"surname", "position", "statistics"} <= tags

    def test_deterministic(self):
        a = generate_baseball(seed=2)
        b = generate_baseball(seed=2)
        assert serialize(a) == serialize(b)

    def test_config_validation(self):
        with pytest.raises(DatasetError):
            generate_baseball(players_per_team=0)
        with pytest.raises(DatasetError):
            generate_baseball(BaseballConfig(), seed=2)


class TestScaling:
    def test_fraction_bounds(self, dblp_tree):
        with pytest.raises(DatasetError):
            scaled_subtree(dblp_tree, 0.0)
        with pytest.raises(DatasetError):
            scaled_subtree(dblp_tree, 1.5)

    def test_full_fraction_identity(self, dblp_tree):
        scaled = scaled_subtree(dblp_tree, 1.0)
        assert len(scaled) == len(dblp_tree)

    def test_partition_prefix(self, dblp_tree):
        scaled = scaled_subtree(dblp_tree, 0.5)
        expected = max(1, round(len(dblp_tree.partitions()) * 0.5))
        assert len(scaled.partitions()) == expected

    def test_scaled_is_valid_document(self, dblp_tree):
        scaled = scaled_subtree(dblp_tree, 0.2)
        index = build_document_index(scaled)
        assert index.inverted.vocabulary_size() > 0

    def test_series_monotone(self, dblp_tree):
        series = scaled_series(dblp_tree)
        sizes = [len(tree) for _, tree in series]
        assert sizes == sorted(sizes)
        assert [f for f, _ in series] == [0.2, 0.4, 0.6, 0.8, 1.0]


class TestCorpusForNodes:
    def test_lands_near_the_target(self):
        target = 8_000
        tree = corpus_for_nodes(target, seed=7)
        assert abs(len(tree) - target) / target < 0.10

    def test_deterministic(self):
        a = corpus_for_nodes(5_000, seed=3)
        b = corpus_for_nodes(5_000, seed=3)
        assert serialize(a) == serialize(b)

    def test_target_validation(self):
        with pytest.raises(DatasetError):
            authors_for_nodes(0)
        with pytest.raises(DatasetError):
            corpus_for_nodes(-5)

    def test_rare_tokens_planted_every_period(self):
        tree = corpus_for_nodes(5_000, seed=7)
        planted = [
            node.text
            for node in tree.iter_nodes()
            if node.tag == "id"
        ]
        authors = len(tree.partitions())
        expected = [
            rare_token(ordinal)
            for ordinal in range(0, authors, RARE_TOKEN_PERIOD)
        ]
        assert planted == expected

    def test_rare_tokens_are_a_prefix_across_sizes(self):
        """Same seed => a smaller corpus's rare tokens are a prefix of
        a larger one's, so one query pool serves every sweep point."""
        small = corpus_for_nodes(3_000, seed=7)
        large = corpus_for_nodes(9_000, seed=7)

        def tokens(tree):
            return [
                node.text for node in tree.iter_nodes() if node.tag == "id"
            ]

        small_tokens, large_tokens = tokens(small), tokens(large)
        assert len(small_tokens) < len(large_tokens)
        assert large_tokens[: len(small_tokens)] == small_tokens

    def test_default_generator_stays_token_free(self):
        """``rare_token_period`` defaults off: plain ``generate_dblp``
        output is byte-identical to what it produced before planting
        existed."""
        tree = generate_dblp(num_authors=20, seed=5)
        assert not any(node.tag == "id" for node in tree.iter_nodes())
