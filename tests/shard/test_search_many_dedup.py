"""``search_many`` dispatches each unique query exactly once.

The batch API deduplicates on normalized terms *before* dispatch, so
the guarantee must hold even with the LRU result cache disabled — and
on the parallel path, where each duplicate would otherwise fan out
over the pool again.  Counted by wrapping the refinement entry points
the engine actually calls.
"""

from __future__ import annotations

import pytest

from repro import XRefine
from repro.verify.oracle import response_fingerprint
from repro.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def skewed_log(dblp_index):
    generator = WorkloadGenerator(dblp_index, seed=29)
    pool = [
        list(generator.refinable_query().query),
        list(generator.clean_query().query),
        list(generator.refinable_query().query),
    ]
    # 9 requests over 3 unique queries, duplicates interleaved.
    return pool, [pool[i] for i in (0, 1, 0, 2, 1, 0, 2, 2, 1)]


class TestSearchManyDedup:
    def test_serial_executes_once_per_unique_query(
        self, dblp_index, skewed_log, monkeypatch
    ):
        import repro.core.engine as engine_module

        pool, log = skewed_log
        calls = []
        real = engine_module.partition_refine

        def counting(index, query, **kwargs):
            calls.append(tuple(query))
            return real(index, query, **kwargs)

        monkeypatch.setattr(engine_module, "partition_refine", counting)
        engine = XRefine(dblp_index, cache_size=0)
        # Pin the algorithm so every unique query hits the counted
        # kernel (with "auto" the planner may route some to SLE).
        responses = engine.search_many(log, k=2, algorithm="partition")

        assert len(responses) == len(log)
        assert len(calls) == len(pool)
        assert len(set(calls)) == len(pool)
        # Duplicate requests get mutation-isolated copies of the one
        # evaluated response (same answer, distinct objects).
        fingerprint = response_fingerprint
        assert responses[0] is not responses[2]
        assert fingerprint(responses[0]) == fingerprint(responses[2])
        assert fingerprint(responses[0]) == fingerprint(responses[5])
        assert fingerprint(responses[3]) == fingerprint(responses[6])

    def test_duplicate_responses_are_mutation_isolated(
        self, dblp_index, skewed_log
    ):
        """Regression: one caller mutating a duplicate's result lists
        must not corrupt any other position's answer."""
        _, log = skewed_log
        engine = XRefine(dblp_index, cache_size=0)
        responses = engine.search_many(log, k=2)
        victim, twin = responses[0], responses[2]
        reference = response_fingerprint(twin)
        # Trash every caller-facing list on the duplicate position.
        victim.refinements[0].slcas.append("garbage")
        victim.refinements.clear()
        victim.original_results.append("garbage")
        victim.candidates.clear()
        assert response_fingerprint(twin) == reference

    def test_parallel_executes_once_per_unique_query(
        self, dblp_index, skewed_log, monkeypatch
    ):
        import repro.shard.refine as refine_module

        pool, log = skewed_log
        calls = []
        real = refine_module.sharded_partition_refine

        def counting(index, query, **kwargs):
            calls.append(tuple(query))
            return real(index, query, **kwargs)

        monkeypatch.setattr(
            refine_module, "sharded_partition_refine", counting
        )
        with XRefine(dblp_index, cache_size=0, parallelism=2) as engine:
            responses = engine.search_many(log, k=2, algorithm="partition")

        assert len(responses) == len(log)
        assert len(calls) == len(pool)
        assert len(set(calls)) == len(pool)

    def test_warm_cache_still_returns_one_response_per_request(
        self, dblp_index, skewed_log
    ):
        _, log = skewed_log
        engine = XRefine(dblp_index)
        first = engine.search_many(log, k=2)
        second = engine.search_many(log, k=2)
        assert len(first) == len(second) == len(log)
        for a, b in zip(first, second):
            # Served from the LRU on the second batch (same answer);
            # duplicate positions are per-batch copies of the hit.
            assert response_fingerprint(a) == response_fingerprint(b)
