"""Sharded execution must be byte-identical to the serial engine.

The differential oracle already sweeps the in-process executor across
seeds; these tests pin the layers it cannot reach — real forked worker
processes (pickle transport, shared-memory reads, the cross-process
skip-bound mailbox) and the engine-facing ``parallelism`` plumbing —
against the serial answer with :func:`response_fingerprint`, which
covers every answer-bearing field of the response.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import XRefine
from repro.shard.pool import InProcessExecutor, ShardPool
from repro.shard.refine import sharded_partition_refine
from repro.verify.oracle import response_fingerprint
from repro.workload import WorkloadGenerator

fork_available = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the shard pool needs the fork start method",
)


@pytest.fixture(scope="module")
def query_mix(dblp_index):
    generator = WorkloadGenerator(dblp_index, seed=19)
    queries = []
    for position in range(8):
        if position % 2:
            queries.append(list(generator.clean_query().query))
        else:
            queries.append(list(generator.refinable_query().query))
    return queries


@pytest.fixture(scope="module")
def mined_rules(dblp_index, query_mix):
    # Direct sharded_partition_refine calls default to an empty rule
    # set; mine the engine's rules once so both sides see the same.
    engine = XRefine(dblp_index, cache_size=0)
    return [engine.mine_rules(query) for query in query_mix]


@pytest.fixture(scope="module")
def serial_fingerprints(dblp_index, query_mix):
    engine = XRefine(dblp_index, cache_size=0)
    return [
        response_fingerprint(engine.search(query, k=2))
        for query in query_mix
    ]


@fork_available
class TestRealProcessIdentity:
    def test_pool_matches_serial_across_shards_and_rounds(
        self, dblp_index, query_mix, mined_rules, serial_fingerprints
    ):
        with ShardPool(dblp_index, workers=2) as pool:
            for shards, rounds in ((2, 1), (4, 2)):
                for query, rules, expected in zip(
                    query_mix, mined_rules, serial_fingerprints
                ):
                    response = sharded_partition_refine(
                        dblp_index, query, rules=rules, k=2,
                        shards=shards, rounds=rounds, executor=pool,
                    )
                    assert response_fingerprint(response) == expected

    def test_engine_parallelism_matches_serial(
        self, dblp_index, query_mix, serial_fingerprints
    ):
        with XRefine(dblp_index, cache_size=0, parallelism=4) as engine:
            for query, expected in zip(query_mix, serial_fingerprints):
                assert (
                    response_fingerprint(engine.search(query, k=2))
                    == expected
                )


class TestInProcessIdentity:
    def test_bound_broadcast_does_not_leak_across_requests(
        self, dblp_index, query_mix, mined_rules, serial_fingerprints
    ):
        # One executor serving many requests back to back: the shared
        # skip bound is reset per fan-out, so a tight bound from an
        # earlier (selective) query must never prune a later one.
        executor = InProcessExecutor(dblp_index)
        for _ in range(2):
            for query, rules, expected in zip(
                query_mix, mined_rules, serial_fingerprints
            ):
                response = sharded_partition_refine(
                    dblp_index, query, rules=rules, k=2,
                    shards=3, rounds=2, executor=executor,
                )
                assert response_fingerprint(response) == expected
        assert executor._state.shared_bound.value == float("inf")

    def test_worker_memos_are_exercised_and_stay_correct(
        self, dblp_index, query_mix, mined_rules, serial_fingerprints
    ):
        # Repeat the same queries through one executor: the second pass
        # is served from the workers' cross-request DP/SLCA memos and
        # must still be byte-identical.
        executor = InProcessExecutor(dblp_index)
        state = executor._state
        for query, rules, expected in zip(
            query_mix, mined_rules, serial_fingerprints
        ):
            sharded_partition_refine(
                dblp_index, query, rules=rules, k=2,
                shards=2, executor=executor,
            )
        assert state._dp_memos and state._slca_memo
        for query, rules, expected in zip(
            query_mix, mined_rules, serial_fingerprints
        ):
            response = sharded_partition_refine(
                dblp_index, query, rules=rules, k=2,
                shards=2, executor=executor,
            )
            assert response_fingerprint(response) == expected
