"""Shared-memory segment lifecycle: attach, detach, unlink, recover.

The posting blob is the one OS-level resource the parallel layer owns;
these tests pin the full lifecycle — publication makes a segment
appear, reader detach never destroys it, owner close always does (also
after worker crashes), and a version bump re-publishes rather than
serving stale postings.  The session-wide no-leak fixture in
``tests/conftest.py`` backstops all of them.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import pytest

from repro import XRefine, build_document_index
from repro.datasets import generate_dblp
from repro.index import append_partition
from repro.shard.pool import ShardPool, ShardPoolBroken, ShardRuntime
from repro.shard.refine import sharded_partition_refine
from repro.shard.shm import SharedPostingBlob, live_segments
from repro.verify.oracle import response_fingerprint
from repro.workload import WorkloadGenerator

fork_available = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the shard pool needs the fork start method",
)


@pytest.fixture()
def small_index():
    return build_document_index(generate_dblp(num_authors=20, seed=3))


def refinable_query(index, seed=5):
    return list(WorkloadGenerator(index, seed=seed).refinable_query().query)


class TestBlobLifecycle:
    def test_publish_attach_detach_unlink(self, small_index):
        before = set(live_segments())
        blob = SharedPostingBlob.publish(small_index.inverted, 0)
        assert blob.name in live_segments()

        reader = SharedPostingBlob.attach(
            blob.name, blob.layout, blob.type_table, 0
        )
        keyword = next(iter(blob.layout))
        assert bytes(reader.payload(keyword)) == bytes(blob.payload(keyword))

        # A reader detaching must not destroy the owner's segment.
        reader.close()
        assert blob.name in live_segments()

        # The owner's close unlinks; both closes are idempotent.
        blob.close()
        blob.close()
        assert set(live_segments()) == before

    def test_decoded_lists_match_index(self, small_index):
        with SharedPostingBlob.publish(small_index.inverted, 0) as blob:
            reader = SharedPostingBlob.attach(
                blob.name, blob.layout, blob.type_table, 0
            )
            try:
                for keyword in list(blob.layout)[:20]:
                    direct = small_index.inverted.get(keyword)
                    shared = reader.decoded(keyword)
                    assert [p.dewey for p in shared] == [
                        p.dewey for p in direct
                    ]
            finally:
                reader.close()


@fork_available
class TestPoolLifecycle:
    def test_close_unlinks_segment(self, small_index):
        pool = ShardPool(small_index, workers=2)
        name = pool.segment_name
        assert name in live_segments()
        pool.close()
        assert name not in live_segments()
        pool.close()  # idempotent

    def test_run_after_close_raises(self, small_index):
        pool = ShardPool(small_index, workers=2)
        pool.close()
        with pytest.raises(ShardPoolBroken):
            pool.run([("phase1", None, [])])

    def test_killed_worker_breaks_pool_but_segment_is_unlinked(
        self, small_index
    ):
        pool = ShardPool(small_index, workers=2)
        name = pool.segment_name
        query = refinable_query(small_index)
        try:
            sharded_partition_refine(
                small_index, query, k=2, shards=2, executor=pool
            )
            for process in pool._processes:
                os.kill(process.pid, signal.SIGKILL)
            for process in pool._processes:
                process.join(timeout=5.0)
            with pytest.raises(ShardPoolBroken):
                sharded_partition_refine(
                    small_index, query, k=2, shards=2, executor=pool
                )
        finally:
            pool.close()
        assert name not in live_segments()

    def test_runtime_recovers_from_worker_crash(self, small_index):
        query = refinable_query(small_index)
        runtime = ShardRuntime(small_index, workers=2)
        try:
            baseline = response_fingerprint(
                sharded_partition_refine(
                    small_index, query, k=2, shards=2, executor=runtime
                )
            )
            first_pool = runtime.executor()
            first_name = first_pool.segment_name
            for process in first_pool._processes:
                os.kill(process.pid, signal.SIGKILL)
            for process in first_pool._processes:
                process.join(timeout=5.0)
            # The runtime retries once on a fresh pool, transparently.
            recovered = response_fingerprint(
                sharded_partition_refine(
                    small_index, query, k=2, shards=2, executor=runtime
                )
            )
            assert recovered == baseline
            second_pool = runtime.executor()
            assert second_pool is not first_pool
            # The broken pool's segment was unlinked during recovery.
            assert first_name not in live_segments()
            assert second_pool.segment_name in live_segments()
        finally:
            runtime.close()
        assert second_pool.segment_name not in live_segments()


@fork_available
class TestVersionLifecycle:
    def test_version_bump_republishes_before_serving(self, small_index):
        query = refinable_query(small_index)
        with XRefine(small_index, cache_size=0, parallelism=2) as engine:
            # Pinned to "partition" so the sharded pool is guaranteed to
            # spin up (with "auto" the planner may stay serial).
            engine.search(query, k=2, algorithm="partition")
            first_pool = engine._shard_runtime.executor()
            first_name = first_pool.segment_name
            assert first_pool.version == small_index.version

            append_partition(
                small_index,
                (
                    "author",
                    None,
                    [
                        ("name", "fresh writer"),
                        (
                            "publications",
                            None,
                            [("article", None, [("title", "online xml")])],
                        ),
                    ],
                ),
            )
            after = engine.search(query, k=2, algorithm="partition")
            second_pool = engine._shard_runtime.executor()
            # Stale pool torn down (segment unlinked), fresh one serves.
            assert second_pool is not first_pool
            assert second_pool.version == small_index.version
            assert first_name not in live_segments()

            serial = XRefine(small_index, cache_size=0).search(query, k=2)
            assert response_fingerprint(after) == response_fingerprint(serial)
