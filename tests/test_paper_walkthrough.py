"""End-to-end walkthrough of the paper's running examples.

Each test replays one numbered example or sample query from the paper
against a Figure-1-style document, asserting the behaviour the text
describes.  This file doubles as executable documentation of the
system's semantics.
"""

import pytest

from repro import XRefine
from repro.core import get_optimal_rq, get_top_optimal_rqs
from repro.lexicon import (
    RuleSet,
    acronym_rules,
    merging_rule,
    split_rule,
    substitution_rule,
)
from repro.xmltree import Dewey, parse

#: A superset of the paper's Figure 1: two authors, mixed publication
#: kinds, a hobby element, plus enough extra authors that statistics
#: are not degenerate.
FIGURE1 = """<bib>
 <author>
  <name>john smith</name>
  <publications>
   <inproceedings>
     <title>online database systems</title>
     <booktitle>sigmod</booktitle><year>2003</year>
   </inproceedings>
   <inproceedings>
     <title>xml twig pattern join processing</title>
     <booktitle>vldb</booktitle><year>2004</year>
   </inproceedings>
  </publications>
 </author>
 <author>
  <name>mary lee</name>
  <publications>
   <article>
     <title>machine learning for world wide web search</title>
     <journal>tkde</journal><year>2005</year>
   </article>
   <inproceedings>
     <title>xml keyword search efficiency</title>
     <booktitle>icde</booktitle><year>2006</year>
   </inproceedings>
  </publications>
  <hobby>reading</hobby>
 </author>
 <author>
  <name>wei chen</name>
  <publications>
   <inproceedings>
     <title>efficient skyline computation</title>
     <booktitle>icde</booktitle><year>2006</year>
   </inproceedings>
   <article>
     <title>database query processing</title>
     <journal>tods</journal><year>2003</year>
   </article>
  </publications>
 </author>
</bib>"""


@pytest.fixture(scope="module")
def engine():
    return XRefine.from_xml(FIGURE1)


class TestExample1:
    """Q = {database, publication}: the data says inproceedings/article."""

    def test_original_query_fails(self, engine):
        response = engine.search("database publication", k=3)
        assert response.needs_refinement

    def test_synonyms_proposed_with_results(self, engine):
        response = engine.search("database publication", k=3)
        proposed = {r.rq.key for r in response.refinements}
        synonym_fixes = {
            frozenset({"database", "inproceedings"}),
            frozenset({"database", "article"}),
            frozenset({"database", "publications"}),
        }
        assert proposed & synonym_fixes
        for refinement in response.refinements:
            assert refinement.slcas


class TestDefinition34:
    """Meaningless root results trigger refinement (Q4-style query)."""

    def test_root_only_match_needs_refinement(self, engine):
        # All keywords exist, but only the root contains them together.
        response = engine.search("skyline 2003 reading", k=2)
        assert response.needs_refinement

    def test_plain_slca_returns_root(self, engine):
        slcas = engine.slca_search("skyline 2003 reading")
        assert slcas == [Dewey.root()]


class TestExample3DynamicProgram:
    """getOptimalRQ on Q = {www, article, machine-typo, learning}."""

    RULES = RuleSet(
        [
            *acronym_rules("www", ("world", "wide", "web")),
            substitution_rule("article", "inproceedings"),
            substitution_rule("mchin", "machine", ds=2),
            merging_rule(("learn", "ing"), "learning"),
        ]
    )

    def test_optimal_rq_and_cost(self):
        available = {
            "world", "wide", "web", "inproceedings", "machine", "learning",
        }
        optimal = get_optimal_rq(
            ["www", "article", "mchin", "learning"], available, self.RULES
        )
        # www->world wide web (1) + article->inproceedings (1)
        # + mchin->machine (2) + keep learning (0) = 4.
        assert optimal.dissimilarity == 4
        assert optimal.key == frozenset(
            {"world", "wide", "web", "inproceedings", "machine", "learning"}
        )

    def test_intermediate_candidates_are_top_k_material(self):
        available = {
            "world", "wide", "web", "inproceedings", "machine", "learning",
        }
        candidates = get_top_optimal_rqs(
            ["www", "article", "mchin", "learning"], available, self.RULES, 5
        )
        assert len(candidates) >= 3
        costs = [c.dissimilarity for c in candidates]
        assert costs == sorted(costs)


class TestExample4StackRefine:
    """Q = {on, line, data, base}: two merges beat four deletions."""

    def test_stack_finds_the_merge(self, engine):
        response = engine.search("on line data base", algorithm="stack")
        assert response.needs_refinement
        assert response.best.rq.key == frozenset({"online", "database"})
        assert response.best.rq.dissimilarity == 2

    def test_partial_witness_costs_more(self):
        rules = RuleSet(
            [
                merging_rule(("on", "line"), "online"),
                merging_rule(("data", "base"), "database"),
            ]
        )
        partial = get_optimal_rq(
            ["on", "line", "data", "base"], {"line", "base"}, rules
        )
        assert partial.dissimilarity == 4  # two deletions at cost 2


class TestExample5PartitionTopK:
    """Top-2 refinement of {article, onli ne, database}-style queries."""

    def test_top2_have_results_and_order(self, engine):
        response = engine.search("article onlin database", k=2)
        assert response.needs_refinement
        assert 1 <= len(response.refinements) <= 2
        scores = [r.rank_score for r in response.refinements]
        assert scores == sorted(scores, reverse=True)
        for refinement in response.refinements:
            assert refinement.slcas

    def test_skip_optimization_observable(self, dblp_engine):
        response = dblp_engine.search("databse query", k=1)
        assert response.stats.partitions_visited > 0


class TestExample6SLE:
    """SLE anchors on the shortest list (Q4 = {XML, John, 2003})."""

    def test_direct_hit_when_one_author_has_all(self, engine):
        """Unlike the paper's Figure 1, our John has both an XML paper
        and a 2003 paper, so Q4's analogue answers directly — the
        engine must NOT refine a query with a meaningful result."""
        response = engine.search("xml john 2003", algorithm="sle", k=2)
        assert not response.needs_refinement
        assert response.original_results

    def test_sle_close_refinements(self, engine):
        # skyline (wei) / john / 2005 (mary) never share an author, so
        # the only conjunctive match is the meaningless root; SLE must
        # refine, staying within deletion distance of the original.
        response = engine.search("skyline john 2005", algorithm="sle", k=2)
        assert response.needs_refinement
        assert response.refinements
        # No pair of the three keywords co-occurs in one author, and
        # in-vocabulary terms are never spell-substituted, so deleting
        # two terms (dSim 4) is genuinely optimal here.
        assert response.best.rq.dissimilarity <= 4
        full = frozenset({"skyline", "john", "2005"})
        for refinement in response.refinements:
            assert refinement.rq.key & full, refinement
            assert refinement.slcas


class TestSampleQueriesQX:
    """The mixed-refinement queries of Section VIII."""

    def test_qx1_spelling_plus_merge(self, engine):
        # "eficient, key, word, search" (the paper's QX1): needs a
        # spelling fix and a merge.  In our document "efficient" never
        # co-occurs with "keyword search" (it lives in the skyline
        # paper), so the Issue-2 guarantee forces either the spelling
        # variant "efficiency" (which does co-occur) or a deletion —
        # never the answerless literal fix.
        response = engine.search("eficient key word search", k=3)
        assert response.needs_refinement
        assert response.best is not None
        assert "keyword" in response.best.rq.keywords  # the merge fired
        candidate_keys = {r.rq.key for r in response.refinements}
        assert frozenset({"efficiency", "keyword", "search"}) in (
            candidate_keys
        ) or frozenset({"keyword", "search"}) in candidate_keys
        assert not any(
            key == frozenset({"efficient", "keyword", "search"})
            for key in candidate_keys
        ), "an answerless refinement must never be returned"

    def test_qx2_skyline(self, engine):
        # "efficient, sky, line, computation" -> skyline computation.
        response = engine.search("efficient sky line computation", k=1)
        assert response.needs_refinement
        assert "skyline" in response.best.rq.keywords

    def test_qx3_worldwide_web(self, engine):
        # "worldwide web search engine" -> split worldwide / use www.
        response = engine.search("worldwide web search", k=2)
        assert response.needs_refinement
        best_keys = {r.rq.key for r in response.refinements}
        assert any(
            {"world", "wide"} <= key or "web" in key for key in best_keys
        )
