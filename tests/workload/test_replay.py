"""Traffic synthesis and the streaming replayer."""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro import XRefine, build_document_index
from repro.datasets import generate_dblp
from repro.verify.oracle import replay_cold_diff
from repro.workload import (
    WorkloadGenerator,
    replay_traffic,
    simulate_log,
    synthesize_traffic,
)
from repro.workload.replay import _NO_PARENT


@pytest.fixture(scope="module")
def index():
    return build_document_index(generate_dblp(num_authors=25, seed=7))


@pytest.fixture(scope="module")
def traffic(index):
    return synthesize_traffic(
        index, entries=3000, unique_queries=150, phases=3, seed=11
    )


class TestSynthesis:
    def test_shape(self, traffic):
        assert len(traffic) >= 3000
        assert traffic.unique_queries() <= 150
        assert len(traffic.phases) == 3
        bounds = [(p["start"], p["end"]) for p in traffic.phases]
        assert bounds[0][0] == 0 and bounds[-1][1] == len(traffic)
        for (_, end), (start, _) in zip(bounds, bounds[1:]):
            assert end == start  # contiguous, non-overlapping

    def test_timestamps_monotonic(self, traffic):
        stamps = traffic.timestamps
        assert all(a < b for a, b in zip(stamps, stamps[1:]))

    def test_universe_mixes_intents_and_variants(self, traffic):
        variants = [p for p in traffic.parents if p != _NO_PARENT]
        intents = [p for p in traffic.parents if p == _NO_PARENT]
        assert variants and intents
        for parent in variants:
            assert traffic.parents[parent] == _NO_PARENT

    def test_sessions_chain_variant_to_intent(self, traffic):
        """Some sessions are (corrupted variant, clean intent) pairs."""
        by_session = {}
        for position, session in enumerate(traffic.session_ids):
            by_session.setdefault(session, []).append(position)
        chains = 0
        for positions in by_session.values():
            if len(positions) != 2:
                continue
            first, second = positions
            parent = traffic.parents[traffic.query_index[first]]
            if parent == traffic.query_index[second]:
                chains += 1
        assert chains > 0

    def test_popularity_is_skewed(self, traffic):
        counts = {}
        for position in traffic.query_index:
            counts[position] = counts.get(position, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        top = sum(ranked[: len(ranked) // 10 or 1])
        assert top > len(traffic) * 0.25  # top 10% carry >25% of traffic

    def test_drift_changes_the_hot_head(self, index):
        log = synthesize_traffic(
            index, entries=4000, unique_queries=100, phases=2,
            noise_share=0.0, seed=5,
        )

        def head(phase):
            counts = {}
            for position in log.query_index[phase["start"]:phase["end"]]:
                counts[position] = counts.get(position, 0) + 1
            return {
                key
                for key, _ in sorted(
                    counts.items(), key=lambda item: -item[1]
                )[:10]
            }

        first, second = (head(p) for p in log.phases)
        assert first != second

    def test_deterministic_from_seed(self, index):
        a = synthesize_traffic(
            index, entries=500, unique_queries=50, seed=3
        )
        b = synthesize_traffic(
            index, entries=500, unique_queries=50, seed=3
        )
        assert a.universe == b.universe
        assert a.query_index == b.query_index
        assert a.timestamps == b.timestamps

    def test_master_rng_reproduces_the_composite(self, index):
        """One caller-threaded RNG reproduces synthesis end to end."""
        a = synthesize_traffic(
            index, entries=500, unique_queries=50,
            rng=random.Random(9),
        )
        b = synthesize_traffic(
            index, entries=500, unique_queries=50,
            rng=random.Random(9),
        )
        assert a.universe == b.universe and a.query_index == b.query_index


class TestSimulateLogRng:
    def test_rng_path_is_reproducible(self, index):
        logs = [
            simulate_log(index, sessions=12, rng=random.Random(5))
            for _ in range(2)
        ]
        entries = [
            [
                (e.session_id, e.timestamp, e.query, e.is_rewrite)
                for e in log
            ]
            for log in logs
        ]
        assert entries[0] == entries[1]

    def test_explicit_generator_overrides_derivation(self, index):
        generator = WorkloadGenerator(index, seed=77)
        log = simulate_log(
            index, sessions=6, rng=random.Random(5), generator=generator
        )
        assert len(log) >= 6

    def test_seed_path_unchanged(self, index):
        a = simulate_log(index, sessions=8, seed=31)
        b = simulate_log(index, sessions=8, seed=31)
        assert [e.query for e in a] == [e.query for e in b]


class TestReplayer:
    def test_report_accounts_for_every_entry(self, index, traffic):
        engine = XRefine(index, cache_size=64)
        report = replay_traffic(engine, traffic, k=1, oracle_samples=10)
        assert report.overall["entries"] == len(traffic)
        assert sum(p["entries"] for p in report.phases) == len(traffic)
        for phase in report.phases:
            assert phase["qps"] > 0
            assert 0.0 <= phase["hit_rate"] <= 1.0
            assert phase["p50_ms"] <= phase["p95_ms"] <= phase["p99_ms"]
        assert report.samples

    def test_sampled_answers_match_cold_evaluation(self, index, traffic):
        engine = XRefine(index)
        report = replay_traffic(engine, traffic, k=1, oracle_samples=15)
        assert replay_cold_diff(index, report.samples) == []

    def test_phase_deltas_sum_to_overall(self, index, traffic):
        engine = XRefine(index, cache_size=64)
        report = replay_traffic(engine, traffic, k=1)
        summed = sum(p["result_cache"]["hits"] for p in report.phases)
        assert summed == report.overall["result_cache"]["hits"]


_TRAFFIC_SCRIPT = """
import hashlib
from repro.datasets import generate_dblp
from repro.index.builder import build_document_index
from repro.workload import synthesize_traffic

index = build_document_index(generate_dblp(num_authors=20, seed=7))
traffic = synthesize_traffic(
    index, entries=2000, unique_queries=80, phases=2, seed=13
)
print(traffic.universe)
print(hashlib.md5(
    traffic.query_index.tobytes() + traffic.timestamps.tobytes()
).hexdigest())
"""


class TestDeterminism:
    def test_traffic_is_identical_across_hash_seeds(self):
        """Synthesis must not depend on set-iteration order, so the
        replay benchmark measures the same workload in every process."""
        outputs = []
        for hash_seed in ("101", "202"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            src = os.path.join(
                os.path.dirname(__file__), "..", "..", "src"
            )
            env["PYTHONPATH"] = os.path.abspath(src)
            result = subprocess.run(
                [sys.executable, "-c", _TRAFFIC_SCRIPT],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
