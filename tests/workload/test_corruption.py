"""Tests for the query corruptors."""

import random

import pytest

from repro.lexicon import AcronymTable, Thesaurus, levenshtein
from repro.workload import (
    corrupt_acronym,
    corrupt_merge,
    corrupt_overconstrain,
    corrupt_split,
    corrupt_synonym,
    corrupt_typo,
)


@pytest.fixture
def rng():
    return random.Random(13)


class TestSplit:
    def test_splits_one_keyword(self, rng):
        query = ["online", "newspaper"]
        got = corrupt_split(query, rng)
        assert got is not None
        assert len(got) == 3
        assert "".join(got) == "".join(query)

    def test_fragments_long_enough(self, rng):
        for _ in range(50):
            got = corrupt_split(["online"], rng)
            assert all(len(piece) >= 2 for piece in got)

    def test_too_short_returns_none(self, rng):
        assert corrupt_split(["abc"], rng) is None


class TestMerge:
    def test_merges_adjacent(self, rng):
        got = corrupt_merge(["on", "line", "data"], rng)
        assert got is not None
        assert len(got) == 2
        assert "".join(got) == "onlinedata"

    def test_single_keyword_returns_none(self, rng):
        assert corrupt_merge(["online"], rng) is None


class TestTypo:
    def test_one_edit_away(self, rng):
        produced = 0
        for _ in range(50):
            got = corrupt_typo(["database", "search"], rng)
            if got is None:
                # A no-op draw (e.g. swapping identical neighbours) is
                # reported as failure; the pool generator just retries.
                continue
            produced += 1
            changed = [
                (a, b) for a, b in zip(["database", "search"], got) if a != b
            ]
            assert 1 <= len(changed) <= 1
            for original, corrupted in changed:
                assert levenshtein(original, corrupted) <= 2
        assert produced >= 40

    def test_short_words_skipped(self, rng):
        assert corrupt_typo(["ab", "cd"], rng) is None

    def test_never_returns_original(self, rng):
        for _ in range(50):
            got = corrupt_typo(["database"], rng)
            assert got != ["database"]


class TestSynonym:
    def test_substitutes_known_synonym(self, rng):
        thesaurus = Thesaurus(groups=[({"paper", "article"}, 1)])
        got = corrupt_synonym(["article", "xml"], rng, thesaurus=thesaurus)
        assert got == ["paper", "xml"]

    def test_vocabulary_filter(self, rng):
        thesaurus = Thesaurus(groups=[({"paper", "article"}, 1)])
        got = corrupt_synonym(
            ["article"], rng, thesaurus=thesaurus, vocabulary={"paper"}
        )
        assert got is None  # the only synonym is in-corpus

    def test_no_synonyms_none(self, rng):
        got = corrupt_synonym(["qwerty"], rng, thesaurus=Thesaurus(groups=[]))
        assert got is None


class TestAcronym:
    def test_contraction(self, rng):
        got = corrupt_acronym(["world", "wide", "web", "search"], rng)
        assert got == ["www", "search"]

    def test_expansion(self, rng):
        table = AcronymTable({"ml": ("machine", "learning")})
        got = corrupt_acronym(["ml", "paper"], rng, acronyms=table)
        assert got == ["machine", "learning", "paper"]

    def test_no_material_none(self, rng):
        got = corrupt_acronym(["plain", "words"], rng)
        assert got is None


class TestOverconstrain:
    def test_appends_extra(self, rng):
        got = corrupt_overconstrain(["xml"], rng, extra_terms=["rare"])
        assert got == ["xml", "rare"]

    def test_skips_existing(self, rng):
        got = corrupt_overconstrain(["xml"], rng, extra_terms=["xml"])
        assert got is None

    def test_no_extras_none(self, rng):
        assert corrupt_overconstrain(["xml"], rng, extra_terms=[]) is None
