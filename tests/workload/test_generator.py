"""Tests for the workload pool generator and query log simulator."""

import os
import subprocess
import sys

import pytest

from repro.workload import (
    ALL_KINDS,
    WorkloadGenerator,
    pool_statistics,
    simulate_log,
)


@pytest.fixture(scope="module")
def generator(dblp_index):
    return WorkloadGenerator(dblp_index, seed=41)


class TestIntents:
    def test_intent_has_meaningful_results(self, generator):
        for _ in range(10):
            intent = generator.sample_intent()
            assert 2 <= len(intent) <= 4
            # keywords drawn from one subtree -> all in corpus
            for term in intent:
                assert generator.index.has_keyword(term)

    def test_clean_query_has_results(self, generator):
        query = generator.clean_query()
        assert not query.refinable
        assert query.query == query.intent
        assert query.intent_results


class TestRefinableQueries:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_each_kind(self, generator, kind):
        query = generator.refinable_query(kinds=[kind])
        assert query.refinable
        assert query.kinds == (kind,)
        assert query.query != query.intent
        assert query.intent_results

    def test_mixed_kinds(self, generator):
        query = generator.refinable_query(kinds=["typo", "overconstrain"])
        assert set(query.kinds) == {"typo", "overconstrain"}

    def test_refinable_query_truly_fails(self, generator, dblp_engine):
        for _ in range(5):
            query = generator.refinable_query()
            response = dblp_engine.search(query.query, k=1)
            assert response.needs_refinement, query

    def test_determinism(self, dblp_index):
        a = WorkloadGenerator(dblp_index, seed=5).refinable_query()
        b = WorkloadGenerator(dblp_index, seed=5).refinable_query()
        assert a.query == b.query
        assert a.intent == b.intent


class TestPool:
    def test_pool_composition(self, generator):
        pool = generator.pool(refinable=12, clean=4)
        stats = pool_statistics(pool)
        assert stats["total"] == 16
        assert stats["refinable"] == 12
        assert stats["clean"] == 4
        assert stats["avg_length"] > 1

    def test_kind_counts_recorded(self, generator):
        pool = generator.pool(refinable=10, clean=0)
        stats = pool_statistics(pool)
        assert sum(stats["kind_counts"].values()) >= 10


class TestQueryLog:
    def test_log_shape(self, dblp_index):
        log = simulate_log(dblp_index, sessions=20, seed=3)
        assert len(log) >= 20
        timestamps = [entry.timestamp for entry in log]
        assert timestamps == sorted(timestamps)

    def test_rewrite_pairs(self, dblp_index):
        log = simulate_log(
            dblp_index, sessions=20, rewrite_probability=1.0, seed=3
        )
        pairs = log.rewrite_pairs()
        assert len(pairs) == 20
        for dirty, clean in pairs:
            assert dirty != clean

    def test_failing_queries(self, dblp_index):
        log = simulate_log(
            dblp_index, sessions=10, rewrite_probability=1.0, seed=3
        )
        assert len(log.failing_queries()) == 10

    def test_no_rewrites(self, dblp_index):
        log = simulate_log(
            dblp_index, sessions=5, rewrite_probability=0.0, seed=3
        )
        assert log.rewrite_pairs() == []


_POOL_SCRIPT = """
from repro.datasets import generate_dblp
from repro.index.builder import build_document_index
from repro.workload import WorkloadGenerator

index = build_document_index(generate_dblp(num_authors=20, seed=7))
generator = WorkloadGenerator(index, seed=23)
print(generator._rare_terms)
queries = [generator.refinable_query().query for _ in range(6)]
queries += [generator.clean_query().query for _ in range(2)]
print(queries)
"""


class TestDeterminism:
    def test_pool_is_identical_across_hash_seeds(self):
        """The generator must not depend on set-iteration order.

        ``_rare_terms`` used to be cut from a length-only sort whose
        ties fell back to vocabulary-set iteration order — which
        varies per process under hash randomization, so the "fully
        deterministic" pool (and every benchmark built on it) silently
        changed between runs.  Pin it: two interpreters with different
        hash seeds must produce byte-identical pools.
        """
        outputs = []
        for hash_seed in ("101", "202"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src)
            result = subprocess.run(
                [sys.executable, "-c", _POOL_SCRIPT],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
