"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.datasets import generate_dblp
from repro.xmltree import write_file


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def corpus_xml(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.xml"
    write_file(generate_dblp(num_authors=60, seed=7), path)
    return str(path)


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory, corpus_xml):
    directory = tmp_path_factory.mktemp("cli") / "corpus.idx"
    code, _ = run_cli("index", corpus_xml, "-o", str(directory))
    assert code == 0
    return str(directory)


class TestGenerate:
    def test_dblp(self, tmp_path):
        target = tmp_path / "d.xml"
        code, output = run_cli(
            "generate", "dblp", "-o", str(target), "--authors", "10"
        )
        assert code == 0
        assert target.exists()
        assert "nodes" in output

    def test_baseball(self, tmp_path):
        target = tmp_path / "b.xml"
        code, _ = run_cli("generate", "baseball", "-o", str(target))
        assert code == 0
        assert target.exists()


class TestIndex:
    def test_index_builds(self, index_dir):
        import os

        assert os.path.isdir(index_dir)
        assert "inverted.db" in os.listdir(index_dir)


class TestSearch:
    def test_search_saved_index(self, index_dir):
        code, output = run_cli("search", index_dir, "online", "databse")
        assert code == 0
        assert "refinement" in output

    def test_search_raw_xml(self, corpus_xml):
        code, output = run_cli("search", corpus_xml, "database", "query")
        assert code == 0

    def test_search_algorithm_flag(self, index_dir):
        for algorithm in ("auto", "partition", "sle", "stack"):
            code, _ = run_cli(
                "search", index_dir, "databse", "--algorithm", algorithm
            )
            assert code == 0

    def test_search_explain_prints_the_plan(self, index_dir):
        code, output = run_cli(
            "search", index_dir, "online", "databse", "--explain"
        )
        assert code == 0
        assert "plan: algorithm=" in output
        assert "estimates:" in output

    def test_search_explain_with_fixed_algorithm(self, index_dir):
        code, output = run_cli(
            "search", index_dir, "online", "databse",
            "--algorithm", "sle", "--explain",
        )
        assert code == 0
        assert "plan: algorithm=sle (forced" in output

    def test_hopeless_query_exit_code(self, index_dir):
        code, output = run_cli("search", index_dir, "zzzzz", "qqqqq")
        assert code == 1
        assert "no refinement" in output


class TestOtherCommands:
    def test_slca(self, index_dir):
        code, output = run_cli("slca", index_dir, "database", "query")
        assert code == 0
        assert "SLCA" in output

    def test_specialize(self, index_dir):
        code, output = run_cli(
            "specialize", index_dir, "query", "--threshold", "5"
        )
        assert code == 0
        assert "broad" in output or "focused" in output

    def test_stats(self, index_dir):
        code, output = run_cli("stats", index_dir)
        assert code == 0
        assert "vocabulary" in output
        assert "partitions" in output


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            run_cli("teleport")

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_cli("--version")
        assert excinfo.value.code == 0


class TestRepl:
    def test_scripted_session(self, index_dir):
        import io

        from repro.cli import build_parser, _cmd_repl

        parser = build_parser()
        args = parser.parse_args(["repl", index_dir, "-k", "2"])
        out = io.StringIO()
        code = _cmd_repl(
            args, out,
            lines=["database query", "databse", "", "zzz qqq", ":quit"],
        )
        assert code == 0
        text = out.getvalue()
        assert "XRefine interactive search" in text
        assert "did you mean" in text
        assert "no results and no viable refinement" in text

    def test_error_keeps_loop_alive(self, index_dir):
        import io

        from repro.cli import build_parser, _cmd_repl

        parser = build_parser()
        args = parser.parse_args(["repl", index_dir])
        out = io.StringIO()
        code = _cmd_repl(args, out, lines=["   ", ":q"])
        assert code == 0


class TestFrozenSnapshots:
    @pytest.fixture(scope="class")
    def frozen_path(self, tmp_path_factory, index_dir):
        target = tmp_path_factory.mktemp("cli") / "corpus.frz"
        code, output = run_cli("freeze-index", index_dir, "-o", str(target))
        assert code == 0
        assert "froze" in output
        return str(target)

    def test_single_file(self, frozen_path):
        import os

        assert os.path.isfile(frozen_path)
        assert os.path.getsize(frozen_path) > 0

    def test_index_frozen_flag(self, tmp_path, corpus_xml):
        target = tmp_path / "direct.frz"
        code, output = run_cli(
            "index", corpus_xml, "-o", str(target), "--frozen"
        )
        assert code == 0
        assert "frozen snapshot" in output
        assert target.is_file()

    def test_search_frozen_source(self, frozen_path, index_dir):
        code_frozen, out_frozen = run_cli(
            "search", frozen_path, "online", "databse"
        )
        code_dir, out_dir = run_cli("search", index_dir, "online", "databse")
        assert code_frozen == code_dir
        assert out_frozen == out_dir

    def test_stats_frozen_source(self, frozen_path, index_dir):
        code_frozen, out_frozen = run_cli("stats", frozen_path)
        code_dir, out_dir = run_cli("stats", index_dir)
        assert code_frozen == 0
        assert out_frozen == out_dir

    def test_freeze_rejects_bad_source(self, tmp_path):
        code, _ = run_cli(
            "freeze-index",
            str(tmp_path / "missing"),
            "-o",
            str(tmp_path / "out.frz"),
        )
        assert code != 0
