"""Shared fixtures for the XRefine test suite."""

from __future__ import annotations

import pytest

from repro import XRefine
from repro.datasets import generate_baseball, generate_dblp
from repro.index import build_document_index
from repro.xmltree import parse

#: The running example of the paper's Figure 1, extended enough that
#: statistics are non-degenerate.
FIGURE1_XML = """<bib>
 <author>
  <name>john smith</name>
  <publications>
   <inproceedings>
     <title>online database systems</title>
     <booktitle>sigmod</booktitle>
     <year>2003</year>
   </inproceedings>
   <inproceedings>
     <title>xml twig pattern matching</title>
     <booktitle>vldb</booktitle>
     <year>2004</year>
   </inproceedings>
  </publications>
 </author>
 <author>
  <name>mary lee</name>
  <publications>
   <article>
     <title>machine learning for online search</title>
     <journal>tkde</journal>
     <year>2005</year>
   </article>
   <inproceedings>
     <title>database keyword search</title>
     <booktitle>icde</booktitle>
     <year>2006</year>
   </inproceedings>
  </publications>
  <hobby>reading</hobby>
 </author>
 <author>
  <name>wei chen</name>
  <publications>
   <inproceedings>
     <title>efficient skyline computation</title>
     <booktitle>icde</booktitle>
     <year>2006</year>
   </inproceedings>
  </publications>
 </author>
</bib>"""


@pytest.fixture(autouse=True, scope="session")
def no_leaked_shard_segments():
    """The suite must not leave shared-memory segments behind.

    Every :class:`repro.shard.shm.SharedPostingBlob` lives in /dev/shm
    under a recognizable prefix; any segment that outlives the session
    is a lifecycle bug (a pool that closed without unlinking).
    """
    from repro.shard.shm import live_segments

    before = set(live_segments())
    yield
    leaked = [name for name in live_segments() if name not in before]
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture(scope="session")
def figure1_tree():
    return parse(FIGURE1_XML)


@pytest.fixture(scope="session")
def figure1_index(figure1_tree):
    return build_document_index(figure1_tree)


@pytest.fixture(scope="session")
def figure1_engine(figure1_index):
    return XRefine(figure1_index)


@pytest.fixture(scope="session")
def dblp_tree():
    """A medium synthetic DBLP corpus shared across the suite."""
    return generate_dblp(num_authors=120, seed=7)


@pytest.fixture(scope="session")
def dblp_index(dblp_tree):
    return build_document_index(dblp_tree)


@pytest.fixture(scope="session")
def dblp_engine(dblp_index):
    return XRefine(dblp_index)


@pytest.fixture(scope="session")
def baseball_tree():
    return generate_baseball(seed=11)


@pytest.fixture(scope="session")
def baseball_index(baseball_tree):
    return build_document_index(baseball_tree)


@pytest.fixture(scope="session")
def baseball_engine(baseball_index):
    return XRefine(baseball_index)
