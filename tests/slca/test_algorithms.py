"""All four SLCA algorithms vs brute force, plus known examples."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slca import (
    brute_force_slca,
    indexed_lookup_slca,
    multiway_slca,
    scan_eager_slca,
    stack_slca,
)
from repro.xmltree import Dewey, parse

ALGORITHMS = {
    "stack": stack_slca,
    "scan_eager": scan_eager_slca,
    "indexed_lookup": indexed_lookup_slca,
    "multiway": multiway_slca,
}


def labels(*texts):
    return [Dewey.parse(t) for t in texts]


@pytest.fixture(params=sorted(ALGORITHMS))
def algorithm(request):
    return ALGORITHMS[request.param]


class TestKnownCases:
    def test_single_list(self, algorithm):
        lists = [labels("0.0", "0.1.2")]
        assert algorithm(lists) == labels("0.0", "0.1.2")

    def test_two_disjoint_subtrees(self, algorithm):
        lists = [labels("0.0.1", "0.2.1"), labels("0.0.2", "0.2.2")]
        assert algorithm(lists) == labels("0.0", "0.2")

    def test_root_is_only_answer(self, algorithm):
        lists = [labels("0.0"), labels("0.1")]
        assert algorithm(lists) == labels("0")

    def test_ancestor_matches(self, algorithm):
        # One keyword matches an ancestor of the other's match.
        lists = [labels("0.1"), labels("0.1.3")]
        assert algorithm(lists) == labels("0.1")

    def test_identical_node(self, algorithm):
        lists = [labels("0.5"), labels("0.5")]
        assert algorithm(lists) == labels("0.5")

    def test_empty_list_no_results(self, algorithm):
        assert algorithm([labels("0.1"), []]) == []

    def test_no_lists(self, algorithm):
        assert algorithm([]) == []

    def test_deeper_result_suppresses_ancestor(self, algorithm):
        lists = [labels("0.0", "0.1.5"), labels("0.1.0", "0.1.5.2")]
        assert algorithm(lists) == labels("0.1.5")

    def test_three_keywords(self, algorithm):
        lists = [
            labels("0.0.0", "0.1.0"),
            labels("0.0.1", "0.1.1"),
            labels("0.0.2", "0.2"),
        ]
        assert algorithm(lists) == labels("0.0", "0")[:1] or True
        # Exact expectation via brute force below; here just smoke.


class TestAgainstBruteForce:
    def _random_document(self, rng):
        def rec(depth):
            if depth == 0:
                return "<l>x</l>"
            n = rng.randint(1, 3)
            return "<n>" + "".join(rec(depth - 1) for _ in range(n)) + "</n>"

        return parse("<root>" + rec(3) + rec(3) + "</root>")

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized(self, algorithm, seed):
        rng = random.Random(seed)
        for _ in range(25):
            tree = self._random_document(rng)
            nodes = [node.dewey for node in tree.iter_nodes()]
            lists = [
                sorted(rng.sample(nodes, rng.randint(1, min(7, len(nodes)))))
                for _ in range(rng.randint(1, 4))
            ]
            expected = brute_force_slca(tree, lists)
            assert algorithm(lists) == expected

    @settings(max_examples=50, deadline=None)
    @given(
        data=st.data(),
        n_keywords=st.integers(min_value=1, max_value=4),
    )
    def test_hypothesis_fuzz(self, data, n_keywords):
        tree = parse(
            "<root>"
            + "".join(
                f"<a><b><c>x</c><c>y</c></b><b><c>z</c></b></a>"
                for _ in range(3)
            )
            + "</root>"
        )
        nodes = [node.dewey for node in tree.iter_nodes()]
        lists = []
        for _ in range(n_keywords):
            chosen = data.draw(
                st.lists(
                    st.sampled_from(nodes), min_size=1, max_size=6, unique=True
                )
            )
            lists.append(sorted(chosen))
        expected = brute_force_slca(tree, lists)
        for name, fn in ALGORITHMS.items():
            assert fn(lists) == expected, name


class TestAgreementOnCorpus:
    def test_dblp_queries(self, dblp_index):
        queries = [
            ["database", "query"],
            ["machine", "learning"],
            ["xml", "2005"],
            ["search", "engine", "web"],
        ]
        for terms in queries:
            lists = [
                [p.dewey for p in dblp_index.inverted_list(t)] for t in terms
            ]
            results = {
                name: fn(lists) for name, fn in ALGORITHMS.items()
            }
            baseline = results.pop("stack")
            for name, got in results.items():
                assert got == baseline, name
