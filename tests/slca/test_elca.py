"""Tests for ELCA semantics against brute force and known cases."""

import random

import pytest

from repro.slca import brute_force_elca, elca, stack_slca
from repro.xmltree import Dewey, parse


def labels(*texts):
    return [Dewey.parse(t) for t in texts]


class TestKnownCases:
    def test_slca_case_is_elca(self):
        lists = [labels("0.0.1"), labels("0.0.2")]
        assert elca(lists) == labels("0.0")

    def test_ancestor_with_own_evidence(self):
        """The canonical ELCA-beyond-SLCA case: the root has its own
        witnesses outside the satisfied child."""
        lists = [
            labels("0.0.1", "0.1"),   # k1: inside 0.0 and directly at 0.1
            labels("0.0.2", "0.2"),   # k2: inside 0.0 and directly at 0.2
        ]
        assert elca(lists) == labels("0", "0.0")

    def test_swallowed_ancestor_not_elca(self):
        """All of one keyword's evidence under the satisfied child."""
        lists = [
            labels("0.0.1"),          # k1 only inside 0.0
            labels("0.0.2", "0.1"),   # k2 inside 0.0 and outside
        ]
        assert elca(lists) == labels("0.0")

    def test_internal_contains_all_blocks(self):
        """A contains-all node that is not itself an ELCA still blocks
        its witnesses from ancestors (the subtle XRank rule)."""
        lists = [
            labels("0.1.0.0.1", "0.1.1.0", "0.1.1.0.0", "0.1.1.1"),
            labels("0.0", "0.0.0", "0.1.0.0", "0.1.1.0"),
        ]
        assert elca(lists) == labels("0.1.0.0", "0.1.1.0")

    def test_empty_inputs(self):
        assert elca([]) == []
        assert elca([labels("0.1"), []]) == []

    def test_single_list(self):
        assert elca([labels("0.1", "0.1.2", "0.3")]) == labels(
            "0.1", "0.1.2", "0.3"
        )


class TestProperties:
    def _random_case(self, rng):
        def rec(depth):
            if depth == 0:
                return "<l>x</l>"
            return (
                "<n>"
                + "".join(rec(depth - 1) for _ in range(rng.randint(1, 3)))
                + "</n>"
            )

        tree = parse("<root>" + rec(3) + rec(3) + "</root>")
        nodes = [node.dewey for node in tree.iter_nodes()]
        lists = [
            sorted(rng.sample(nodes, rng.randint(1, min(7, len(nodes)))))
            for _ in range(rng.randint(1, 4))
        ]
        return tree, lists

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            tree, lists = self._random_case(rng)
            assert elca(lists) == brute_force_elca(tree, lists)

    @pytest.mark.parametrize("seed", range(6))
    def test_slca_subset_of_elca(self, seed):
        rng = random.Random(seed * 31 + 5)
        for _ in range(40):
            _, lists = self._random_case(rng)
            assert set(stack_slca(lists)) <= set(elca(lists))

    def test_every_elca_contains_all_keywords(self, dblp_index):
        terms = ["database", "query"]
        lists = [
            [p.dewey for p in dblp_index.inverted_list(t)] for t in terms
        ]
        sorted_lists = [
            sorted(label.components for label in labels_) for labels_ in lists
        ]
        import bisect

        from repro.xmltree.dewey import descendant_range_key

        for node in elca(lists):
            for components in sorted_lists:
                lo = bisect.bisect_left(components, node.components)
                assert (
                    lo < len(components)
                    and components[lo] < descendant_range_key(node)
                ), node
