"""Tests for Formula 1 (search-for inference) and meaningful SLCA."""

import math

import pytest

from repro.errors import QueryError
from repro.slca import (
    confidence,
    infer_search_for,
    is_meaningful,
    meaningful_slcas,
    needs_refinement,
)
from repro.xmltree import Dewey


class TestConfidence:
    def test_formula1_by_hand(self, figure1_index):
        """C_for(T, Q) = ln(1 + sum f_k^T) * r^depth(T)."""
        t_author = ("bib", "author")
        query = ["database", "2003"]
        total = sum(figure1_index.xml_df(k, t_author) for k in query)
        expected = math.log(1 + total) * 0.8 ** 2
        assert confidence(figure1_index, t_author, query) == pytest.approx(
            expected
        )

    def test_absent_keywords_tolerated(self, figure1_index):
        value = confidence(
            figure1_index, ("bib", "author"), ["zebra", "database"]
        )
        assert value > 0  # sum skips the missing keyword, no crash

    def test_zero_when_nothing_matches(self, figure1_index):
        assert confidence(figure1_index, ("bib", "author"), ["zebra"]) == 0.0

    def test_depth_penalty(self, figure1_index):
        """Deeper types with the same DF mass score lower."""
        shallow = confidence(figure1_index, ("bib", "author"), ["database"])
        deep = confidence(
            figure1_index,
            ("bib", "author", "publications", "inproceedings", "title"),
            ["database"],
        )
        # Same f mass (every occurrence is under a title), deeper type.
        assert deep < shallow


class TestInferSearchFor:
    def test_root_excluded(self, figure1_index):
        candidates = infer_search_for(figure1_index, ["database", "2003"])
        assert all(c.node_type != ("bib",) for c in candidates)

    def test_sorted_by_confidence(self, figure1_index):
        candidates = infer_search_for(figure1_index, ["database", "xml"])
        scores = [c.confidence for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_empty_query_raises(self, figure1_index):
        with pytest.raises(QueryError):
            infer_search_for(figure1_index, [])

    def test_no_match_returns_empty(self, figure1_index):
        assert infer_search_for(figure1_index, ["zebra", "qqq"]) == []

    def test_comparable_fraction_widens(self, figure1_index):
        strict = infer_search_for(
            figure1_index, ["database"], comparable_fraction=0.99
        )
        loose = infer_search_for(
            figure1_index, ["database"], comparable_fraction=0.5,
            max_candidates=10,
        )
        assert len(loose) >= len(strict)

    def test_author_like_type_wins_on_dblp(self, dblp_index):
        candidates = infer_search_for(dblp_index, ["database", "query"])
        assert candidates
        top_tags = {c.node_type[-1] for c in candidates}
        # Entity-ish types, never the root.
        assert "bib" not in top_tags


class TestIsMeaningful:
    def test_self_of_search_for_type(self):
        t = ("bib", "author")
        assert is_meaningful(Dewey((0, 1)), t, [t])

    def test_descendant_of_search_for_type(self):
        assert is_meaningful(
            Dewey((0, 1, 2)), ("bib", "author", "hobby"), [("bib", "author")]
        )

    def test_ancestor_rejected(self):
        assert not is_meaningful(
            Dewey((0,)), ("bib",), [("bib", "author")]
        )

    def test_sibling_type_rejected(self):
        assert not is_meaningful(
            Dewey((0, 5)), ("bib", "editor"), [("bib", "author")]
        )

    def test_empty_candidates(self):
        assert not is_meaningful(Dewey((0, 1)), ("bib", "author"), [])


class TestNeedsRefinement:
    def test_definition_3_4(self, figure1_index):
        search_for = infer_search_for(figure1_index, ["database", "2003"])
        root_only = [Dewey.root()]
        assert needs_refinement(figure1_index, root_only, search_for)

    def test_meaningful_result_found(self, figure1_index):
        search_for = infer_search_for(figure1_index, ["database", "2003"])
        inproc = Dewey((0, 0, 1, 0))  # first inproceedings
        kept = meaningful_slcas(figure1_index, [inproc], search_for)
        assert kept == [inproc]
        assert not needs_refinement(figure1_index, [inproc], search_for)

    def test_unknown_labels_skipped(self, figure1_index):
        search_for = infer_search_for(figure1_index, ["database"])
        assert meaningful_slcas(
            figure1_index, [Dewey((0, 99, 99))], search_for
        ) == []
