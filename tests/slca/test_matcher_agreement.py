"""Scan Eager's forward matcher must equal Indexed Lookup's bisect.

``_ForwardMatcher.match`` (forward pointers, amortized O(1)) and
``closest_match`` (binary search) implement the same "deepest LCA,
ties to the left neighbor" contract.  If their tie-breaking ever
drifts apart, Scan Eager and Indexed Lookup can anchor SLCA candidates
on different witnesses and the higher layers stop agreeing — so the
equivalence is pinned here element-for-element, not just depth-for-
depth.
"""

import random

from repro.slca.lca import closest_match, label_components
from repro.slca.scan_eager import _ForwardMatcher
from repro.xmltree.dewey import Dewey


def _random_components(rng, count, max_depth=5, fanout=3):
    seen = set()
    while len(seen) < count:
        depth = rng.randint(1, max_depth)
        seen.add(tuple(rng.randint(0, fanout) for _ in range(depth)))
    return sorted(seen)


def _labels(components):
    return [Dewey.from_trusted(c) for c in components]


class TestMatcherAgreement:
    def test_random_lists_agree_exactly(self):
        rng = random.Random(42)
        for trial in range(200):
            list_components = _random_components(
                rng, rng.randint(1, 12)
            )
            targets = _labels(
                _random_components(rng, rng.randint(1, 12))
            )
            labels = _labels(list_components)
            matcher = _ForwardMatcher(labels)
            sorted_components = label_components(labels)
            # Targets non-decreasing, as the anchor scan guarantees.
            for target in targets:
                forward = matcher.match(target)
                bisected = closest_match(sorted_components, target)
                assert str(forward) == str(bisected), (
                    f"trial {trial}: target {target} matched "
                    f"{forward} (scan) vs {bisected} (indexed) over "
                    f"{[str(l) for l in labels]}"
                )

    def test_tie_breaks_left(self):
        # Equidistant neighbors: both must pick the left one.
        labels = _labels([(0, 0), (0, 2)])
        target = Dewey.from_trusted((0, 1))
        forward = _ForwardMatcher(labels).match(target)
        bisected = closest_match(label_components(labels), target)
        assert str(forward) == str(bisected) == "0.0"

    def test_repeated_target(self):
        # The forward pointer must not overshoot on duplicate targets.
        labels = _labels([(0, 0), (0, 1), (0, 2)])
        matcher = _ForwardMatcher(labels)
        target = Dewey.from_trusted((0, 1))
        first = matcher.match(target)
        second = matcher.match(target)
        assert str(first) == str(second) == "0.1"


class TestGallopingAdvance:
    """The galloping pointer advance must land exactly where the old
    linear "advance while next <= target" walk stopped."""

    def test_long_list_short_anchor_agrees_with_bisect(self):
        # The gallop's motivating shape: a few far-apart anchors
        # against a long dense list, forcing large exponential jumps.
        components = [(0, i, 0) for i in range(5000)]
        labels = _labels(components)
        matcher = _ForwardMatcher(labels)
        sorted_components = label_components(labels)
        for ordinal in (0, 1, 7, 90, 1023, 1024, 3333, 4999):
            target = Dewey.from_trusted((0, ordinal, 1))
            forward = matcher.match(target)
            bisected = closest_match(sorted_components, target)
            assert str(forward) == str(bisected)

    def test_pointer_is_monotone_and_lands_on_last_leq(self):
        components = [(0, i) for i in range(0, 200, 2)]  # even ordinals
        matcher = _ForwardMatcher(_labels(components))
        previous = 0
        rng = random.Random(7)
        ordinals = sorted(rng.randint(0, 199) for _ in range(50))
        for ordinal in ordinals:
            matcher.match(Dewey.from_trusted((0, ordinal)))
            position = matcher.position
            assert position >= previous
            # Last element <= target: the linear-walk postcondition.
            assert components[position] <= (0, ordinal)
            if position + 1 < len(components):
                assert components[position + 1] > (0, ordinal)
            previous = position

    def test_gallop_overshoot_past_end_of_list(self):
        # The exponential probe runs off the end; the bracket bisect
        # must clamp to the final element instead of indexing past it.
        components = [(0, i) for i in range(33)]  # not a power of two
        matcher = _ForwardMatcher(_labels(components))
        result = matcher.match(Dewey.from_trusted((5,)))
        assert matcher.position == len(components) - 1
        assert str(result) == "0.32"
