"""Scan Eager's forward matcher must equal Indexed Lookup's bisect.

``_ForwardMatcher.match`` (forward pointers, amortized O(1)) and
``closest_match`` (binary search) implement the same "deepest LCA,
ties to the left neighbor" contract.  If their tie-breaking ever
drifts apart, Scan Eager and Indexed Lookup can anchor SLCA candidates
on different witnesses and the higher layers stop agreeing — so the
equivalence is pinned here element-for-element, not just depth-for-
depth.
"""

import random

from repro.slca.lca import closest_match, label_components
from repro.slca.scan_eager import _ForwardMatcher
from repro.xmltree.dewey import Dewey


def _random_components(rng, count, max_depth=5, fanout=3):
    seen = set()
    while len(seen) < count:
        depth = rng.randint(1, max_depth)
        seen.add(tuple(rng.randint(0, fanout) for _ in range(depth)))
    return sorted(seen)


def _labels(components):
    return [Dewey.from_trusted(c) for c in components]


class TestMatcherAgreement:
    def test_random_lists_agree_exactly(self):
        rng = random.Random(42)
        for trial in range(200):
            list_components = _random_components(
                rng, rng.randint(1, 12)
            )
            targets = _labels(
                _random_components(rng, rng.randint(1, 12))
            )
            labels = _labels(list_components)
            matcher = _ForwardMatcher(labels)
            sorted_components = label_components(labels)
            # Targets non-decreasing, as the anchor scan guarantees.
            for target in targets:
                forward = matcher.match(target)
                bisected = closest_match(sorted_components, target)
                assert str(forward) == str(bisected), (
                    f"trial {trial}: target {target} matched "
                    f"{forward} (scan) vs {bisected} (indexed) over "
                    f"{[str(l) for l in labels]}"
                )

    def test_tie_breaks_left(self):
        # Equidistant neighbors: both must pick the left one.
        labels = _labels([(0, 0), (0, 2)])
        target = Dewey.from_trusted((0, 1))
        forward = _ForwardMatcher(labels).match(target)
        bisected = closest_match(label_components(labels), target)
        assert str(forward) == str(bisected) == "0.0"

    def test_repeated_target(self):
        # The forward pointer must not overshoot on duplicate targets.
        labels = _labels([(0, 0), (0, 1), (0, 2)])
        matcher = _ForwardMatcher(labels)
        target = Dewey.from_trusted((0, 1))
        first = matcher.match(target)
        second = matcher.match(target)
        assert str(first) == str(second) == "0.1"
