"""Tests for LCA primitives: ancestor filtering, closest match, merging."""

from hypothesis import given
from hypothesis import strategies as st

from repro.slca import closest_match, lca_candidate, merge_lists, remove_ancestors
from repro.xmltree import Dewey


def labels(*texts):
    return [Dewey.parse(t) for t in texts]


class TestRemoveAncestors:
    def test_keeps_deepest(self):
        assert remove_ancestors(labels("0", "0.1", "0.1.2")) == labels("0.1.2")

    def test_keeps_siblings(self):
        got = remove_ancestors(labels("0.1", "0.2"))
        assert got == labels("0.1", "0.2")

    def test_mixed(self):
        got = remove_ancestors(labels("0", "0.1", "0.2.3", "0.2"))
        assert got == labels("0.1", "0.2.3")

    def test_deduplicates(self):
        assert remove_ancestors(labels("0.1", "0.1")) == labels("0.1")

    def test_empty(self):
        assert remove_ancestors([]) == []

    @given(
        st.lists(
            st.lists(st.integers(0, 3), min_size=1, max_size=4).map(
                lambda c: Dewey([0] + c)
            ),
            max_size=12,
        )
    )
    def test_no_ancestor_pairs_remain(self, candidates):
        kept = remove_ancestors(candidates)
        for a in kept:
            for b in kept:
                assert a == b or not a.is_ancestor_of(b)
        # Every input is represented by itself or a descendant.
        for label in candidates:
            assert any(label.is_ancestor_or_self_of(k) for k in kept)


class TestClosestMatch:
    def test_prefers_deeper_lca(self):
        lst = sorted(l.components for l in labels("0.0.9", "0.1.5"))
        target = Dewey.parse("0.1.2")
        assert closest_match(lst, target) == Dewey.parse("0.1.5")

    def test_left_match(self):
        lst = sorted(l.components for l in labels("0.1.1", "0.9"))
        assert closest_match(lst, Dewey.parse("0.1.7")) == Dewey.parse("0.1.1")

    def test_exact_match(self):
        lst = [Dewey.parse("0.5").components]
        assert closest_match(lst, Dewey.parse("0.5")) == Dewey.parse("0.5")

    def test_empty_list(self):
        assert closest_match([], Dewey.parse("0.1")) is None


class TestLcaCandidate:
    def test_contains_everything(self):
        anchor = Dewey.parse("0.1.2")
        others = [
            sorted(l.components for l in labels("0.1.5")),
            sorted(l.components for l in labels("0.0.1")),
        ]
        candidate = lca_candidate(anchor, others)
        assert candidate == Dewey.parse("0")

    def test_empty_other_list(self):
        assert lca_candidate(Dewey.parse("0.1"), [[]]) is None

    def test_no_others(self):
        anchor = Dewey.parse("0.3")
        assert lca_candidate(anchor, []) == anchor


class TestMergeLists:
    def test_interleaving(self):
        a = labels("0.0", "0.2")
        b = labels("0.1", "0.3")
        merged = [(str(l), i) for l, i in merge_lists([a, b])]
        assert merged == [("0.0", 0), ("0.1", 1), ("0.2", 0), ("0.3", 1)]

    def test_duplicates_across_lists(self):
        a = labels("0.1")
        b = labels("0.1")
        merged = list(merge_lists([a, b]))
        assert len(merged) == 2
        assert {index for _, index in merged} == {0, 1}

    def test_list_indices_correct(self):
        lists = [labels("0.5"), labels("0.1"), labels("0.3")]
        merged = [(str(l), i) for l, i in merge_lists(lists)]
        assert merged == [("0.1", 1), ("0.3", 2), ("0.5", 0)]
