"""Batch scoring kernels must equal their sequential references.

The scoring hot path has three batch kernels — partition presence,
the Top-2K admission sweep, and the Formula 2-9 batch scorer — plus
the sibling-run encoding the stack route consumes.  Every parity test
runs twice via the ``kernel_backend`` fixture: once under whatever
backend import selected (skipped when compilation was unavailable)
and once with the compiled library masked off, so the pure-Python
fallback is exercised in-process regardless of the host.
"""

from __future__ import annotations

import pytest

import repro.kernels.backend as backend_module
from repro.core.candidates import RefinedQuery, RQSortedList
from repro.core.common import QueryContext
from repro.core.ranking.model import RankingModel, full_model
from repro.index import build_document_index
from repro.index.tokenize_text import query_terms
from repro.kernels import (
    ListColumns,
    ScoreTable,
    admission_sweep,
    batch_dependence,
    batch_similarity,
    columns_for,
    merged_lcp,
    merged_lcp_runs,
    partition_presence,
    prepare_beam,
    supported_model,
)
from repro.lexicon.rules import RuleSet
from repro.verify.generate import DocumentGenerator, QueryGenerator


@pytest.fixture(params=["active", "pure-python"])
def kernel_backend(request, monkeypatch):
    """Run the test under the active backend, then the pure fallback."""
    if request.param == "pure-python":
        monkeypatch.setattr(backend_module, "compiled", None)
    elif backend_module.compiled is None:
        pytest.skip("compiled backend unavailable on this host")
    return request.param


# ----------------------------------------------------------------------
# Batch partition presence vs the per-pid pid_range probes
# ----------------------------------------------------------------------
def _naive_presence(anchor_columns, lane_columns):
    """The short-list route's original probe loop, verbatim."""
    nlanes = len(lane_columns)
    masks = []
    spans = []
    for pid in anchor_columns.pids:
        mask = 0
        row = []
        for lane, column in enumerate(lane_columns):
            span = column.pid_range.get(pid)
            if span is None:
                row.extend((-1, -1))
            else:
                mask |= 1 << lane
                row.extend(span)
        masks.append(mask)
        spans.extend(row)
    return masks, spans


def _assert_presence_matches(anchor_columns, lane_columns):
    masks, spans = partition_presence(anchor_columns, lane_columns)
    want_masks, want_spans = _naive_presence(anchor_columns, lane_columns)
    assert list(masks) == want_masks
    assert list(spans) == want_spans


class TestPartitionPresence:
    def test_matches_per_pid_probes(self, kernel_backend):
        columns = [
            ListColumns([(0, 1, 0), (0, 1, 2), (0, 3), (1, 0), (2, 2, 5)]),
            ListColumns([(0, 1, 1), (0, 3, 0), (2, 2)]),
            ListColumns([(1, 0, 4), (1, 0, 5), (3, 1)]),
        ]
        for anchor in columns:
            _assert_presence_matches(anchor, columns)

    def test_duplicate_keyword_lanes_share_a_column(self, kernel_backend):
        """A query repeating a keyword probes the same column twice."""
        shared = ListColumns([(0, 1, 0), (0, 2), (3, 1, 4)])
        other = ListColumns([(0, 2, 1), (3, 1)])
        lanes = [shared, other, shared]
        _assert_presence_matches(shared, lanes)
        masks, spans = partition_presence(shared, lanes)
        nlanes = len(lanes)
        for i in range(len(shared.pids)):
            # Both duplicate lanes see the partition identically.
            assert bool(masks[i] & 1) == bool(masks[i] & 4)
            base = i * nlanes * 2
            assert spans[base:base + 2] == spans[base + 4:base + 6]

    def test_single_posting_partitions(self, kernel_backend):
        anchor = ListColumns([(0, 0, 1), (0, 1, 2), (1, 5), (2, 0, 0, 3)])
        lanes = [anchor, ListColumns([(0, 1, 9), (2, 0, 1)])]
        _assert_presence_matches(anchor, lanes)
        masks, spans = partition_presence(anchor, lanes)
        # Every anchor partition holds exactly one posting.
        for i, pid in enumerate(anchor.pids):
            lo, hi = spans[i * 4], spans[i * 4 + 1]
            assert (lo, hi) == anchor.pid_range[pid]
            assert hi - lo == 1

    def test_absent_and_empty_lanes(self, kernel_backend):
        anchor = ListColumns([(0, 1, 0), (4, 4)])
        lanes = [anchor, ListColumns([(9, 9, 9)]), ListColumns([])]
        _assert_presence_matches(anchor, lanes)
        masks, spans = partition_presence(anchor, lanes)
        for i in range(len(anchor.pids)):
            assert masks[i] == 1  # only the anchor lane is present
            assert list(spans[i * 6 + 2:i * 6 + 6]) == [-1, -1, -1, -1]

    def test_root_postings_have_no_partition(self, kernel_backend):
        """Depth-0 labels belong to no partition (Definition 6.1)."""
        anchor = ListColumns([(0,), (0, 1), (0, 1, 2), (0, 2, 0)])
        assert anchor.root_count == 1
        assert anchor.pids == [(0, 1), (0, 2)]
        _assert_presence_matches(anchor, [anchor, ListColumns([(0,)])])


# ----------------------------------------------------------------------
# Admission sweep vs the sequential pre-check loop
# ----------------------------------------------------------------------
def _rq(keywords, dissimilarity):
    return RefinedQuery(tuple(keywords), dissimilarity)


def _sequential_admission(candidates, sorted_list, query_key):
    """The per-candidate loop the routes ran before the sweep."""
    kept = []
    for i, rq in enumerate(candidates):
        if rq.key == query_key:
            continue
        if sorted_list.has_key(rq.key) or sorted_list.would_admit(rq):
            kept.append(i)
    return kept


class TestAdmissionSweep:
    def test_not_full_keeps_everything_but_the_query(self):
        sorted_list = RQSortedList(4)
        sorted_list.insert(_rq(("a", "b"), 0.5))
        candidates = [_rq(("a", "b"), 0.5), _rq(("q",), 0.0),
                      _rq(("c",), 9.0)]
        swept = admission_sweep(
            prepare_beam(candidates), sorted_list, frozenset(("q",))
        )
        assert swept == [0, 2]

    def test_exactly_at_threshold_tie_is_rejected(self):
        """A candidate equal to the worst kept order cannot enter."""
        sorted_list = RQSortedList(2)
        sorted_list.insert(_rq(("a",), 1.0))
        sorted_list.insert(_rq(("b",), 2.0))  # worst: (2.0, ("b",))
        candidates = [
            _rq(("b",), 2.0),   # == worst, but key present: kept
            _rq(("c",), 2.0),   # ties dissimilarity, loses on content
            _rq(("aa",), 2.0),  # ties dissimilarity, wins on content
            _rq(("d",), 1.5),   # strictly better
            _rq(("e",), 3.0),   # strictly worse
        ]
        prepared = prepare_beam(candidates)
        swept = admission_sweep(prepared, sorted_list, frozenset(("x",)))
        assert swept == [0, 2, 3]
        assert swept == _sequential_admission(
            candidates, sorted_list, frozenset(("x",))
        )

    def test_matches_sequential_loop_on_entry_state(self):
        sorted_list = RQSortedList(3)
        for rq in (_rq(("a", "b"), 0.4), _rq(("c",), 1.2),
                   _rq(("d", "e"), 1.2)):
            sorted_list.insert(rq)
        query_key = frozenset(("a", "b"))
        candidates = [
            _rq(("a", "b"), 0.4), _rq(("b", "a"), 9.0), _rq(("c",), 5.0),
            _rq(("d", "e"), 1.2), _rq(("d", "a"), 1.2), _rq(("z",), 0.1),
            _rq(("d", "f"), 1.2), _rq(("c", "c"), 1.2),
        ]
        prepared = prepare_beam(candidates)
        assert admission_sweep(
            prepared, sorted_list, query_key
        ) == _sequential_admission(candidates, sorted_list, query_key)

    def test_superset_of_the_looped_inserts(self):
        """Replaying inserts over the swept indices reaches the same
        final list as the fully sequential loop — the sweep may only
        drop candidates the loop would also have rejected."""
        candidates = [
            _rq(("m", "n"), 2.0), _rq(("a",), 2.0), _rq(("b",), 2.0),
            _rq(("a",), 1.0), _rq(("k", "l", "m"), 0.5), _rq(("b",), 2.0),
            _rq(("z", "z2"), 4.0), _rq(("c",), 2.0),
        ]
        query_key = frozenset(("m", "n"))

        reference = RQSortedList(2)
        for rq in candidates:
            if rq.key == query_key:
                continue
            if reference.has_key(rq.key) or reference.would_admit(rq):
                reference.insert(rq)

        swept_list = RQSortedList(2)
        prepared = prepare_beam(candidates)
        for i in admission_sweep(prepared, swept_list, query_key):
            rq = candidates[i]
            if swept_list.has_key(rq.key) or swept_list.would_admit(rq):
                swept_list.insert(rq)

        assert [
            (rq.keywords, rq.dissimilarity) for rq in swept_list
        ] == [(rq.keywords, rq.dissimilarity) for rq in reference]


# ----------------------------------------------------------------------
# Batch Formula 2-9 scoring vs the reference ranking model
# ----------------------------------------------------------------------
def _reference_scores(index, model, rq, context):
    return (
        model.similarity_score(index, rq, context.query,
                               context.search_for),
        model.dependence_score(index, rq, context.search_for),
    )


def _batch_scores(table, index, model, rq, context):
    return (
        batch_similarity(table, index, model, rq, context.query,
                         context.search_for),
        batch_dependence(table, index, model, rq, context.search_for),
    )


class TestBatchScoringParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_reference_model(self, seed, kernel_backend):
        document = DocumentGenerator(seed=700 + seed)
        queries = QueryGenerator(seed=800 + seed,
                                 vocabulary=document.words)
        index = build_document_index(document.tree())
        model = full_model()
        table = ScoreTable(getattr(index, "version", 0))
        for query in queries.queries(6):
            terms = query_terms(query)
            if not terms:
                continue
            context = QueryContext(index, terms, RuleSet())
            present = [k for k in context.keyword_space
                       if len(context.lists[k]) > 0]
            if not present:
                continue
            candidates = [
                _rq(present[:r], r % 3) for r in range(1, len(present) + 1)
            ]
            for rq in candidates:
                want = _reference_scores(index, model, rq, context)
                # Cold memo (misses) and warm memo (hits) must agree
                # byte for byte with the per-node reference.
                assert _batch_scores(table, index, model, rq,
                                     context) == want
                assert _batch_scores(table, index, model, rq,
                                     context) == want

    def test_duplicate_keywords_in_the_candidate(self, kernel_backend):
        document = DocumentGenerator(seed=910)
        index = build_document_index(document.tree())
        word = document.words[0]
        other = document.words[1]
        context = QueryContext(index, (word, other), RuleSet())
        if not context.search_for:
            pytest.skip("generator produced no scoreable corpus")
        model = full_model()
        table = ScoreTable(0)
        # Formula 2's tf sum iterates keywords as given (duplicates
        # count twice); Formula 8 deduplicates.  Both must replay.
        for rq in (_rq((word, word), 1), _rq((word, word, other), 2)):
            assert _batch_scores(
                table, index, model, rq, context
            ) == _reference_scores(index, model, rq, context)

    def test_empty_search_for_scores_zero(self, kernel_backend):
        document = DocumentGenerator(seed=911)
        index = build_document_index(document.tree())
        model = full_model()
        table = ScoreTable(0)
        rq = _rq(("anything",), 0)
        assert batch_similarity(table, index, model, rq,
                                ("anything",), []) == 0.0
        assert batch_dependence(table, index, model, rq, []) == 0.0

    def test_subclassed_model_keeps_the_reference_path(self):
        assert supported_model(RankingModel())
        assert supported_model(full_model())

        class Custom(RankingModel):
            pass

        assert not supported_model(Custom())


# ----------------------------------------------------------------------
# Sibling-leaf run encoding (the stack route's chain skip)
# ----------------------------------------------------------------------
def _naive_runs(columns):
    """Backward-pass reference for :func:`merged_lcp_runs`."""
    entries = sorted(
        (key, lane)
        for lane, column in enumerate(columns)
        for key in column.keys
    )
    lanes, lcps = merged_lcp(columns)
    total = len(entries)
    ends = [0] * total
    for i in range(total - 1, -1, -1):
        chains = (
            i + 1 < total
            and entries[i + 1][1] == entries[i][1]
            and len(entries[i + 1][0]) == len(entries[i][0])
            and lcps[i + 1] == len(entries[i + 1][0]) - 1
        )
        ends[i] = ends[i + 1] if chains else i
    return list(lanes), list(lcps), ends


def _assert_runs_match(columns):
    lanes, lcps, ends = merged_lcp_runs(columns)
    want_lanes, want_lcps, want_ends = _naive_runs(columns)
    assert list(lanes) == want_lanes
    assert list(lcps) == want_lcps
    assert list(ends) == want_ends


class TestMergedLcpRuns:
    def test_run_breaks_at_partition_boundary(self, kernel_backend):
        # Siblings (0,1)..(0,2) chain; the parent change to (1,*)
        # breaks the run even though lengths and lane match.
        columns = [ListColumns([(0, 1), (0, 2), (1, 0), (1, 1)])]
        _, _, ends = merged_lcp_runs(columns)
        assert list(ends) == [1, 1, 3, 3]
        _assert_runs_match(columns)

    def test_identical_keys_across_lanes_never_chain(self, kernel_backend):
        # LCP of identical labels equals their length, not length - 1,
        # and the lane changes besides — three runs of one.
        key = (0, 1, 2)
        columns = [ListColumns([key]) for _ in range(3)]
        _, _, ends = merged_lcp_runs(columns)
        assert list(ends) == [0, 1, 2]
        _assert_runs_match(columns)

    def test_root_only_stream_is_one_run(self, kernel_backend):
        # Consecutive roots share lane, length 1, and LCP 0 == 1 - 1.
        columns = [ListColumns([(0,), (1,), (2,)])]
        _, _, ends = merged_lcp_runs(columns)
        assert list(ends) == [2, 2, 2]
        _assert_runs_match(columns)

    def test_interleaving_lane_splits_a_run(self, kernel_backend):
        columns = [
            ListColumns([(0, 0, 1), (0, 0, 2), (0, 0, 4)]),
            ListColumns([(0, 0, 3)]),
        ]
        _, _, ends = merged_lcp_runs(columns)
        # (0,0,1)-(0,0,2) chain; lane 1's (0,0,3) interrupts; then
        # (0,0,4) stands alone (its predecessor is the other lane).
        assert list(ends) == [1, 1, 2, 3]
        _assert_runs_match(columns)

    def test_varying_depth_breaks_the_chain(self, kernel_backend):
        columns = [ListColumns([(0, 0), (0, 0, 1), (0, 0, 2), (0, 1)])]
        _assert_runs_match(columns)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive_reference_on_generated_corpora(
        self, seed, kernel_backend
    ):
        document = DocumentGenerator(seed=500 + seed)
        queries = QueryGenerator(seed=600 + seed,
                                 vocabulary=document.words)
        index = build_document_index(document.tree())
        for query in queries.queries(6):
            terms = query_terms(query)
            columns = [
                columns_for(index.inverted_list(term)) for term in terms
            ]
            if not columns:
                continue
            _assert_runs_match(columns)
