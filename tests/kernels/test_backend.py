"""Fast-path selection: env-var override and silent degradation."""

from __future__ import annotations

import os
import subprocess
import sys

import repro
import repro.kernels.backend as backend_module


def _probe_backend(extra_env):
    """backend_name() reported by a fresh interpreter."""
    env = os.environ.copy()
    env.pop(backend_module.NO_COMPILED_ENV, None)
    env.update(extra_env)
    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    return subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.kernels import backend_name; print(backend_name())",
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=180,
    ).stdout.strip()


def test_env_var_forces_pure_python():
    assert (
        _probe_backend({backend_module.NO_COMPILED_ENV: "1"})
        == "pure-python"
    )


def test_env_var_zero_means_unset():
    # "0" and "" both mean "let import-time selection decide" — they
    # must match a probe with the variable absent entirely (which may
    # be either backend, depending on the host).
    expected = _probe_backend({})
    assert _probe_backend({backend_module.NO_COMPILED_ENV: "0"}) == expected
    assert _probe_backend({backend_module.NO_COMPILED_ENV: ""}) == expected


def test_missing_compiler_degrades_silently():
    # CC pointing at a nonexistent binary must fall back, not raise.
    # A fresh cache dir is forced by clearing TMPDIR to a new location.
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        assert (
            _probe_backend({"CC": "/nonexistent/cc", "TMPDIR": scratch})
            == "pure-python"
        )


def test_backend_name_matches_module_state(monkeypatch):
    monkeypatch.setattr(backend_module, "compiled", None)
    assert backend_module.backend_name() == "pure-python"
