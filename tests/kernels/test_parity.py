"""Batch kernels must equal their per-node references, on both backends.

Every test here runs twice via the ``kernel_backend`` fixture: once
against whatever backend import selected (skipped when compilation was
unavailable) and once with the compiled library masked off, so the
pure-Python fallback is exercised in-process regardless of the host.
"""

from __future__ import annotations

import pytest

import repro.kernels.backend as backend_module
from repro.core.dp import MissingKeywordBound
from repro.index import build_document_index
from repro.index.tokenize_text import query_terms
from repro.kernels import (
    ListColumns,
    PresenceBoundCache,
    columns_for,
    merged_lcp,
    partition_view,
    slca_columns,
    slca_ranges,
)
from repro.slca.scan_eager import scan_eager_slca
from repro.verify.generate import DocumentGenerator, QueryGenerator
from repro.verify.oracle import DocumentOracle, response_fingerprint
from repro.xmltree.dewey import Dewey


@pytest.fixture(params=["active", "pure-python"])
def kernel_backend(request, monkeypatch):
    """Run the test under the active backend, then the pure fallback."""
    if request.param == "pure-python":
        monkeypatch.setattr(backend_module, "compiled", None)
    elif backend_module.compiled is None:
        pytest.skip("compiled backend unavailable on this host")
    return request.param


def _naive_merged_lcp(key_lists):
    """Sort-everything reference for :func:`merged_lcp`."""
    entries = sorted(
        (key, lane)
        for lane, keys in enumerate(key_lists)
        for key in keys
    )
    lanes, lcps = [], []
    previous = None
    for key, lane in entries:
        shared = 0
        if previous is not None:
            for a, b in zip(previous, key):
                if a != b:
                    break
                shared += 1
        lanes.append(lane)
        lcps.append(shared)
        previous = key
    return lanes, lcps


class TestAdversarialCorpusParity:
    """Property tests over the differential harness's generators."""

    @pytest.mark.parametrize("seed", range(6))
    def test_batch_slca_equals_per_node_scan(self, seed, kernel_backend):
        document = DocumentGenerator(seed=seed)
        queries = QueryGenerator(seed=seed + 1, vocabulary=document.words)
        for _ in range(4):
            index = build_document_index(document.tree())
            for query in queries.queries(6):
                terms = query_terms(query)
                lists = [index.inverted_list(term) for term in terms]
                if not terms or not all(len(lst) for lst in lists):
                    continue
                reference = scan_eager_slca(
                    [[posting.dewey for posting in lst] for lst in lists]
                )
                batch = slca_columns([columns_for(lst) for lst in lists])
                assert [str(d) for d in batch] == [
                    str(d) for d in reference
                ]

    @pytest.mark.parametrize("seed", range(4))
    def test_kernel_oracle_stays_clean(self, seed, kernel_backend):
        document = DocumentGenerator(seed=100 + seed)
        queries = QueryGenerator(seed=200 + seed,
                                 vocabulary=document.words)
        oracle = DocumentOracle(document.spec())
        for query in queries.queries(8):
            assert oracle.check_kernels(query) == []

    @pytest.mark.parametrize("seed", range(3))
    def test_engine_results_identical_across_backends(
        self, seed, monkeypatch
    ):
        """Full searches fingerprint-identically compiled vs pure."""
        if backend_module.compiled is None:
            pytest.skip("compiled backend unavailable on this host")
        document = DocumentGenerator(seed=300 + seed)
        queries = QueryGenerator(seed=400 + seed,
                                 vocabulary=document.words)
        spec = document.spec()
        pool = queries.queries(6)

        def fingerprints():
            oracle = DocumentOracle(spec)
            prints = []
            for query in pool:
                try:
                    prints.append(response_fingerprint(
                        oracle.engine.search(query, k=2)
                    ))
                except Exception as error:  # typed errors must match too
                    prints.append((type(error).__name__, str(error)))
            return prints

        compiled_prints = fingerprints()
        monkeypatch.setattr(backend_module, "compiled", None)
        assert fingerprints() == compiled_prints

    @pytest.mark.parametrize("seed", range(4))
    def test_presence_bound_matches_uncached(self, seed, kernel_backend):
        document = DocumentGenerator(seed=500 + seed)
        queries = QueryGenerator(seed=600 + seed,
                                 vocabulary=document.words)
        oracle = DocumentOracle(document.spec())
        for query in queries.queries(5):
            terms = query_terms(query)
            if not terms:
                continue
            rules = oracle.engine.mine_rules(terms)
            lanes = list(dict.fromkeys(terms))
            lanes += sorted(rules.generated_keywords() - set(lanes))
            cache = PresenceBoundCache(terms, rules, lanes)
            uncached = MissingKeywordBound(terms, rules)
            for mask in range(1 << min(len(lanes), 8)):
                present = {
                    keyword
                    for lane, keyword in enumerate(lanes)
                    if mask & (1 << lane)
                }
                assert cache.lower_bound(mask) == uncached.lower_bound(
                    present
                ), (terms, mask)


#: Key universe for the exhaustive LCP sweeps: a root label, identical
#: paths, prefix chains, and sibling forks at two depths.
LCP_KEY_UNIVERSE = (
    (0,),
    (0, 0),
    (0, 0, 0),
    (0, 0, 1),
    (0, 1),
    (0, 1, 0, 2),
    (1,),
    (1, 0),
)


class TestMergedLcpEdgeCases:
    """Exhaustive Dewey LCP-table cases the stack route leans on."""

    def test_exhaustive_pairs(self, kernel_backend):
        for a in LCP_KEY_UNIVERSE:
            for b in LCP_KEY_UNIVERSE:
                columns = [ListColumns([a]), ListColumns([b])]
                lanes, lcps = merged_lcp(columns)
                naive = _naive_merged_lcp([[a], [b]])
                assert (list(lanes), list(lcps)) == naive, (a, b)

    def test_exhaustive_triples_with_multikey_lanes(self, kernel_backend):
        universe = LCP_KEY_UNIVERSE
        for i, a in enumerate(universe):
            for b in universe[i:]:
                for c in universe:
                    lane0 = sorted((a, b))
                    columns = [ListColumns(lane0), ListColumns([c])]
                    lanes, lcps = merged_lcp(columns)
                    naive = _naive_merged_lcp([lane0, [c]])
                    assert (list(lanes), list(lcps)) == naive, (a, b, c)

    def test_root_label_has_zero_lcp(self, kernel_backend):
        lanes, lcps = merged_lcp(
            [ListColumns([(0,)]), ListColumns([(0, 4, 1)])]
        )
        assert list(lcps) == [0, 1]
        assert list(lanes) == [0, 1]

    def test_identical_paths_tie_to_lowest_lane(self, kernel_backend):
        key = (0, 2, 1)
        lanes, lcps = merged_lcp(
            [ListColumns([key]), ListColumns([key]), ListColumns([key])]
        )
        assert list(lanes) == [0, 1, 2]
        assert list(lcps) == [0, len(key), len(key)]

    def test_one_is_prefix_of_other(self, kernel_backend):
        shorter = (0, 1)
        longer = (0, 1, 0, 0)
        # The shorter key sorts first; the adjacent LCP is its length.
        lanes, lcps = merged_lcp(
            [ListColumns([longer]), ListColumns([shorter])]
        )
        assert list(lanes) == [1, 0]
        assert list(lcps) == [0, len(shorter)]

    def test_empty_and_single_column(self, kernel_backend):
        assert merged_lcp([]) == ([], []) or tuple(
            map(list, merged_lcp([]))
        ) == ([], [])
        lanes, lcps = merged_lcp([ListColumns([(0, 1), (0, 2)])])
        assert list(lanes) == [0, 0]
        assert list(lcps) == [0, 1]


class TestSlcaRangeEdgeCases:
    def test_empty_range_returns_nothing(self, kernel_backend):
        column = ListColumns([(0, 1), (0, 2)])
        assert slca_ranges([(column, 0, 0), (column, 0, 2)]) == []
        assert slca_ranges([]) == []

    def test_identical_columns(self, kernel_backend):
        column = ListColumns([(0, 1, 0), (0, 2)])
        result = slca_ranges([(column, 0, 2), (column, 0, 2)])
        assert [tuple(d) for d in result] == [(0, 1, 0), (0, 2)]

    def test_subrange_matches_sliced_per_node(self, kernel_backend):
        keys_a = [(0, 1, 0), (0, 1, 2), (0, 3), (0, 4, 1)]
        keys_b = [(0, 1, 1), (0, 3, 0), (0, 4)]
        column_a, column_b = ListColumns(keys_a), ListColumns(keys_b)
        for a_lo in range(len(keys_a)):
            for a_hi in range(a_lo + 1, len(keys_a) + 1):
                reference = scan_eager_slca([
                    [Dewey.from_trusted(k) for k in keys_a[a_lo:a_hi]],
                    [Dewey.from_trusted(k) for k in keys_b],
                ])
                batch = slca_ranges([
                    (column_a, a_lo, a_hi),
                    (column_b, 0, column_b.size),
                ])
                assert [str(d) for d in batch] == [
                    str(d) for d in reference
                ]


class TestPartitionView:
    def test_view_matches_per_posting_regrouping(self, kernel_backend):
        keys_a = [(0,), (0, 1, 0), (0, 1, 2), (0, 3), (1, 0)]
        keys_b = [(0, 1, 1), (0, 3, 0), (2, 2)]
        columns = [ListColumns(keys_a), ListColumns(keys_b)]
        view = partition_view(columns)
        assert [pid for pid, _ in view] == [
            (0, 1), (0, 3), (1, 0), (2, 2)
        ]
        by_pid = dict(view)
        assert by_pid[(0, 1)] == [(1, 3), (0, 1)]
        assert by_pid[(0, 3)] == [(3, 4), (1, 2)]
        assert by_pid[(1, 0)] == [(4, 5), None]
        assert by_pid[(2, 2)] == [None, (2, 3)]
        assert columns[0].root_count == 1
        assert columns[1].root_count == 0
