"""Tests for the timing harness and table rendering."""

import pytest

from repro.errors import EvaluationError
from repro.eval import Stopwatch, format_series, format_table, time_call


class TestTimeCall:
    def test_returns_value_and_samples(self):
        calls = []
        result = time_call(lambda: calls.append(1) or 42, repeat=3, warmup=2)
        assert result.value == 42
        assert len(result.samples) == 3
        assert len(calls) == 5  # warmup + timed

    def test_statistics(self):
        result = time_call(lambda: None, repeat=5)
        assert result.best <= result.median
        assert result.best <= result.mean

    def test_median_even_count(self):
        result = time_call(lambda: None, repeat=4)
        assert result.median >= 0

    def test_repeat_validation(self):
        with pytest.raises(EvaluationError):
            time_call(lambda: None, repeat=0)


class TestStopwatch:
    def test_elapsed_positive(self):
        with Stopwatch() as sw:
            sum(range(1000))
        assert sw.elapsed > 0


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["longer", 2.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to equal width

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_series(self):
        text = format_series("Fig", [(1, 0.5), (2, 0.75)], "k", "seconds")
        assert "Fig" in text
        assert "k" in text and "seconds" in text
