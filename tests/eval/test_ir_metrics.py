"""Tests for the binary-relevance IR metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval import (
    average_precision,
    f_measure,
    mean_reciprocal_rank,
    precision_at,
    recall_at,
    reciprocal_rank,
)

items = st.lists(st.integers(0, 20), max_size=10, unique=True)
relevant_sets = st.sets(st.integers(0, 20), min_size=1, max_size=8)


class TestPrecisionRecall:
    def test_precision_at(self):
        assert precision_at(["a", "b", "c"], {"a", "c"}, 2) == 0.5
        assert precision_at(["a", "b", "c"], {"a", "c"}, 3) == pytest.approx(
            2 / 3
        )

    def test_precision_empty_results(self):
        assert precision_at([], {"a"}, 3) == 0.0

    def test_precision_invalid_k(self):
        with pytest.raises(EvaluationError):
            precision_at(["a"], {"a"}, 0)

    def test_recall(self):
        assert recall_at(["a", "b"], {"a", "c"}) == 0.5
        assert recall_at(["a", "b", "c"], {"a", "c"}, k=1) == 0.5

    def test_recall_undefined(self):
        with pytest.raises(EvaluationError):
            recall_at(["a"], set())

    @given(ranked=items, relevant=relevant_sets)
    def test_bounds(self, ranked, relevant):
        assert 0.0 <= precision_at(ranked, relevant, 5) <= 1.0
        assert 0.0 <= recall_at(ranked, relevant) <= 1.0


class TestFMeasure:
    def test_harmonic_mean(self):
        assert f_measure(0.5, 0.5) == 0.5
        assert f_measure(1.0, 0.0) == 0.0

    def test_beta_weighting(self):
        # beta > 1 weighs recall more heavily.
        assert f_measure(0.2, 0.8, beta=2.0) > f_measure(0.2, 0.8, beta=0.5)

    def test_negative_rejected(self):
        with pytest.raises(EvaluationError):
            f_measure(-0.1, 0.5)


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank(["a", "b"], {"a"}) == 1.0

    def test_later_position(self):
        assert reciprocal_rank(["x", "y", "a"], {"a"}) == pytest.approx(1 / 3)

    def test_no_hit(self):
        assert reciprocal_rank(["x", "y"], {"a"}) == 0.0

    def test_mrr(self):
        runs = [(["a"], {"a"}), (["x", "a"], {"a"})]
        assert mean_reciprocal_rank(runs) == pytest.approx(0.75)

    def test_mrr_empty_rejected(self):
        with pytest.raises(EvaluationError):
            mean_reciprocal_rank([])


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision(["a", "b"], {"a", "b"}) == 1.0

    def test_partial(self):
        # hits at ranks 1 and 3: (1/1 + 2/3) / 2
        assert average_precision(
            ["a", "x", "b"], {"a", "b"}
        ) == pytest.approx((1 + 2 / 3) / 2)

    def test_missing_relevant_penalized(self):
        assert average_precision(["a"], {"a", "b"}) == 0.5

    def test_undefined(self):
        with pytest.raises(EvaluationError):
            average_precision(["a"], set())

    @given(ranked=items, relevant=relevant_sets)
    def test_bounds(self, ranked, relevant):
        assert 0.0 <= average_precision(ranked, relevant) <= 1.0
