"""Tests for the simulated judge panel."""

from repro.eval import Judge, JudgePanel, base_grade
from repro.xmltree import Dewey


def d(text):
    return Dewey.parse(text)


class TestBaseGrade:
    def test_exact_intent_is_highly_relevant(self):
        grade = base_grade(
            ("xml", "query"), [d("0.1.2")],
            ("xml", "query"), [d("0.1.2")],
        )
        assert grade == 3

    def test_disjoint_is_irrelevant(self):
        grade = base_grade(
            ("aaa", "bbb"), [d("0.9")],
            ("xml", "query"), [d("0.1.2")],
        )
        assert grade == 0

    def test_partial_overlap_in_between(self):
        grade = base_grade(
            ("xml",), [d("0.1.2")],
            ("xml", "query"), [d("0.1.2")],
        )
        assert 1 <= grade <= 2

    def test_containing_result_counts(self):
        """An SLCA that contains the intended node covers it."""
        grade = base_grade(
            ("xml", "query"), [d("0.1")],
            ("xml", "query"), [d("0.1.2")],
        )
        assert grade == 3


class TestJudge:
    def test_deterministic_per_seed(self):
        args = (("xml",), [d("0.1")], ("xml", "query"), [d("0.1")])
        a = Judge(seed=4).grade(*args)
        b = Judge(seed=4).grade(*args)
        assert a == b

    def test_noise_stays_in_scale(self):
        judge = Judge(seed=1, disagreement=1.0)
        for _ in range(40):
            grade = judge.grade(
                ("xml", "query"), [d("0.1")], ("xml", "query"), [d("0.1")]
            )
            assert 0 <= grade <= 3

    def test_zero_disagreement_matches_base(self):
        judge = Judge(seed=9, disagreement=0.0)
        args = (("xml",), [d("0.1")], ("xml", "query"), [d("0.1")])
        assert judge.grade(*args) == base_grade(*args)


class TestPanel:
    def test_panel_size(self):
        assert len(JudgePanel(n=6).judges) == 6

    def test_gain_is_average(self):
        panel = JudgePanel(n=4, disagreement=0.0)
        gain = panel.gain(
            ("xml", "query"), [d("0.1")], ("xml", "query"), [d("0.1")]
        )
        assert gain == 3.0

    def test_gain_vector_order(self, figure1_engine):
        response = figure1_engine.search("database publication", k=3)
        panel = JudgePanel()
        gains = panel.gain_vector(
            response.refinements,
            ("database", "inproceedings"),
            [],
        )
        assert len(gains) == len(response.refinements)
        assert all(0 <= g <= 3 for g in gains)
