"""Tests for the cumulated-gain evaluation metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.eval import (
    average_cg,
    cg_at,
    cumulated_gain,
    discounted_cumulated_gain,
    ideal_gain_vector,
    normalized_dcg,
)

gains = st.lists(st.floats(min_value=0, max_value=3), max_size=8)


class TestCG:
    def test_paper_definition(self):
        """CG[1]=G[1], CG[i]=CG[i-1]+G[i] (Section VIII-C)."""
        assert cumulated_gain([3, 2, 0, 1]) == [3, 5, 5, 6]

    def test_empty(self):
        assert cumulated_gain([]) == []

    def test_cg_at(self):
        assert cg_at([3, 2, 0, 1], 1) == 3
        assert cg_at([3, 2, 0, 1], 4) == 6

    def test_cg_at_beyond_list(self):
        assert cg_at([3, 2], 4) == 5

    def test_cg_at_invalid_position(self):
        with pytest.raises(EvaluationError):
            cg_at([1], 0)

    @given(gains)
    def test_monotone_nondecreasing(self, gain_vector):
        cg = cumulated_gain(gain_vector)
        assert all(a <= b + 1e-12 for a, b in zip(cg, cg[1:]))

    @given(gains)
    def test_last_equals_sum(self, gain_vector):
        if gain_vector:
            assert cumulated_gain(gain_vector)[-1] == pytest.approx(
                sum(gain_vector)
            )


class TestDCG:
    def test_discounting(self):
        dcg = discounted_cumulated_gain([3, 3, 3], base=2.0)
        assert dcg[0] == 3
        assert dcg[1] == 6  # rank 2 < base is undiscounted per [27]
        assert dcg[2] == pytest.approx(6 + 3 / 1.5849625007211562)

    def test_ideal_vector_sorted(self):
        assert ideal_gain_vector([1, 3, 2]) == [3, 2, 1]

    @given(gains)
    def test_ndcg_bounded(self, gain_vector):
        for value in normalized_dcg(gain_vector):
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_perfect_ranking_ndcg_one(self):
        assert normalized_dcg([3, 2, 1]) == pytest.approx([1.0, 1.0, 1.0])


class TestAverage:
    def test_average_cg(self):
        vectors = [[3, 1], [1, 1]]
        assert average_cg(vectors, 1) == 2.0
        assert average_cg(vectors, 2) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            average_cg([], 1)
