"""Word lists feeding the synthetic corpus generators.

The bibliographic vocabulary is organized by research *area* so that
generated titles exhibit the keyword co-occurrence structure the
dependence score (Section IV-B) feeds on: terms of one area co-occur
within the same publications far more often than across areas.  The
lists deliberately include

* the exact terms of the paper's running examples (``online``,
  ``database``, ``machine``, ``learning``, ``skyline``, ``twig`` ...);
* splittable compounds (``online`` = ``on`` + ``line``, ``keyword`` =
  ``key`` + ``word``) so merge/split rules find material;
* synonym/acronym partners from :mod:`repro.lexicon.synonyms` and
  :mod:`repro.lexicon.acronyms`.
"""

from __future__ import annotations

FIRST_NAMES = [
    "john", "mary", "james", "linda", "robert", "patricia", "michael",
    "jennifer", "william", "elizabeth", "david", "barbara", "richard",
    "susan", "joseph", "jessica", "thomas", "sarah", "charles", "karen",
    "wei", "jun", "hui", "fang", "lei", "ming", "ying", "xiaofeng",
    "jiaheng", "zhifeng", "anna", "peter", "laura", "kevin", "diana",
    "victor", "rachel", "daniel", "grace", "henry",
]

LAST_NAMES = [
    "smith", "johnson", "lee", "brown", "garcia", "miller", "davis",
    "wilson", "anderson", "taylor", "thomas", "moore", "martin",
    "thompson", "white", "lopez", "clark", "lewis", "walker", "hall",
    "chen", "wang", "zhang", "liu", "yang", "huang", "zhao", "wu",
    "zhou", "xu", "sun", "ma", "zhu", "hu", "guo", "lin", "luo",
    "tang", "feng", "han",
]

#: Research areas: area name -> characteristic title terms.  Compounds
#: with natural split points come first so they dominate title heads.
AREAS = {
    "database": [
        "database", "query", "optimization", "transaction", "index",
        "join", "relational", "schema", "storage", "concurrency",
        "recovery", "view", "materialized", "skyline", "computation",
        "online", "processing", "efficient", "scalable", "distributed",
        "partitioning", "aggregation", "stream", "data", "base",
    ],
    "xml": [
        "xml", "keyword", "search", "twig", "pattern", "matching",
        "path", "structural", "semistructured", "dewey", "labeling",
        "holistic", "slca", "ranking", "semantic", "document",
        "element", "subtree", "query", "refinement", "efficient",
        "key", "word", "match",
    ],
    "ir": [
        "information", "retrieval", "ranking", "relevance", "feedback",
        "term", "weighting", "inverted", "corpus", "precision",
        "recall", "evaluation", "keyword", "search", "engine",
        "clustering", "classification", "text", "mining", "topic",
    ],
    "ml": [
        "machine", "learning", "training", "neural", "network",
        "kernel", "support", "vector", "classification", "regression",
        "clustering", "feature", "selection", "bayesian", "inference",
        "gradient", "model", "supervised", "probabilistic", "boosting",
    ],
    "web": [
        "web", "world", "wide", "www", "page", "link", "crawler",
        "search", "engine", "hyperlink", "online", "social", "graph",
        "internet", "service", "cache", "proxy", "ranking", "spam",
        "newspaper",
    ],
    "systems": [
        "operating", "system", "kernel", "scheduling", "memory",
        "cache", "file", "network", "protocol", "distributed",
        "consistency", "replication", "fault", "tolerance", "cluster",
        "virtual", "machine", "performance", "latency", "throughput",
    ],
}

CONFERENCES = [
    "sigmod", "vldb", "icde", "edbt", "cikm", "sigir", "www", "kdd",
    "icml", "nips", "sosp", "osdi", "podc", "pods",
]

JOURNALS = [
    "tods", "vldbj", "tkde", "tois", "jmlr", "cacm", "computer",
    "internet", "computing",
]

HOBBIES = [
    "reading", "hiking", "chess", "photography", "painting", "cooking",
    "swimming", "cycling", "gardening", "piano",
]

AFFILIATIONS = [
    "national", "university", "singapore", "renmin", "china", "tsinghua",
    "stanford", "berkeley", "michigan", "wisconsin", "cornell", "eth",
]

# ---------------------------------------------------------------------
# Baseball domain
# ---------------------------------------------------------------------
LEAGUES = ["american", "national"]

DIVISIONS = ["east", "central", "west"]

TEAM_CITIES = [
    "boston", "chicago", "detroit", "cleveland", "baltimore", "seattle",
    "oakland", "texas", "atlanta", "florida", "montreal", "philadelphia",
    "houston", "pittsburgh", "cincinnati", "colorado", "francisco",
    "diego", "angeles", "york",
]

TEAM_NICKNAMES = [
    "redsox", "whitesox", "tigers", "indians", "orioles", "mariners",
    "athletics", "rangers", "braves", "marlins", "expos", "phillies",
    "astros", "pirates", "reds", "rockies", "giants", "padres",
    "dodgers", "yankees",
]

POSITIONS = [
    "pitcher", "catcher", "shortstop", "outfielder", "first", "second",
    "third", "baseman", "designated", "hitter",
]


def area_terms(area):
    """Title terms of one area; raises KeyError for unknown areas."""
    return list(AREAS[area])


def all_title_terms():
    """Union of all area terms (deduplicated, sorted)."""
    terms = set()
    for words in AREAS.values():
        terms.update(words)
    return sorted(terms)
