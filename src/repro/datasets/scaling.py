"""Scaled corpus slices for the data-size experiment (Fig. 6).

The paper measures Top-3 refinement time over DBLP subsets of 20%-100%
of the full size.  :func:`scaled_subtree` produces the same kind of
prefix slice: the first ``fraction`` of the root's children (document
partitions), relabeled into a fresh, dense tree so every slice is a
well-formed document of its own.
"""

from __future__ import annotations

from ..errors import DatasetError
from ..xmltree.build import build_tree

#: The fractions Fig. 6 sweeps.
DEFAULT_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _spec_of(node):
    """Recursively convert a subtree back into a build spec."""
    return (
        node.tag,
        node.text or None,
        [_spec_of(child) for child in node.children],
    )


def scaled_subtree(tree, fraction):
    """A fresh tree containing the first ``fraction`` of partitions."""
    if not 0.0 < fraction <= 1.0:
        raise DatasetError(f"fraction must lie in (0, 1], got {fraction}")
    children = tree.root.children
    keep = max(1, round(len(children) * fraction))
    spec = (
        tree.root.tag,
        tree.root.text or None,
        [_spec_of(child) for child in children[:keep]],
    )
    return build_tree(spec)


def scaled_series(tree, fractions=DEFAULT_FRACTIONS):
    """``[(fraction, tree), ...]`` for a sweep of corpus sizes."""
    return [(fraction, scaled_subtree(tree, fraction)) for fraction in fractions]
