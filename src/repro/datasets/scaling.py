"""Scaled corpus slices for the data-size experiment (Fig. 6).

The paper measures Top-3 refinement time over DBLP subsets of 20%-100%
of the full size.  :func:`scaled_subtree` produces the same kind of
prefix slice: the first ``fraction`` of the root's children (document
partitions), relabeled into a fresh, dense tree so every slice is a
well-formed document of its own.

:func:`corpus_for_nodes` scales the other way — *up*, toward the
paper's real 420MB snapshot: it sizes the synthetic DBLP generator to
hit a target node count, so the paging benchmark can sweep
multi-million-node corpora and measure how resident memory and cold
query latency grow with corpus size under the blocked snapshot layout.
"""

from __future__ import annotations

from ..errors import DatasetError
from ..xmltree.build import build_tree
from .dblp import generate_dblp

#: The fractions Fig. 6 sweeps.
DEFAULT_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)

#: Node-count targets for the full beyond-RAM paging sweep.  The top
#: size is a multi-million-node corpus — far larger than any fixture —
#: so RSS growth between the points exposes whether the blocked
#: snapshot actually leaves cold postings on disk.
DEFAULT_NODE_TARGETS = (250_000, 1_000_000, 4_000_000)

#: Reduced targets for the CI smoke sweep: same shape, minutes less
#: generation time, still a 9x size spread for the sub-linearity gate.
SMOKE_NODE_TARGETS = (20_000, 60_000, 180_000)

#: Authors generated to estimate the nodes-per-author ratio of one
#: (seed, config) combination before committing to the full build.
_PROBE_AUTHORS = 64

#: Scaled corpora plant a unique ``<id>`` token on every Nth author by
#: default (see ``DBLPConfig.rare_token_period``): the long-tail
#: vocabulary a selective beyond-RAM workload queries.  Because every
#: size is generated with the same seed, a smaller corpus's authors —
#: and therefore its rare tokens — are a prefix of every larger one.
RARE_TOKEN_PERIOD = 16


def _spec_of(node):
    """Recursively convert a subtree back into a build spec."""
    return (
        node.tag,
        node.text or None,
        [_spec_of(child) for child in node.children],
    )


def scaled_subtree(tree, fraction):
    """A fresh tree containing the first ``fraction`` of partitions."""
    if not 0.0 < fraction <= 1.0:
        raise DatasetError(f"fraction must lie in (0, 1], got {fraction}")
    children = tree.root.children
    keep = max(1, round(len(children) * fraction))
    spec = (
        tree.root.tag,
        tree.root.text or None,
        [_spec_of(child) for child in children[:keep]],
    )
    return build_tree(spec)


def scaled_series(tree, fractions=DEFAULT_FRACTIONS):
    """``[(fraction, tree), ...]`` for a sweep of corpus sizes."""
    return [(fraction, scaled_subtree(tree, fraction)) for fraction in fractions]


def authors_for_nodes(target_nodes, seed=7, **overrides):
    """The author count whose generated tree is ~``target_nodes`` big.

    Generates a small probe corpus with the same seed and generator
    knobs, measures its nodes-per-author ratio, and scales.  The ratio
    is an average over random per-author structure, so the realized
    corpus lands within a few percent of the target — close enough for
    a size sweep whose points are 3-4x apart.
    """
    if target_nodes < 1:
        raise DatasetError(
            f"target_nodes must be >= 1, got {target_nodes}"
        )
    overrides.setdefault("rare_token_period", RARE_TOKEN_PERIOD)
    probe = generate_dblp(
        num_authors=_PROBE_AUTHORS, seed=seed, **overrides
    )
    per_author = max(1.0, (len(probe) - 1) / _PROBE_AUTHORS)
    return max(1, round(target_nodes / per_author))


def corpus_for_nodes(target_nodes, seed=7, **overrides):
    """A synthetic DBLP tree of approximately ``target_nodes`` nodes.

    The paging benchmark's corpus factory: one partition per author as
    always, just enough authors to hit the node target.  Determinism
    carries over from :func:`repro.datasets.dblp.generate_dblp` — the
    same (target, seed, overrides) triple always builds the identical
    tree, so frozen snapshots of a given size are reproducible.
    """
    overrides.setdefault("rare_token_period", RARE_TOKEN_PERIOD)
    authors = authors_for_nodes(target_nodes, seed=seed, **overrides)
    return generate_dblp(num_authors=authors, seed=seed, **overrides)
