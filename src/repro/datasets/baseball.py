"""Synthetic Baseball dataset generator.

Stands in for the classic ``baseball.xml`` sample the paper uses as its
second (small, deeply structured) corpus.  The structure follows the
original file::

    <season>
      <year>1998</year>
      <league>
        <name>american</name>
        <division>
          <name>east</name>
          <team>
            <name>...</name> <city>...</city>
            <player>
              <surname>...</surname> <given>...</given>
              <position>...</position>
              <statistics>
                <games>..</games> <hits>..</hits> <runs>..</runs>
                <average>..</average>
              </statistics>
            </player>*
          </team>*
        </division>*
      </league>*
    </season>

Unlike DBLP (one partition per author), the Baseball root has only a
handful of children — the paper's Fig. 5(b) uses it precisely because
its shape stresses the algorithms differently.
"""

from __future__ import annotations

import random

from ..errors import DatasetError
from ..xmltree.build import build_tree
from . import vocabulary


class BaseballConfig:
    """Knobs for the Baseball generator."""

    def __init__(
        self,
        teams_per_division=3,
        players_per_team=10,
        season_year=1998,
        seed=11,
    ):
        if teams_per_division < 1 or players_per_team < 1:
            raise DatasetError("team/player counts must be >= 1")
        self.teams_per_division = teams_per_division
        self.players_per_team = players_per_team
        self.season_year = season_year
        self.seed = seed


def _player(rng):
    return (
        "player",
        None,
        [
            ("surname", rng.choice(vocabulary.LAST_NAMES)),
            ("given", rng.choice(vocabulary.FIRST_NAMES)),
            ("position", rng.choice(vocabulary.POSITIONS)),
            (
                "statistics",
                None,
                [
                    ("games", str(rng.randint(20, 162))),
                    ("hits", str(rng.randint(0, 220))),
                    ("runs", str(rng.randint(0, 130))),
                    ("average", f"0 {rng.randint(180, 360)}"),
                ],
            ),
        ],
    )


def _team(rng, config, used_names):
    available = [n for n in vocabulary.TEAM_NICKNAMES if n not in used_names]
    if not available:
        available = vocabulary.TEAM_NICKNAMES
    name = rng.choice(available)
    used_names.add(name)
    return (
        "team",
        None,
        [
            ("name", name),
            ("city", rng.choice(vocabulary.TEAM_CITIES)),
        ]
        + [_player(rng) for _ in range(config.players_per_team)],
    )


def generate_baseball(config=None, **overrides):
    """Generate a synthetic Baseball season document tree."""
    if config is None:
        config = BaseballConfig(**overrides)
    elif overrides:
        raise DatasetError("pass either a config object or overrides")
    rng = random.Random(config.seed)
    used_names = set()
    leagues = []
    for league_name in vocabulary.LEAGUES:
        divisions = []
        for division_name in vocabulary.DIVISIONS:
            teams = [
                _team(rng, config, used_names)
                for _ in range(config.teams_per_division)
            ]
            divisions.append(
                ("division", None, [("name", division_name)] + teams)
            )
        leagues.append(("league", None, [("name", league_name)] + divisions))
    return build_tree(
        ("season", None, [("year", str(config.season_year))] + leagues)
    )
