"""Synthetic DBLP-style bibliography generator.

Stands in for the paper's 420MB DBLP snapshot [25].  The generated
document mirrors the structure of the paper's Figure 1::

    <bib>
      <author>
        <name>...</name>
        <affiliation>...</affiliation>?
        <publications>
          <inproceedings>
            <title>...</title> <booktitle>...</booktitle> <year>...</year>
          </inproceedings>*
          <article>
            <title>...</title> <journal>...</journal> <year>...</year>
          </article>*
          <book> <title>...</title> <publisher>...</publisher> <year/> </book>?
        </publications>
        <hobby>...</hobby>?
      </author>*
    </bib>

Properties engineered to match what the refinement algorithms are
sensitive to on real DBLP:

* **partition fanout** — one partition per author (Definition 6.1), so
  Algorithm 2 gets realistic partition counts;
* **skewed list lengths** — each author draws a primary research area and
  titles sample that area's terms with a few cross-area terms, so some
  keywords (``query``, ``search``) are frequent while others
  (``skyline``, ``dewey``) are rare — the skew SLE exploits;
* **keyword dependence** — area co-occurrence gives the dependence
  score signal;
* determinism — everything derives from the ``seed``.
"""

from __future__ import annotations

import random

from ..errors import DatasetError
from ..xmltree.build import build_tree
from . import vocabulary


class DBLPConfig:
    """Knobs for the DBLP generator."""

    def __init__(
        self,
        num_authors=200,
        min_pubs=1,
        max_pubs=8,
        min_title_terms=3,
        max_title_terms=7,
        year_range=(1990, 2007),
        hobby_probability=0.25,
        affiliation_probability=0.4,
        book_probability=0.08,
        article_probability=0.35,
        cross_area_probability=0.15,
        rare_token_period=0,
        seed=7,
    ):
        if num_authors < 1:
            raise DatasetError("num_authors must be >= 1")
        if min_pubs < 1 or max_pubs < min_pubs:
            raise DatasetError("invalid publication count range")
        self.num_authors = num_authors
        self.min_pubs = min_pubs
        self.max_pubs = max_pubs
        self.min_title_terms = min_title_terms
        self.max_title_terms = max_title_terms
        self.year_range = year_range
        self.hobby_probability = hobby_probability
        self.affiliation_probability = affiliation_probability
        self.book_probability = book_probability
        self.article_probability = article_probability
        self.cross_area_probability = cross_area_probability
        #: Every Nth author (0 = off) carries a unique ``<id>`` token
        #: (``a000016``-style).  Real DBLP's vocabulary is long-tailed
        #: — author names and rare title words occur a handful of
        #: times no matter how big the corpus — while the synthetic
        #: area vocabulary is bounded, so every generated term's list
        #: grows linearly with the corpus.  The planted tokens restore
        #: the tail: they are what a selective (point-lookup) query
        #: workload can target.  Deliberately deterministic and drawn
        #: outside the rng stream, so enabling them never perturbs the
        #: rest of a seeded corpus.
        self.rare_token_period = rare_token_period
        self.seed = seed


def _title(rng, area, config):
    terms = vocabulary.area_terms(area)
    count = rng.randint(config.min_title_terms, config.max_title_terms)
    words = []
    for _ in range(count):
        if rng.random() < config.cross_area_probability:
            other = rng.choice(sorted(vocabulary.AREAS))
            words.append(rng.choice(vocabulary.area_terms(other)))
        else:
            words.append(rng.choice(terms))
    return " ".join(words)


def _publication(rng, area, config):
    year = str(rng.randint(*config.year_range))
    title = _title(rng, area, config)
    roll = rng.random()
    if roll < config.book_probability:
        return (
            "book",
            None,
            [
                ("title", title),
                ("publisher", rng.choice(vocabulary.AFFILIATIONS)),
                ("year", year),
            ],
        )
    if roll < config.book_probability + config.article_probability:
        return (
            "article",
            None,
            [
                ("title", title),
                ("journal", rng.choice(vocabulary.JOURNALS)),
                ("year", year),
            ],
        )
    return (
        "inproceedings",
        None,
        [
            ("title", title),
            ("booktitle", rng.choice(vocabulary.CONFERENCES)),
            ("year", year),
        ],
    )


def rare_token(ordinal):
    """The unique token planted on author ``ordinal`` (when enabled)."""
    return f"a{ordinal:06d}"


def _author(rng, config, ordinal=0):
    name = f"{rng.choice(vocabulary.FIRST_NAMES)} {rng.choice(vocabulary.LAST_NAMES)}"
    area = rng.choice(sorted(vocabulary.AREAS))
    children = [("name", name)]
    period = config.rare_token_period
    if period and ordinal % period == 0:
        children.append(("id", rare_token(ordinal)))
    if rng.random() < config.affiliation_probability:
        children.append(
            (
                "affiliation",
                " ".join(
                    rng.sample(vocabulary.AFFILIATIONS, rng.randint(1, 3))
                ),
            )
        )
    pubs = [
        _publication(rng, area, config)
        for _ in range(rng.randint(config.min_pubs, config.max_pubs))
    ]
    children.append(("publications", None, pubs))
    if rng.random() < config.hobby_probability:
        children.append(("hobby", rng.choice(vocabulary.HOBBIES)))
    return ("author", None, children)


def generate_dblp(config=None, **overrides):
    """Generate a synthetic DBLP document tree.

    Accepts either a :class:`DBLPConfig` or keyword overrides, e.g.
    ``generate_dblp(num_authors=500, seed=3)``.
    """
    if config is None:
        config = DBLPConfig(**overrides)
    elif overrides:
        raise DatasetError("pass either a config object or overrides")
    rng = random.Random(config.seed)
    authors = [
        _author(rng, config, ordinal)
        for ordinal in range(config.num_authors)
    ]
    return build_tree(("bib", None, authors))
