"""Synthetic corpora standing in for the paper's DBLP and Baseball data.

Both generators are deterministic given a seed and produce
:class:`~repro.xmltree.tree.XMLTree` objects directly (no text
round-trip needed); :mod:`repro.datasets.scaling` slices them for the
data-size sweep of Fig. 6.
"""

from .baseball import BaseballConfig, generate_baseball
from .dblp import DBLPConfig, generate_dblp
from .scaling import (
    DEFAULT_FRACTIONS,
    DEFAULT_NODE_TARGETS,
    SMOKE_NODE_TARGETS,
    authors_for_nodes,
    corpus_for_nodes,
    scaled_series,
    scaled_subtree,
)
from .vocabulary import AREAS, all_title_terms, area_terms

__all__ = [
    "DBLPConfig",
    "generate_dblp",
    "BaseballConfig",
    "generate_baseball",
    "scaled_subtree",
    "scaled_series",
    "DEFAULT_FRACTIONS",
    "DEFAULT_NODE_TARGETS",
    "SMOKE_NODE_TARGETS",
    "authors_for_nodes",
    "corpus_for_nodes",
    "AREAS",
    "area_terms",
    "all_title_terms",
]
