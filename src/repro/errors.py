"""Exception hierarchy for the XRefine reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  Subsystem
errors add context that is useful for debugging (byte offsets for parse
errors, key material for storage errors, and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class XMLError(ReproError):
    """Base class for XML tokenizer / parser / tree errors."""


class XMLSyntaxError(XMLError):
    """The input document is not well formed.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    line, column:
        1-based position of the offending character, when known.
    """

    def __init__(self, message, line=None, column=None):
        self.message = message
        self.line = line
        self.column = column
        if line is not None:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)


class DeweyError(ReproError):
    """An invalid Dewey label string or component was supplied."""


class StorageError(ReproError):
    """Base class for the embedded key-value store."""


class StorageClosedError(StorageError):
    """An operation was attempted on a closed store."""


class PageError(StorageError):
    """A page could not be read, written or allocated."""


class KeyEncodingError(StorageError):
    """A key or value could not be encoded/decoded for storage."""


class IndexError_(ReproError):
    """Base class for index construction and lookup errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexingError`` from the package
    root.
    """


class IndexingError(IndexError_):
    """The index is missing, stale or inconsistent with the document."""


class QueryError(ReproError):
    """An invalid keyword query was supplied (e.g. empty)."""


class RuleError(ReproError):
    """A malformed refinement rule was supplied."""


class RefinementError(ReproError):
    """A refinement algorithm was invoked with inconsistent inputs."""


class ServeError(ReproError):
    """Base class for the always-on serving daemon (:mod:`repro.serve`)."""


class ServerOverloadedError(ServeError):
    """Admission control rejected a request: the daemon is at capacity.

    Mapped to HTTP 429 by the serving layer.  Carries ``retry_after``
    (seconds, advisory) so well-behaved clients can back off.
    """

    def __init__(self, message, retry_after=0.05):
        super().__init__(message)
        self.retry_after = retry_after


class DatasetError(ReproError):
    """A synthetic dataset generator was misconfigured."""


class EvaluationError(ReproError):
    """An effectiveness/efficiency evaluation harness was misused."""
