"""Result objects shared by the three refinement algorithms.

Every algorithm — stack-refine, Partition, SLE — answers a query with a
:class:`RefinementResponse`: whether the original query needed
refinement (Definition 3.4), the original query's meaningful SLCAs when
it did not, the ranked refined queries with *their* results when it
did, the inferred search-for candidates, and scan accounting that the
tests use to assert the one-scan guarantees of Theorems 1 and 2.
"""

from __future__ import annotations


class ScanStats:
    """Inverted-list access accounting for one query evaluation."""

    __slots__ = (
        "postings_scanned",
        "probes",
        "dp_invocations",
        "slca_invocations",
        "partitions_visited",
        "partitions_skipped",
        "lists_opened",
        "elapsed_seconds",
    )

    def __init__(self):
        self.postings_scanned = 0
        self.probes = 0
        self.dp_invocations = 0
        self.slca_invocations = 0
        self.partitions_visited = 0
        self.partitions_skipped = 0
        self.lists_opened = 0
        self.elapsed_seconds = 0.0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return (
            f"ScanStats(scanned={self.postings_scanned}, probes={self.probes}, "
            f"dp={self.dp_invocations}, slca={self.slca_invocations})"
        )


class RankedRefinement:
    """One refined query with its results and ranking breakdown."""

    __slots__ = (
        "rq",
        "slcas",
        "rank_score",
        "similarity_score",
        "dependence_score",
    )

    def __init__(
        self,
        rq,
        slcas,
        rank_score=0.0,
        similarity_score=0.0,
        dependence_score=0.0,
    ):
        self.rq = rq
        self.slcas = list(slcas)
        self.rank_score = rank_score
        self.similarity_score = similarity_score
        self.dependence_score = dependence_score

    @property
    def keywords(self):
        return self.rq.keywords

    @property
    def dissimilarity(self):
        return self.rq.dissimilarity

    @property
    def result_count(self):
        return len(self.slcas)

    def copy(self):
        """A mutation-isolated duplicate (fresh ``slcas`` list).

        The :class:`~repro.core.common.RefinedQuery` is shared — it is
        treated as immutable everywhere — but the result-label list is
        the caller-facing mutable surface and gets its own copy.
        """
        return RankedRefinement(
            self.rq,
            self.slcas,
            self.rank_score,
            self.similarity_score,
            self.dependence_score,
        )

    def __repr__(self):
        return (
            f"RankedRefinement({{{', '.join(self.rq.keywords)}}}, "
            f"dSim={self.rq.dissimilarity}, results={len(self.slcas)}, "
            f"rank={self.rank_score:.4f})"
        )


class RefinementResponse:
    """Complete answer for one keyword query."""

    __slots__ = (
        "query",
        "needs_refinement",
        "original_results",
        "refinements",
        "candidates",
        "search_for",
        "stats",
        "plan",
    )

    def __init__(
        self,
        query,
        needs_refinement,
        original_results,
        refinements,
        search_for,
        stats,
        candidates=None,
        plan=None,
    ):
        self.query = tuple(query)
        self.needs_refinement = needs_refinement
        self.original_results = list(original_results)
        self.refinements = list(refinements)
        #: The full ranked candidate list before Top-K truncation (the
        #: paper's 2K working set); equals ``refinements`` for Top-1
        #: algorithms.
        self.candidates = (
            list(candidates) if candidates is not None else list(refinements)
        )
        self.search_for = list(search_for)
        self.stats = stats
        #: The planner's :class:`~repro.plan.planner.QueryPlan` when the
        #: engine evaluated this response with ``algorithm="auto"`` or
        #: ``explain=True``; ``None`` otherwise.  Not part of the
        #: answer fingerprint.
        self.plan = plan

    def copy(self):
        """A mutation-isolated duplicate of this response.

        Every caller-facing list — ``original_results``,
        ``refinements`` (and each refinement's ``slcas``),
        ``candidates``, ``search_for`` — is freshly allocated, so a
        caller sorting or truncating one returned response can never
        corrupt another caller's answer.  :class:`RankedRefinement`
        objects shared between ``refinements`` and ``candidates`` keep
        that sharing in the copy (they are the same ranked entry, not
        coincidentally equal ones); immutable leaves (``rq``, Dewey
        labels) and the ``stats``/``plan`` records are shared.
        """
        copies = {id(r): r.copy() for r in self.refinements}
        for candidate in self.candidates:
            if id(candidate) not in copies:
                copies[id(candidate)] = candidate.copy()
        clone = RefinementResponse(
            self.query,
            self.needs_refinement,
            self.original_results,
            [copies[id(r)] for r in self.refinements],
            self.search_for,
            self.stats,
            candidates=[copies[id(r)] for r in self.candidates],
            plan=self.plan,
        )
        return clone

    def top(self, k=1):
        """The best ``k`` refined queries (best first)."""
        return self.refinements[:k]

    @property
    def best(self):
        """The best refined query, or ``None``."""
        return self.refinements[0] if self.refinements else None

    def __repr__(self):
        status = "needs refinement" if self.needs_refinement else "direct hit"
        return (
            f"RefinementResponse({{{', '.join(self.query)}}}: {status}, "
            f"{len(self.refinements)} refinements)"
        )
