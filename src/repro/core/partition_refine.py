"""Algorithm 2 — partition-based Top-K query refinement (Section VI-B).

The document is processed as the ordered list of its partitions
(Definition 6.1: the subtrees rooted at the children of the document
root).  The partitions, and every keyword's posting range within each,
come precomputed from the kernel layer's partition tables
(:func:`repro.kernels.partition_view_masked` — binary-search jumps
over the packed key columns, never a per-posting cursor walk, with
each partition's presence mask and posting count precomputed by the
same merge); the set ``T`` of locally present keywords feeds one
``getTopOptimalRQs`` call, candidates pass the vectorized admission
sweep (:func:`repro.kernels.admission_sweep`) before the exact
per-candidate checks, and qualifying candidates are admitted to the
Top-2K :class:`RQSortedList`; their SLCA results are computed *inside
the partition* by the columnar scan-eager kernel (the orthogonality
of Lemma 3).

The three optimizations the paper credits the approach with are all
implemented and observable in :class:`~repro.core.result.ScanStats`:

1. computations whose SLCA would be the (meaningless) document root
   never happen — partitions never produce the root;
2. a partition whose best local candidate cannot beat the current
   2K-th dissimilarity skips both the DP beam *and* the SLCA
   computation (``partitions_skipped``) — the presence pre-check is
   the block-max bound served from a per-mask memo
   (:class:`repro.kernels.PresenceBoundCache`);
3. within a partition, one DP call covers every RQ candidate no matter
   how many matches it has there (``dp_invocations``).
"""

from __future__ import annotations

import time

from ..kernels import (
    PresenceBoundCache,
    admission_sweep,
    columns_for,
    partition_view_masked,
    prepare_beam,
    slca_ranges,
)
from ..lexicon.rules import RuleSet
from ..perf.profiling import phase
from .candidates import RQSortedList
from .common import QueryContext, rank_candidates
from .dp import get_top_optimal_rqs
from .result import RefinementResponse, ScanStats


def partition_refine(index, query, rules=None, model=None, k=1,
                     skip_optimization=True, dp_memos=None):
    """Run Algorithm 2; returns the Top-``k`` refined queries.

    Parameters as :func:`~repro.core.stack_refine.stack_refine`, plus
    ``k`` — the number of ranked refined queries wanted.  The working
    candidate list holds ``2k`` entries, as in the paper.
    ``skip_optimization=False`` disables the partition-pruning bound
    (optimization 2 of Section VI-B) for the ablation benchmark.
    ``dp_memos`` is an optional ``(probe_memo, beam_memo)`` pair of
    dicts keyed on the present-keyword frozenset — the DP is a pure
    function of ``(query, present, rules, limit)``, so the planner
    shares them across calls (the serial analogue of the shard
    workers' ``dp_cache``); memoized hits still count in
    ``stats.dp_invocations``, matching the sharded kernel.
    """
    from .ranking.model import full_model

    rules = rules if rules is not None else RuleSet()
    model = model if model is not None else full_model()
    started = time.perf_counter()

    context = QueryContext(index, query, rules)
    stats = ScanStats()
    stats.lists_opened = len(context.keyword_space)
    query_key = context.query_key()
    query_set = set(context.query)
    probe_memo, beam_memo = dp_memos if dp_memos is not None else ({}, {})

    # One lane per distinct keyword (cursors were a dict, so repeated
    # query terms share a single scan), in keyword-space order.
    lanes = list(dict.fromkeys(context.keyword_space))
    with phase("decode"):
        columns = {keyword: columns_for(context.lists[keyword])
                   for keyword in lanes}
    lane_columns = [columns[keyword] for keyword in lanes]
    presence_bound = PresenceBoundCache(context.query, rules, lanes)

    # Presence questions become bitmask arithmetic against the view's
    # per-partition mask: one bit per lane, set-inclusion as AND.
    bit_of_keyword = {
        keyword: 1 << lane for lane, keyword in enumerate(lanes)
    }
    query_mask = 0
    for keyword in query_set:
        query_mask |= bit_of_keyword[keyword]
    present_of_mask = {}  # lane mask -> frozenset of present keywords
    key_masks = {}        # rq key -> lane mask
    prepared_memo = {}    # present frozenset -> PreparedBeam

    def mask_of_key(key):
        cached = key_masks.get(key)
        if cached is None:
            cached = 0
            for keyword in key:
                cached |= bit_of_keyword[keyword]
            key_masks[key] = cached
        return cached

    def build_sublists(spans):
        # getKLPartition, deferred: only partitions that actually run
        # an SLCA pay for the keyword -> (columns, lo, hi) dict.
        built = {}
        for lane, span in enumerate(spans):
            if span is not None:
                built[lanes[lane]] = (
                    lane_columns[lane], span[0], span[1]
                )
        return built

    sorted_list = RQSortedList(capacity=max(2 * k, 2))
    candidate_map = {}  # rq key -> (RefinedQuery, [Dewey])
    needs_refine = True
    original_results = []

    # Matches on the document root itself can never yield a meaningful
    # result; they are consumed (and accounted) outside any partition.
    stats.postings_scanned += sum(
        columns[keyword].root_count for keyword in lanes
    )

    with phase("merge"):
        merged_view = partition_view_masked(lane_columns)
    with phase("admit"):
        for _partition_key, spans, mask, postings in merged_view:
            stats.partitions_visited += 1
            stats.postings_scanned += postings
            sublists = None  # keyword -> (ListColumns, lo, hi), on demand

            # Original-query check: Q has all keywords in this partition.
            if query_mask and mask & query_mask == query_mask:
                stats.slca_invocations += 1
                sublists = build_sublists(spans)
                slcas = slca_ranges(
                    [sublists[keyword] for keyword in context.query]
                )
                meaningful = context.meaningful_only(slcas)
                if meaningful:
                    needs_refine = False
                    original_results.extend(meaningful)

            if not needs_refine:
                continue

            def accumulate_kept(computed_keys):
                """Partition-local results for already-kept candidates.

                A kept candidate's result set accumulates across *every*
                partition containing all its keywords; pruning only decides
                whether new candidates are searched for.  Without this pass
                a partition skipped by the dissimilarity bound (or a kept
                RQ crowded out of the local DP beam by better local
                candidates) silently loses results, diverging from SLE's
                whole-list step 2.
                """
                nonlocal sublists
                for kept in sorted_list.queries():
                    if kept.key in computed_keys or kept.key == query_key:
                        continue
                    kept_mask = mask_of_key(kept.key)
                    if mask & kept_mask != kept_mask:
                        continue
                    stats.slca_invocations += 1
                    if sublists is None:
                        sublists = build_sublists(spans)
                    slcas = slca_ranges(
                        [sublists[keyword] for keyword in kept.keywords]
                    )
                    meaningful = context.meaningful_only(slcas)
                    if meaningful:
                        record = candidate_map.setdefault(kept.key, (kept, []))
                        record[1].extend(meaningful)

            # Optimization 2: if even the best possible candidate here
            # cannot enter the Top-2K list, skip DP + SLCA entirely.  The
            # cheap bound is a 1-beam DP; when the full list's threshold is
            # infinite the bound can never prune, so run the beam directly.
            # The bound is strict: at equal dissimilarity a candidate can
            # still displace a kept entry under the deterministic
            # ``(dissimilarity, keyword set)`` admission order, so tie
            # partitions must run the full beam.
            threshold = sorted_list.max_dissimilarity()
            present = present_of_mask.get(mask)
            if present is None:
                present = frozenset(
                    lanes[lane] for lane in range(len(lanes))
                    if mask >> lane & 1
                )
                present_of_mask[mask] = present
            present_key = present
            if skip_optimization and sorted_list.is_full:
                # Presence pre-check: the block-max presence bound needs
                # no DP at all; the strict comparison mirrors the probe's,
                # so pruning here is answer-identical.
                if presence_bound.lower_bound(mask) > threshold:
                    accumulate_kept(frozenset())
                    stats.partitions_skipped += 1
                    continue
                stats.dp_invocations += 1
                probe = probe_memo.get(present_key)
                if probe is None:
                    probe = get_top_optimal_rqs(context.query, present, rules, 1)
                    probe_memo[present_key] = probe
                if not probe or probe[0].dissimilarity > threshold:
                    accumulate_kept(frozenset())
                    stats.partitions_skipped += 1
                    continue

            stats.dp_invocations += 1
            local_candidates = beam_memo.get(present_key)
            if local_candidates is None:
                local_candidates = get_top_optimal_rqs(
                    context.query, present, rules, sorted_list.capacity
                )
                beam_memo[present_key] = local_candidates
            prepared = prepared_memo.get(present_key)
            if prepared is None:
                prepared = prepare_beam(local_candidates)
                prepared_memo[present_key] = prepared
            computed_keys = set()
            # The vectorized admission sweep pre-filters the beam against
            # the list's entry-time threshold; survivors re-run the exact
            # per-candidate admission checks (the threshold only tightens
            # within the loop, so the sweep is a sound superset — see
            # kernels/scoring.py).
            for index_in_beam in admission_sweep(
                prepared, sorted_list, query_key
            ):
                rq = local_candidates[index_in_beam]
                already_kept = sorted_list.has_key(rq.key)
                if not already_kept and not sorted_list.would_admit(rq):
                    continue
                # Compute this RQ's SLCAs within the partition first: only
                # candidates with a *meaningful* match may enter the list.
                stats.slca_invocations += 1
                if sublists is None:
                    sublists = build_sublists(spans)
                slcas = slca_ranges(
                    [sublists[keyword] for keyword in rq.keywords]
                )
                computed_keys.add(rq.key)
                meaningful = context.meaningful_only(slcas)
                if not meaningful:
                    continue
                if sorted_list.insert(rq) or already_kept:
                    record = candidate_map.setdefault(rq.key, (rq, []))
                    record[1].extend(meaningful)
            accumulate_kept(computed_keys)

    # Keep only candidates that survived in the Top-2K list, then apply
    # the full ranking model (line 19).  Pair each key's accumulated
    # results with the *sorted list's* RefinedQuery object: a beam
    # restricted to one partition's keywords can report a higher
    # dissimilarity for the same keyword set than another partition's,
    # and the sorted list holds the minimum seen.
    surviving = {
        rq.key: (rq, candidate_map[rq.key][1])
        for rq in sorted_list.queries()
        if rq.key in candidate_map
    }
    ranked = (
        rank_candidates(context, model, surviving) if needs_refine else []
    )
    if not needs_refine:
        original_results.sort()

    stats.elapsed_seconds = time.perf_counter() - started
    return RefinementResponse(
        query=context.query,
        needs_refinement=needs_refine,
        original_results=original_results if not needs_refine else [],
        refinements=ranked[:k],
        candidates=ranked,
        search_for=context.search_for,
        stats=stats,
    )
