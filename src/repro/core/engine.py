"""XRefine — the keyword search engine prototype (Section I-VIII).

:class:`XRefine` wires the whole stack together:

* parse/accept an XML document and build the Section-VII indexes;
* mine the pertinent refinement rule set for each query (the role the
  paper's human annotators played);
* run one of the three refinement algorithms, returning the original
  query's meaningful SLCAs when no refinement is needed and the ranked
  Top-K refined queries (with their results) when it is;
* expose plain SLCA search over the same index for baselining.

Typical use::

    from repro import XRefine

    engine = XRefine.from_xml(open("bib.xml").read())
    response = engine.search("on line data base", k=3)
    if response.needs_refinement:
        for refinement in response.refinements:
            print(refinement.keywords, refinement.result_count)
"""

from __future__ import annotations

from ..errors import QueryError
from ..index.builder import build_document_index
from ..index.tokenize_text import query_terms
from ..lexicon.mining import RuleMiner
from ..slca.elca import elca
from ..slca.indexed_lookup import indexed_lookup_slca
from ..slca.multiway import multiway_slca
from ..slca.scan_eager import scan_eager_slca
from ..slca.stack import stack_slca
from ..xmltree.parser import parse
from .partition_refine import partition_refine
from .ranking.model import full_model
from .result import RefinementResponse
from .short_list_eager import short_list_eager
from .stack_refine import stack_refine

#: Refinement algorithm registry.
ALGORITHMS = ("partition", "sle", "stack")
#: Plain-SLCA algorithm registry.
SLCA_ALGORITHMS = {
    "stack": stack_slca,
    "scan": scan_eager_slca,
    "indexed": indexed_lookup_slca,
    "multiway": multiway_slca,
    # ELCA is a different (larger) conjunctive answer set, exposed for
    # comparison; see repro.slca.elca.
    "elca": elca,
}


class XRefine:
    """The automatic XML keyword query refinement engine.

    Parameters
    ----------
    index:
        A prebuilt :class:`~repro.index.builder.DocumentIndex`.
    model:
        Ranking model (Formula 10); the full RS0 model by default.
    miner:
        Rule miner; constructed over the corpus vocabulary by default.
    """

    def __init__(self, index, model=None, miner=None):
        self.index = index
        self.model = model if model is not None else full_model()
        if miner is None:
            miner = RuleMiner(index.inverted.keywords())
        self.miner = miner

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, tree, model=None, miner=None):
        """Build the engine (and all indexes) from a parsed tree."""
        return cls(build_document_index(tree), model=model, miner=miner)

    @classmethod
    def from_xml(cls, text, model=None, miner=None):
        """Build the engine from an XML document string."""
        return cls.from_tree(parse(text), model=model, miner=miner)

    @classmethod
    def from_file(cls, path, model=None, miner=None):
        """Build the engine from an XML file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_xml(handle.read(), model=model, miner=miner)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def mine_rules(self, query):
        """The pertinent rule set for a query (terms are normalized)."""
        return self.miner.mine(query_terms(query))

    def search(self, query, k=1, algorithm="partition", rules=None,
               rank_results=False):
        """Automatic refinement search (Issues 1–4 of the introduction).

        Parameters
        ----------
        query:
            Keyword string or sequence.
        k:
            Number of ranked refined queries wanted when refinement is
            needed.
        algorithm:
            ``"partition"`` (Algorithm 2, default), ``"sle"``
            (Algorithm 3) or ``"stack"`` (Algorithm 1; Top-1 only).
        rules:
            Pre-mined :class:`~repro.lexicon.rules.RuleSet`; mined on
            the fly when omitted.
        rank_results:
            When True, each result list is reordered by the XML TF*IDF
            result ranking of [6] instead of document order.

        Returns
        -------
        RefinementResponse
        """
        terms = query_terms(query)
        if not terms:
            raise QueryError("the keyword query is empty")
        if rules is None:
            rules = self.mine_rules(terms)
        if algorithm == "partition":
            response = partition_refine(
                self.index, terms, rules=rules, model=self.model, k=k
            )
        elif algorithm == "sle":
            response = short_list_eager(
                self.index, terms, rules=rules, model=self.model, k=k
            )
        elif algorithm == "stack":
            response = stack_refine(
                self.index, terms, rules=rules, model=self.model
            )
        else:
            raise QueryError(
                f"unknown refinement algorithm {algorithm!r}; "
                f"expected one of {ALGORITHMS}"
            )
        if rank_results:
            from .ranking.results import rank_response_results

            rank_response_results(self.index, response)
        return response

    def slca_search(self, query, algorithm="scan"):
        """Plain SLCA search of the original query (no refinement).

        The baseline the paper calls ``stack-slca`` / ``scan-slca`` in
        Fig. 4.  Returns the SLCA labels in document order.
        """
        terms = query_terms(query)
        if not terms:
            raise QueryError("the keyword query is empty")
        try:
            implementation = SLCA_ALGORITHMS[algorithm]
        except KeyError:
            raise QueryError(
                f"unknown SLCA algorithm {algorithm!r}; "
                f"expected one of {sorted(SLCA_ALGORITHMS)}"
            ) from None
        label_lists = [
            [posting.dewey for posting in self.index.inverted_list(term)]
            for term in terms
        ]
        return implementation(label_lists)

    def node(self, dewey):
        """Fetch the tree node for a result label."""
        return self.index.tree.node(dewey)

    def __repr__(self):
        return f"XRefine({self.index!r})"
