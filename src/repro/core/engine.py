"""XRefine — the keyword search engine prototype (Section I-VIII).

:class:`XRefine` wires the whole stack together:

* parse/accept an XML document and build the Section-VII indexes;
* mine the pertinent refinement rule set for each query (the role the
  paper's human annotators played);
* run one of the three refinement algorithms, returning the original
  query's meaningful SLCAs when no refinement is needed and the ranked
  Top-K refined queries (with their results) when it is;
* expose plain SLCA search over the same index for baselining.

Typical use::

    from repro import XRefine

    engine = XRefine.from_xml(open("bib.xml").read())
    response = engine.search("on line data base", k=3)
    if response.needs_refinement:
        for refinement in response.refinements:
            print(refinement.keywords, refinement.result_count)
"""

from __future__ import annotations

import time
from collections import OrderedDict

from ..errors import QueryError
from ..index.builder import build_document_index
from ..index.tokenize_text import query_terms
from ..lexicon.mining import RuleMiner
from ..perf.packed import PackedListStore
from ..perf.result_cache import DEFAULT_CAPACITY, QueryResultCache
from ..perf.subresult import (
    DEFAULT_SUBRESULT_CAPACITY,
    SubResultCache,
    term_signature,
)
from ..plan.planner import QueryPlanner
from ..slca.elca import elca
from ..slca.indexed_lookup import indexed_lookup_slca
from ..slca.multiway import multiway_slca
from ..slca.scan_eager import scan_eager_slca
from ..slca.stack import stack_slca
from ..xmltree.parser import parse
from .common import QueryContext
from .partition_refine import partition_refine
from .ranking.model import full_model
from .result import RefinementResponse, ScanStats
from .short_list_eager import short_list_eager
from .stack_refine import stack_refine

#: Refinement algorithm registry.  ``"auto"`` (the default) routes each
#: query to the predicted-cheapest fixed algorithm via the cost-based
#: planner (:mod:`repro.plan`); answers are byte-identical either way.
ALGORITHMS = ("auto", "partition", "sle", "stack")
#: Plain-SLCA algorithm registry.
SLCA_ALGORITHMS = {
    "stack": stack_slca,
    "scan": scan_eager_slca,
    "indexed": indexed_lookup_slca,
    "multiway": multiway_slca,
    # ELCA is a different (larger) conjunctive answer set, exposed for
    # comparison; see repro.slca.elca.
    "elca": elca,
}


class SwapWarmup:
    """Pre-built per-generation state from :meth:`XRefine.prepare_swap`.

    Carries everything the first post-flip evaluations would otherwise
    build cold on the serving thread: the new vocabulary's rule miner
    with pre-mined rule sets for the hot queries (``miner`` is ``None``
    for engines with a caller-supplied miner, which is never replaced),
    and the packed posting-list store with the hot keywords' columns
    already decoded.  Opaque to callers — build it with
    :meth:`~XRefine.prepare_swap` against the *same* index that is then
    passed to :meth:`~XRefine.swap_index`.
    """

    __slots__ = ("miner", "rules_memo", "packed", "queries", "seen")

    def __init__(self, miner, packed):
        self.miner = miner
        self.rules_memo = {}
        self.packed = packed
        #: Distinct query signatures successfully warmed.
        self.queries = 0
        #: Signatures already processed (dedup across prepare calls).
        self.seen = set()

    def seed_only(self):
        """A miner+rules-only copy safe to retain across generations.

        Drops the packed store (and with it any zero-copy views into
        the generation's snapshot), so a cached seed never pins a
        swapped-out mmap; :meth:`~XRefine.prepare_swap` reads only the
        miner and its pre-mined rule sets from a ``seed``.
        """
        clone = SwapWarmup(self.miner, None)
        clone.rules_memo.update(self.rules_memo)
        return clone

    def __repr__(self):
        packed = len(self.packed) if self.packed is not None else "no"
        return (
            f"SwapWarmup({self.queries} queries, "
            f"{packed} packed keywords)"
        )


def _validate_parallelism(parallelism):
    """Worker-count validation mirroring :func:`_validate_k`."""
    if isinstance(parallelism, bool) or not isinstance(parallelism, int):
        raise QueryError(
            f"parallelism must be an integer >= 1, got {parallelism!r}"
        )
    if parallelism < 1:
        raise QueryError(f"parallelism must be >= 1, got {parallelism}")
    return parallelism


def _validate_k(k):
    """Reject non-integral or non-positive Top-K requests up front.

    ``k=0`` used to return a silently empty refinement list and a
    float ``k`` crashed deep inside list slicing; both now fail fast
    with a typed :class:`~repro.errors.QueryError`.  Integral floats
    and ``bool`` are intentionally rejected too — a caller passing
    ``k=True`` has a bug.
    """
    if isinstance(k, bool) or not isinstance(k, int):
        raise QueryError(f"k must be an integer >= 1, got {k!r}")
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    return k


class XRefine:
    """The automatic XML keyword query refinement engine.

    Parameters
    ----------
    index:
        A prebuilt :class:`~repro.index.builder.DocumentIndex`.
    model:
        Ranking model (Formula 10); the full RS0 model by default.
    miner:
        Rule miner; constructed over the corpus vocabulary by default.
        An auto-constructed miner is rebuilt whenever the index version
        changes (partition appends/removals alter the vocabulary); a
        caller-supplied miner is never replaced.
    cache_size:
        Capacity of the query-result cache
        (:class:`~repro.perf.result_cache.QueryResultCache`); ``0``
        disables result caching.  Cached answers are version-checked
        against the index, so partition updates can never serve stale
        results.
    cache_policy:
        Result-cache replacement policy: ``"tinylfu"`` (default,
        W-TinyLFU frequency-gated admission — the sustained-throughput
        winner under skewed traffic, see ``benchmarks/bench_replay.py``)
        or ``"lru"`` (the plain recency baseline).
    cache_ttl:
        Optional result-cache entry lifetime in seconds.
    subresult_size:
        Capacity of the term-signature sub-result cache
        (:class:`~repro.perf.subresult.SubResultCache`) that lets
        reformulation chains reuse refined queries' meaningful-SLCA
        lists.  ``None`` (default) ties it to result caching: the
        default capacity when ``cache_size > 0``, disabled otherwise;
        ``0`` disables it explicitly.
    plan_cache_size:
        Capacity override for the planner's plan cache (``None`` keeps
        the planner default).
    rules_memo_size:
        Distinct queries whose auto-mined rule sets stay memoized
        (LRU); ``None`` keeps the engine default.  Size it at or above
        the distinct-query working set when replaying large logs —
        re-mining is the dominant repeated-miss cost.
    parallelism:
        Default worker count for cache-miss evaluation of
        ``algorithm="partition"`` queries (``repro.shard``).  ``1``
        (default) keeps the serial path; ``N > 1`` publishes the
        posting lists into shared memory and fans each miss out over a
        persistent ``N``-process pool, returning byte-identical
        answers.  Call :meth:`close` (or use the engine as a context
        manager) to release the pool and its shared-memory segment.
    """

    def __init__(self, index, model=None, miner=None,
                 cache_size=DEFAULT_CAPACITY, parallelism=1,
                 cache_policy="tinylfu", cache_ttl=None,
                 subresult_size=None, plan_cache_size=None,
                 rules_memo_size=None):
        self.index = index
        self.model = model if model is not None else full_model()
        self._auto_miner = miner is None
        if miner is None:
            miner = RuleMiner(index.inverted.keywords())
        self.miner = miner
        self._miner_version = getattr(index, "version", 0)
        #: Per-engine packed posting arrays (repro.perf.packed).
        self.packed = PackedListStore(index)
        #: Complete-answer cache (repro.perf.result_cache).
        self.result_cache = QueryResultCache(
            cache_size, policy=cache_policy, ttl=cache_ttl
        )
        #: Term-signature sub-result cache (repro.perf.subresult); tied
        #: to result caching by default so cold-path measurements with
        #: ``cache_size=0`` stay genuinely cold.
        if subresult_size is None:
            subresult_size = (
                DEFAULT_SUBRESULT_CAPACITY if cache_size > 0 else 0
            )
        self.subresult_cache = SubResultCache(subresult_size)
        #: Plan-cache capacity override (None = planner default).
        self._plan_cache_size = plan_cache_size
        #: Default shard fan-out for cache misses (repro.shard).
        self.parallelism = _validate_parallelism(parallelism)
        self._shard_runtime = None
        #: Auto-mined rule sets per query (pure function of the miner),
        #: LRU-bounded — evicting one stale entry at a time instead of
        #: the old wholesale clear, which re-mined the entire hot set
        #: whenever the distinct-query universe exceeded the limit.
        self._rules_memo = OrderedDict()
        if rules_memo_size is not None and rules_memo_size < 1:
            raise ValueError(
                f"rules_memo_size must be >= 1, got {rules_memo_size}"
            )
        self._rules_memo_limit = (
            rules_memo_size if rules_memo_size is not None
            else self._RULES_MEMO_LIMIT
        )
        #: Lazily built cost-based query planner (repro.plan).
        self._planner = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, tree, model=None, miner=None):
        """Build the engine (and all indexes) from a parsed tree."""
        return cls(build_document_index(tree), model=model, miner=miner)

    @classmethod
    def from_xml(cls, text, model=None, miner=None):
        """Build the engine from an XML document string."""
        return cls.from_tree(parse(text), model=model, miner=miner)

    @classmethod
    def from_file(cls, path, model=None, miner=None):
        """Build the engine from an XML file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_xml(handle.read(), model=model, miner=miner)

    @classmethod
    def from_frozen(cls, path, model=None, miner=None, **kwargs):
        """Serve a frozen snapshot file (see :mod:`repro.index.frozen`).

        Posting lists stay on the memory-mapped snapshot and decode
        lazily per keyword, so the engine reaches its first answer
        without ever rebuilding or bulk-decoding the index.
        """
        from ..index.frozen import load_frozen_index

        return cls(load_frozen_index(path), model=model, miner=miner, **kwargs)

    # ------------------------------------------------------------------
    # Hot-path plumbing (repro.perf)
    # ------------------------------------------------------------------
    def _refresh_miner(self):
        """Rebuild an auto-constructed miner after index updates.

        The vocabulary the rules are mined from changes with every
        partition append/remove; keeping the miner in lockstep with the
        index version makes warm answers equal a from-scratch engine.
        """
        version = getattr(self.index, "version", 0)
        if self._auto_miner and version != self._miner_version:
            self.miner = RuleMiner(self.index.inverted.keywords())
        self._miner_version = version

    def _model_key(self):
        """The model parameters that affect a query's answer."""
        model = self.model
        return (
            model.alpha,
            model.beta,
            model.decay,
            model.use_g1,
            model.use_g2,
            model.use_g3,
            model.use_g4,
            model.g2_domain,
        )

    def clear_caches(self):
        """Explicitly drop the engine-level caches (results + packed)."""
        self.result_cache.clear()
        self.subresult_cache.clear()
        self.packed.clear()

    def cache_stats(self):
        """Monitoring snapshot of every hot-path cache layer."""
        planner = self._planner
        return {
            "results": self.result_cache.stats(),
            "subresults": self.subresult_cache.stats(),
            "packed_keywords": len(self.packed),
            "index_version": getattr(self.index, "version", 0),
            #: Routing counters, plan-cache hit rate, cost-model ratio
            #: samples and the active calibration (None until the
            #: first ``auto``/``explain`` query builds the planner).
            "planner": planner.stats() if planner is not None else None,
        }

    @property
    def planner(self):
        """The engine's :class:`~repro.plan.planner.QueryPlanner`."""
        planner = self._planner
        if planner is None:
            planner = QueryPlanner(
                self.index, packed=self.packed,
                plan_cache_size=self._plan_cache_size,
            )
            self._planner = planner
        return planner

    # ------------------------------------------------------------------
    # Parallel execution plumbing (repro.shard)
    # ------------------------------------------------------------------
    def _shard_runtime_for(self, workers):
        """The persistent shard runtime, (re)built to ``workers``."""
        from ..shard.pool import ShardRuntime

        runtime = self._shard_runtime
        if runtime is not None and runtime.workers != workers:
            runtime.close()
            runtime = None
        if runtime is None:
            runtime = ShardRuntime(self.index, workers)
            self._shard_runtime = runtime
        return runtime

    def close(self):
        """Release the worker pool and its shared-memory segment.

        Idempotent; a no-op for engines that never ran in parallel.
        The engine stays usable afterwards — the next parallel query
        transparently rebuilds the pool.
        """
        if self._shard_runtime is not None:
            self._shard_runtime.close()
            self._shard_runtime = None

    # ------------------------------------------------------------------
    # Snapshot hot-swap (repro.serve)
    # ------------------------------------------------------------------
    def prepare_swap(self, new_index, queries=(), warmup=None, seed=None):
        """Warm a generation about to swap in for a set of hot queries.

        The optional slow companion of :meth:`swap_index`.  The first
        post-flip occurrence of every query pays the new generation's
        cold costs on the serving thread — mining its rule set against
        the fresh vocabulary (tens of milliseconds), decoding and
        packing its posting lists, and re-inferring the search-for
        statistics.  Run this on a background thread while the old
        generation keeps serving — it only reads ``new_index`` (whose
        memos are not yet shared with the serving path) plus the
        immutable miner — then hand the result to
        ``swap_index(new_index, warmup=...)``, which installs the
        pre-built state atomically with the flip.

        Pass a previous call's ``warmup`` back in to warm more queries
        incrementally — the daemon mines its hot set in small chunks
        with pauses between them, so the background mining never
        monopolizes the interpreter against in-flight evaluations.

        ``seed`` is an optional *earlier* generation's warmup (e.g. the
        one installed the last time this snapshot was swapped in): when
        its miner was built over exactly ``new_index``'s vocabulary —
        mining depends on nothing else — the miner and every rule set
        it already mined are reused instead of re-mined, so cycling
        back to a recently served snapshot skips the dominant warmup
        cost entirely.  A seed whose vocabulary differs is ignored; the
        per-index state (packed columns, search-for and decode memos)
        is always rebuilt against ``new_index``.
        """
        if warmup is None:
            miner = None
            if self._auto_miner:
                vocabulary = set(new_index.inverted.keywords())
                if (
                    seed is not None
                    and seed.miner is not None
                    and seed.miner.vocabulary == vocabulary
                ):
                    miner = seed.miner
                else:
                    miner = RuleMiner(vocabulary)
            warmup = SwapWarmup(miner=miner, packed=PackedListStore(new_index))
            if seed is not None and miner is not None and miner is seed.miner:
                warmup.rules_memo.update(seed.rules_memo)
        packed = warmup.packed
        for query in queries:
            terms = tuple(query_terms(query))
            if not terms or terms in warmup.seen:
                continue
            warmup.seen.add(terms)
            if warmup.miner is not None:
                cached = warmup.rules_memo.get(terms)
                if cached is not None and cached[0] is warmup.miner:
                    rules = cached[1]
                else:
                    rules = warmup.miner.mine(terms)
                    if len(warmup.rules_memo) < self._RULES_MEMO_LIMIT:
                        warmup.rules_memo[terms] = (warmup.miner, rules)
            else:
                rules = self.miner.mine(terms)
            try:
                # Constructing the context decodes the keyword space's
                # inverted lists (memoized on new_index) and populates
                # its search-for memo — exactly the per-generation
                # state the first evaluation would otherwise build.
                context = QueryContext(new_index, terms, rules)
            except QueryError:
                continue
            for keyword in context.keyword_space:
                packed.get(keyword).partition_count()
            warmup.queries += 1
        return warmup

    def swap_index(self, new_index, warmup=None):
        """Atomically re-point this engine at a freshly loaded index.

        The zero-downtime reload primitive of the serving daemon
        (:mod:`repro.serve`): one long-lived engine keeps serving while
        a newer snapshot is loaded elsewhere, then flips to it here.
        Returns the previous :class:`~repro.index.builder.DocumentIndex`
        so the caller can release its resources (mmap, shm) once the
        last in-flight reader of the old generation has exited.

        What the flip guarantees:

        * ``new_index.version`` is restamped to ``old version + 1``, so
          version numbers stay unique and monotonic across generations
          — a freshly loaded snapshot starts at version 0, which would
          otherwise collide with the first generation's stamp and let
          version-checked caches serve cross-snapshot answers.
        * The index reference flip and the result-cache purge happen
          under the result cache's lock, making them atomic with
          respect to every concurrent stamp check-and-return.
        * The planner drops its per-version plan-cache entries and the
          drift corrections learned on the old corpus
          (:meth:`~repro.plan.planner.QueryPlanner.on_index_swap`).
        * The shard runtime is handed the new index and its old
          executor (workers + shared-memory segment) is closed.

        The caller must ensure no query is *executing* on this engine
        during the flip (the daemon runs it on its single query thread,
        serialized behind in-flight requests); concurrent cache *reads*
        from other threads are safe.

        ``warmup`` is an optional :meth:`prepare_swap` result built
        against the same ``new_index``: the pre-constructed miner and
        its pre-mined rule sets are installed with the flip, so hot
        queries skip the first-mine cost on the new generation.
        """
        old_index = self.index
        if new_index is old_index:
            return old_index
        new_index.version = getattr(old_index, "version", 0) + 1
        new_packed = (
            warmup.packed
            if warmup is not None and warmup.packed is not None
            else PackedListStore(new_index)
        )
        with self.result_cache.lock:
            self.index = new_index
            self.packed = new_packed
            self.result_cache.purge_other_versions(new_index.version)
            # Sub-results obey the same generation contract: purged
            # atomically with the flip so no old-generation SLCA list
            # can assemble a post-swap answer.
            self.subresult_cache.purge_other_versions(new_index.version)
        # The auto-miner lags one _refresh_miner() call behind by
        # design; dropping the memo here keeps no rule set mined from
        # the old vocabulary reachable in the meantime.
        self._rules_memo.clear()
        if (
            warmup is not None
            and self._auto_miner
            and warmup.miner is not None
        ):
            # A prepare_swap() result for this index: adopt its miner
            # and pre-mined rule sets so the first post-flip queries
            # skip the fresh-vocabulary mining cost entirely.
            self.miner = warmup.miner
            self._miner_version = new_index.version
            self._rules_memo.update(warmup.rules_memo)
        if self._planner is not None:
            self._planner.on_index_swap(new_index, packed=new_packed)
        if self._shard_runtime is not None:
            self._shard_runtime.swap(new_index)
        return old_index

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    #: Distinct queries whose mined rules are memoized before reset.
    _RULES_MEMO_LIMIT = 1024

    def mine_rules(self, query):
        """The pertinent rule set for a query (terms are normalized).

        Mining is deterministic for a fixed miner, so auto-mined rule
        sets are memoized per query (the memo keys on miner identity —
        a version rebuild starts fresh).  Treat the returned
        :class:`~repro.lexicon.rules.RuleSet` as read-only.
        """
        self._refresh_miner()
        terms = tuple(query_terms(query))
        if not self._auto_miner:
            return self.miner.mine(terms)
        cached = self._rules_memo.get(terms)
        if cached is not None and cached[0] is self.miner:
            self._rules_memo.move_to_end(terms)
            return cached[1]
        rules = self.miner.mine(terms)
        self._rules_memo[terms] = (self.miner, rules)
        self._rules_memo.move_to_end(terms)
        while len(self._rules_memo) > self._rules_memo_limit:
            self._rules_memo.popitem(last=False)
        return rules

    def search(self, query, k=1, algorithm="auto", rules=None,
               rank_results=False, parallelism=None, explain=False):
        """Automatic refinement search (Issues 1–4 of the introduction).

        Parameters
        ----------
        query:
            Keyword string or sequence.
        k:
            Number of ranked refined queries wanted when refinement is
            needed.
        algorithm:
            ``"auto"`` (default) — the cost-based planner routes the
            query to the predicted-cheapest algorithm (answers are
            byte-identical to every fixed choice) — or a fixed
            ``"partition"`` (Algorithm 2), ``"sle"`` (Algorithm 3) or
            ``"stack"`` (Algorithm 1; Top-1 only).
        rules:
            Pre-mined :class:`~repro.lexicon.rules.RuleSet`; mined on
            the fly when omitted.
        rank_results:
            When True, each result list is reordered by the XML TF*IDF
            result ranking of [6] instead of document order.
        parallelism:
            Worker count for this call; defaults to the engine's
            ``parallelism``.  Values above 1 evaluate cache misses on
            the shard pool (``repro.shard``) and require ``"auto"``
            (the planner chooses serial vs. sharded) or
            ``"partition"``; answers (and therefore the result cache)
            are identical at every level.
        explain:
            When True, attach the recorded
            :class:`~repro.plan.planner.QueryPlan` to
            ``response.plan`` even for fixed algorithms (``auto``
            always records one).  Responses served from the result
            cache carry the plan of the evaluation that produced them.

        Returns
        -------
        RefinementResponse
        """
        k = _validate_k(k)
        parallelism = (
            self.parallelism if parallelism is None
            else _validate_parallelism(parallelism)
        )
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown refinement algorithm {algorithm!r}; "
                f"expected one of {ALGORITHMS}"
            )
        if parallelism > 1 and algorithm not in ("auto", "partition"):
            raise QueryError(
                "parallel execution is only implemented for the "
                f"'auto' and 'partition' algorithms, not {algorithm!r}"
            )
        terms = tuple(query_terms(query))
        if not terms:
            raise QueryError(
                "the keyword query is empty (no indexable terms after "
                "normalization)"
            )
        return self._search_validated(
            terms, k, algorithm, rules, rank_results, parallelism, explain
        )

    def _search_validated(self, terms, k, algorithm, rules, rank_results,
                          parallelism, explain):
        """Cache lookup + dispatch for pre-validated arguments."""
        # Repeated-query fast path: answers are cached only for engine-
        # mined rules (a caller-supplied RuleSet is part of the answer
        # but not hashable into a key) and returned as the same object —
        # treat responses as read-only.
        cache_key = None
        # The version every cache interaction for this request uses is
        # captured exactly once, atomically with the lookup (under the
        # cache lock, which swap_index also holds while it flips the
        # index): a hit can never race a snapshot swap into returning
        # an old generation's answer, and the eventual put is stamped
        # with the version the response was *computed against*, so an
        # evaluation that straddles a swap stores an unreachable entry
        # instead of poisoning the new generation.
        version = getattr(self.index, "version", 0)
        mined = rules is None
        if rules is None and self.result_cache.enabled:
            cache_key = (
                "search",
                terms,
                k,
                algorithm,
                bool(rank_results),
                self._model_key(),
            )
            with self.result_cache.lock:
                version = getattr(self.index, "version", 0)
                cached = self.result_cache.get(cache_key, version)
            if cached is not None:
                return cached
        if rules is None:
            rules = self.mine_rules(terms)
        # Sub-result fast path: when an earlier evaluation (typically
        # the corrupted head of this reformulation chain) already
        # deposited this term set's meaningful SLCAs, assemble the
        # direct-hit response from them instead of re-running the full
        # algorithm.  Byte-identical to a cold evaluation — the verify
        # oracle's cache-layer check holds it to that.
        if (
            mined
            and not explain
            and self.subresult_cache.enabled
        ):
            response = self._assemble_from_subresults(terms, rules, version)
            if response is not None:
                if rank_results:
                    from .ranking.results import rank_response_results

                    rank_response_results(self.index, response)
                if cache_key is not None:
                    self.result_cache.put(cache_key, response, version)
                return response
        plan = None
        if algorithm == "auto":
            plan = self.planner.plan(terms, rules, k, parallelism)
            response = self._execute_plan(plan, terms, rules, k)
            self.planner.record(plan, response)
        elif algorithm == "partition" and parallelism > 1:
            from ..shard.refine import sharded_partition_refine

            response = sharded_partition_refine(
                self.index, terms, rules=rules, model=self.model, k=k,
                shards=parallelism,
                executor=self._shard_runtime_for(parallelism),
            )
        else:
            memos = self.planner.dp_memos(terms, rules, max(2 * k, 2))
            if algorithm == "partition":
                response = partition_refine(
                    self.index, terms, rules=rules, model=self.model, k=k,
                    dp_memos=memos[:2],
                )
            elif algorithm == "sle":
                response = short_list_eager(
                    self.index, terms, rules=rules, model=self.model, k=k,
                    dp_memos=memos[:2],
                )
            else:  # "stack" — the registry was validated by the caller
                response = stack_refine(
                    self.index, terms, rules=rules, model=self.model,
                    dp_memo=memos[2],
                )
        if explain and plan is None:
            # Fixed algorithm: record a forced plan for observability
            # (estimates are not computed; the executed route and the
            # kernel's elapsed time are).
            plan = self.planner.plan(
                terms, rules, k, parallelism, force=algorithm
            )
            plan.executed = algorithm
            plan.actual_seconds = response.stats.elapsed_seconds
        if plan is not None:
            response.plan = plan
        if mined and self.subresult_cache.enabled:
            # Deposit *before* rank_results mutates the result lists —
            # sub-results must stay in the canonical document order a
            # cold evaluation would produce.
            self._deposit_subresults(response, version, algorithm)
        if rank_results:
            from .ranking.results import rank_response_results

            rank_response_results(self.index, response)
        if cache_key is not None:
            self.result_cache.put(cache_key, response, version)
        return response

    def _assemble_from_subresults(self, terms, rules, version):
        """A direct-hit response assembled from deposited sub-results.

        Valid only when the consumer's inferred search-for types equal
        the depositor's (meaningfulness is relative to them — see
        :mod:`repro.perf.subresult`); the cache refuses to serve a
        mismatch and the query falls back to full evaluation.  Returns
        ``None`` on any miss.
        """
        signature = term_signature(terms)
        if signature not in self.subresult_cache:
            return None
        started = time.perf_counter()
        try:
            context = QueryContext(self.index, terms, rules)
        except QueryError:
            return None
        slcas = self.subresult_cache.get(
            signature, version, tuple(context.search_for_types)
        )
        if slcas is None:
            return None
        original_results = sorted(slcas)
        stats = ScanStats()
        stats.lists_opened = len(context.keyword_space)
        stats.elapsed_seconds = time.perf_counter() - started
        return RefinementResponse(
            query=context.query,
            needs_refinement=False,
            original_results=original_results,
            refinements=[],
            candidates=[],
            search_for=context.search_for,
            stats=stats,
        )

    def _deposit_subresults(self, response, version, algorithm):
        """Bank this evaluation's complete meaningful-SLCA lists.

        Only oracle-fingerprinted surfaces are deposited: the original
        query's results on a direct hit, and each surviving
        refinement's accumulated list.  Top-1 stack responses skip the
        refinement deposit — the cross-algorithm byte-identity
        contract covers stack's flag/original-results only, not its
        refinement result lists.
        """
        cache = self.subresult_cache
        types = tuple(c.node_type for c in response.search_for)
        if not response.needs_refinement:
            cache.put(
                term_signature(response.query), version, types,
                response.original_results,
            )
            return
        if algorithm == "stack":
            return
        for refinement in response.refinements:
            cache.put(
                term_signature(refinement.rq.keywords), version, types,
                refinement.slcas,
            )

    def _execute_plan(self, plan, terms, rules, k):
        """Run a planned route, with the stack→partition fallback.

        Stack-refine is chosen only on a predicted direct hit; when the
        prediction misses (the query needs refinement after all, where
        stack is Top-1 only) the engine falls back to Partition, so the
        response is byte-identical to every fixed algorithm no matter
        how the bet lands.
        """
        memos = self.planner.dp_memos(terms, rules, max(2 * k, 2))
        route = plan.chosen
        if route == "stack":
            response = stack_refine(
                self.index, terms, rules=rules, model=self.model,
                dp_memo=memos[2],
            )
            if not response.needs_refinement:
                plan.executed = "stack"
                return response
            plan.fallback = "stack->partition"
            route = "partition"
        if route == "partition" and plan.parallel:
            from ..shard.refine import sharded_partition_refine

            response = sharded_partition_refine(
                self.index, terms, rules=rules, model=self.model, k=k,
                shards=plan.parallelism,
                executor=self._shard_runtime_for(plan.parallelism),
                initial_bound=plan.bound_seed,
            )
            plan.executed = "partition"
        elif route == "partition":
            response = partition_refine(
                self.index, terms, rules=rules, model=self.model, k=k,
                dp_memos=memos[:2],
            )
            plan.executed = "partition"
        else:  # "sle"
            response = short_list_eager(
                self.index, terms, rules=rules, model=self.model, k=k,
                dp_memos=memos[:2],
            )
            plan.executed = "sle"
        return response

    def search_many(self, queries, k=1, algorithm="auto",
                    rank_results=False, parallelism=None):
        """Batch refinement search: one response per input query.

        The hot-path batch API: per-keyword decoded lists (packed
        arrays, inverted-list cache) are shared across the whole call,
        and duplicate queries are deduplicated *before dispatch* — each
        distinct normalized query is evaluated exactly once per batch
        even when the LRU result cache is disabled or thrashing.
        Duplicate queries receive mutation-isolated **copies**
        (:meth:`RefinementResponse.copy`) of the one evaluated
        response, so a caller sorting or truncating one answer's lists
        can never corrupt another position's answer.
        ``k``/``algorithm``/``parallelism`` are validated **once** for
        the whole batch (not per unique query); dispatch goes straight
        to the post-validation path.
        """
        k = _validate_k(k)
        parallelism = (
            self.parallelism if parallelism is None
            else _validate_parallelism(parallelism)
        )
        if algorithm not in ALGORITHMS:
            raise QueryError(
                f"unknown refinement algorithm {algorithm!r}; "
                f"expected one of {ALGORITHMS}"
            )
        if parallelism > 1 and algorithm not in ("auto", "partition"):
            raise QueryError(
                "parallel execution is only implemented for the "
                f"'auto' and 'partition' algorithms, not {algorithm!r}"
            )
        self._refresh_miner()
        responses = []
        batch = {}  # normalized terms -> response
        for query in queries:
            terms = tuple(query_terms(query))
            if not terms:
                raise QueryError(
                    "the keyword query is empty (no indexable terms "
                    "after normalization)"
                )
            response = batch.get(terms)
            if response is None:
                response = self._search_validated(
                    terms, k, algorithm, None, rank_results, parallelism,
                    False,
                )
                batch[terms] = response
                responses.append(response)
            else:
                # Dedup-before-dispatch used to hand the *same* object
                # to every duplicate position; one caller mutating a
                # result list then corrupted every other's answer.
                responses.append(response.copy())
        return responses

    def slca_search(self, query, algorithm="scan"):
        """Plain SLCA search of the original query (no refinement).

        The baseline the paper calls ``stack-slca`` / ``scan-slca`` in
        Fig. 4.  Returns the SLCA labels in document order.
        """
        terms = query_terms(query)
        if not terms:
            raise QueryError(
                "the keyword query is empty (no indexable terms after "
                "normalization)"
            )
        try:
            implementation = SLCA_ALGORITHMS[algorithm]
        except KeyError:
            raise QueryError(
                f"unknown SLCA algorithm {algorithm!r}; "
                f"expected one of {sorted(SLCA_ALGORITHMS)}"
            ) from None
        cache_key = None
        version = getattr(self.index, "version", 0)
        if self.result_cache.enabled:
            cache_key = ("slca", tuple(terms), algorithm)
            # Same atomic version-capture-plus-lookup as refinement
            # search: the stamp check cannot race a snapshot swap.
            with self.result_cache.lock:
                version = getattr(self.index, "version", 0)
                cached = self.result_cache.get(cache_key, version)
            if cached is not None:
                return list(cached)
        # Packed posting arrays: each keyword's list is decoded and
        # flattened once per engine, not once per query.
        label_lists = [self.packed.get(term) for term in terms]
        results = implementation(label_lists)
        if cache_key is not None:
            self.result_cache.put(cache_key, tuple(results), version)
        return results

    def node(self, dewey):
        """Fetch the tree node for a result label."""
        return self.index.tree.node(dewey)

    def __repr__(self):
        return f"XRefine({self.index!r})"
