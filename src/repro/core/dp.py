"""``getOptimalRQ`` — the dynamic program of Section V.

Given the original query ``S`` (a keyword sequence), a keyword set
``T`` (the keywords that actually occur in the data region under
consideration — a stack subtree, a document partition...), and a rule
set ``R``, find the refined query ``RQ ⊆ T`` with minimum dissimilarity
``dSim(S, RQ)`` (Definition 3.6).

The recurrence (Formula 11) fills ``C[i]`` — the best refinements of
the prefix ``S[1..i]`` — from three options:

1. **keep** ``k_i`` when it appears in ``T`` (cost unchanged);
2. **delete** ``k_i`` (cost + deletion cost) — always applicable;
3. apply a rule ``r`` whose LHS is a suffix of ``S[1..i]`` and whose
   RHS keywords all occur in ``T`` (cost ``C[i - |LHS(r)|] + ds_r``).

Each cell keeps a **beam** of the best partial refinements (distinct by
keyword set) instead of only the minimum: Section V notes that the
intermediate results double as the ranked Top-2K candidate list that
Algorithms 2 and 3 consume, so ``get_top_optimal_rqs(S, T, R, 2K)`` is
the same pass with a wider beam.

Complexity: ``O(|S| * beam * (1 + rules_per_suffix))`` cell work, i.e.
the paper's ``O(|Q|^2 log |R|)`` for unit beams once rule lookup by
last-LHS-keyword is O(1) (our :class:`~repro.lexicon.rules.RuleSet`
pre-indexes instead of binary-searching).
"""

from __future__ import annotations

from ..errors import RefinementError
from .candidates import RefinedQuery


class _Partial:
    """A partial refinement: cost so far + kept/generated keywords."""

    __slots__ = ("cost", "keywords", "key")

    def __init__(self, cost, keywords):
        self.cost = cost
        self.keywords = keywords          # tuple, derivation order
        self.key = frozenset(keywords)


def _admit(cell, candidate):
    """Insert a partial into a DP cell, deduplicating by keyword set."""
    existing = cell.get(candidate.key)
    if existing is None or candidate.cost < existing.cost:
        cell[candidate.key] = candidate


def _rank_key(partial):
    # Ascending cost; at equal cost prefer the refinement preserving
    # more keywords (substitution over deletion), then lexicographic
    # keywords for determinism.
    return (partial.cost, -len(partial.keywords), partial.keywords)


def _truncate(cell, beam):
    """Keep the ``beam`` cheapest partials (ties broken by content)."""
    if len(cell) <= beam:
        return cell
    ranked = sorted(cell.values(), key=_rank_key)
    return {partial.key: partial for partial in ranked[:beam]}


def get_top_optimal_rqs(query, available, rules, limit):
    """Top-``limit`` refined queries of ``query`` within ``available``.

    Parameters
    ----------
    query:
        Keyword sequence of the original query ``S``.
    available:
        Set of keywords present in the data region (``T``).
    rules:
        A :class:`~repro.lexicon.rules.RuleSet`.
    limit:
        Beam width / number of candidates returned (the paper's ``2K``).

    Returns
    -------
    list[RefinedQuery]
        Candidates sorted by ascending dissimilarity; empty when no
        non-empty refinement exists (e.g. ``available`` shares nothing
        with the query or the rules).  The first entry is the optimal
        RQ of Section V.
    """
    query = list(query)
    if not query:
        raise RefinementError("cannot refine an empty query")
    if limit < 1:
        raise RefinementError("limit must be >= 1")
    available = set(available)

    # C[i] maps keyword-set -> best partial for prefix S[1..i].
    cells = [dict() for _ in range(len(query) + 1)]
    cells[0][frozenset()] = _Partial(0, ())

    for i in range(1, len(query) + 1):
        keyword = query[i - 1]
        cell = cells[i]

        # Option 1: keep the keyword when it exists in the data.
        if keyword in available:
            for partial in cells[i - 1].values():
                _admit(
                    cell,
                    _Partial(partial.cost, partial.keywords + (keyword,)),
                )

        # Option 2: delete the keyword.
        for partial in cells[i - 1].values():
            _admit(
                cell,
                _Partial(partial.cost + rules.deletion_cost, partial.keywords),
            )

        # Option 3: rules whose LHS ends at position i and matches the
        # query suffix, with every RHS keyword present in the data.
        for rule in rules.rules_ending_with(keyword):
            width = len(rule.lhs)
            if width > i:
                continue
            if tuple(query[i - width : i]) != rule.lhs:
                continue
            if not all(k in available for k in rule.rhs):
                continue
            addition = tuple(
                k for k in rule.rhs  # avoid duplicating kept keywords
            )
            for partial in cells[i - width].values():
                _admit(
                    cell,
                    _Partial(partial.cost + rule.ds, partial.keywords + addition),
                )

        cells[i] = _truncate(cell, max(limit, 1) * 2)

    finals = [
        partial
        for partial in cells[len(query)].values()
        if partial.keywords
    ]
    finals.sort(key=_rank_key)
    seen = set()
    results = []
    for partial in finals:
        if partial.key in seen:
            continue
        seen.add(partial.key)
        # Deduplicate keywords while preserving derivation order.
        ordered = tuple(dict.fromkeys(partial.keywords))
        results.append(RefinedQuery(ordered, partial.cost))
        if len(results) >= limit:
            break
    return results


class MissingKeywordBound:
    """Presence-based lower bound on any local refinement's dissimilarity.

    Every occurrence of a query keyword that is *absent* from the data
    region ``T`` must be either deleted (``rules.deletion_cost``) or
    consumed by a rule whose LHS contains it, so the dissimilarity of
    every refined query derivable within ``T`` is at least the
    cheapest way to handle any single missing keyword — and therefore
    at least the **maximum** over missing keywords of that per-keyword
    minimum (costs add up, but one rule may consume several keywords
    at once, which is why the per-keyword minima cannot be summed).

    The per-keyword handling costs are a pure function of
    ``(query, rules)`` and are computed once; :meth:`lower_bound` is
    then O(missing keywords) with no DP call at all, making it the
    cheap pre-check the partition kernels run before even the 1-beam
    probe of optimization 2.  Because the bound never exceeds the true
    DP minimum, pruning on ``lower_bound(T) > threshold`` (strict,
    like the probe) can never change an answer.
    """

    __slots__ = ("_handle_costs",)

    def __init__(self, query, rules):
        costs = {keyword: rules.deletion_cost for keyword in set(query)}
        for rule in rules:
            for keyword in rule.lhs:
                held = costs.get(keyword)
                if held is not None and rule.ds < held:
                    costs[keyword] = rule.ds
        self._handle_costs = costs

    @property
    def handle_costs(self):
        """Per-query-keyword cost of being absent (read-only view).

        The kernels' :class:`~repro.kernels.bounds.PresenceBoundCache`
        re-indexes these by keyword-space lane to memoize
        :meth:`lower_bound` per presence bitmask.
        """
        return self._handle_costs

    def lower_bound(self, present):
        """Least possible ``dSim`` of any RQ derivable inside ``present``."""
        bound = 0
        for keyword, cost in self._handle_costs.items():
            if keyword not in present and cost > bound:
                bound = cost
        return bound


def get_optimal_rq(query, available, rules):
    """The single optimal RQ (minimum ``dSim``), or ``None``.

    This is the paper's ``getOptimalRQ(S, T)``; the list variant above
    is its Top-2K extension.
    """
    top = get_top_optimal_rqs(query, available, rules, 1)
    return top[0] if top else None


def dissimilarity(query, refined, rules):
    """``dSim(Q, RQ)`` for a *given* refined keyword set (Definition 3.6).

    Runs the same DP restricted so the only keepable/generable keywords
    are those of ``refined``; returns ``None`` when ``refined`` is not
    derivable from ``query`` under ``rules``.
    """
    refined_set = set(refined)
    candidates = get_top_optimal_rqs(
        query, refined_set, rules, limit=64
    )
    for candidate in candidates:
        if candidate.key == frozenset(refined_set):
            return candidate.dissimilarity
    return None
