"""Refined-query candidates and the RQSortedList (Section VI-B).

:class:`RefinedQuery` is the value object flowing between the dynamic
program, the refinement algorithms and the ranking model: an ordered
keyword tuple plus the dissimilarity ``dSim(Q, RQ)`` it was derived
with.  Two candidates are the *same* refined query when their keyword
sets coincide (keyword queries are sets, Section III), regardless of
derivation order.

:class:`RQSortedList` is the paper's Top-2K working list: a list kept
sorted by dissimilarity (the paper uses a B-tree; ``bisect`` gives the
same O(log n) insert) plus a hash table for O(1) ``hasRQ`` membership.

Entries are totally ordered by ``(dissimilarity, sorted keyword set)``
rather than arrival order, so the kept set is a pure function of the
candidates offered — Partition (document order) and SLE (shortest-list
order) explore in different orders yet must converge on byte-identical
Top-K answers, which the differential harness (``repro.verify``)
asserts.
"""

from __future__ import annotations

import bisect

from ..errors import RefinementError


class RefinedQuery:
    """One refined query with its dissimilarity to the original."""

    __slots__ = ("keywords", "dissimilarity", "_key")

    def __init__(self, keywords, dissimilarity):
        keywords = tuple(keywords)
        if not keywords:
            raise RefinementError("a refined query cannot be empty")
        if dissimilarity < 0:
            raise RefinementError("dissimilarity cannot be negative")
        self.keywords = keywords
        self.dissimilarity = dissimilarity
        self._key = frozenset(keywords)

    @property
    def key(self):
        """Set identity of the query (order-insensitive)."""
        return self._key

    def __eq__(self, other):
        if not isinstance(other, RefinedQuery):
            return NotImplemented
        return self._key == other._key

    def __hash__(self):
        return hash(self._key)

    def __repr__(self):
        return (
            f"RefinedQuery({{{', '.join(self.keywords)}}}, "
            f"dSim={self.dissimilarity})"
        )


class RQSortedList:
    """Bounded list of the best (lowest-dissimilarity) refined queries.

    Parameters
    ----------
    capacity:
        Maximum number of entries kept (the paper uses ``2K``).
    """

    def __init__(self, capacity):
        if capacity < 1:
            raise RefinementError("RQSortedList capacity must be >= 1")
        self.capacity = capacity
        self._entries = []      # [(dissimilarity, key_order, RefinedQuery)]
        self._by_key = {}       # frozenset -> RefinedQuery

    @staticmethod
    def _key_order(refined_query):
        """Deterministic tiebreak for equal dissimilarities."""
        return tuple(sorted(refined_query.key))

    def __len__(self):
        return len(self._entries)

    def __contains__(self, refined_query):
        return refined_query.key in self._by_key

    def has_key(self, key):
        """O(1) ``hasRQ`` membership check by keyword set."""
        return key in self._by_key

    @property
    def is_full(self):
        return len(self._entries) >= self.capacity

    def max_dissimilarity(self):
        """Dissimilarity of the worst kept entry (inf when not full).

        This is the admission threshold: a new candidate with larger
        dissimilarity than every kept entry cannot enter a full list.
        """
        if not self.is_full:
            return float("inf")
        return self._entries[-1][0]

    def kth_dissimilarity(self, k):
        """Dissimilarity of the k-th best entry (inf when fewer exist)."""
        if len(self._entries) < k:
            return float("inf")
        return self._entries[k - 1][0]

    def worst_order(self):
        """``(dissimilarity, key order)`` of the worst kept entry.

        The admission threshold as a comparable tuple — the batch
        admission sweep (:mod:`repro.kernels.scoring`) compares whole
        candidate columns against it.  Only meaningful when the list
        is full (``None`` otherwise, like ``max_dissimilarity``'s
        ``inf``).
        """
        if not self.is_full:
            return None
        worst_ds, worst_key, _ = self._entries[-1]
        return (worst_ds, worst_key)

    def would_admit(self, refined_query):
        """True when :meth:`insert` could keep this candidate.

        The algorithms use this as the cheap pre-check before paying
        for the candidate's SLCA computation; it must therefore agree
        exactly with :meth:`insert`'s admission order.
        """
        if refined_query.key in self._by_key:
            return True
        if not self.is_full:
            return True
        worst_ds, worst_key, _ = self._entries[-1]
        order = (refined_query.dissimilarity, self._key_order(refined_query))
        return order < (worst_ds, worst_key)

    def insert(self, refined_query):
        """Try to admit a candidate.

        Returns True when the candidate is now in the list (either
        newly admitted, or already present — in which case the smaller
        dissimilarity is kept).  When the list overflows, the entry
        greatest in ``(dissimilarity, keyword set)`` order is evicted.
        """
        existing = self._by_key.get(refined_query.key)
        if existing is not None:
            if refined_query.dissimilarity < existing.dissimilarity:
                self._remove(existing)
            else:
                return True
        key_order = self._key_order(refined_query)
        if (
            self.is_full
            and (refined_query.dissimilarity, key_order)
            >= (self._entries[-1][0], self._entries[-1][1])
        ):
            return False
        entry = (refined_query.dissimilarity, key_order, refined_query)
        bisect.insort(self._entries, entry)
        self._by_key[refined_query.key] = refined_query
        while len(self._entries) > self.capacity:
            _, _, evicted = self._entries.pop()
            del self._by_key[evicted.key]
        return refined_query.key in self._by_key

    def _remove(self, refined_query):
        idx = bisect.bisect_left(
            self._entries,
            (refined_query.dissimilarity, self._key_order(refined_query)),
        )
        while idx < len(self._entries):
            if self._entries[idx][2].key == refined_query.key:
                del self._entries[idx]
                del self._by_key[refined_query.key]
                return
            idx += 1
        raise RefinementError("RQSortedList internal inconsistency")

    def queries(self):
        """Kept queries, best (smallest dissimilarity) first."""
        return [entry[2] for entry in self._entries]

    def __iter__(self):
        return iter(self.queries())

    def __repr__(self):
        return f"RQSortedList({len(self)}/{self.capacity})"
