"""Algorithm 1 — stack-based query refinement (Section VI-A).

Extends the stack-based SLCA algorithm of [3] over the *extended*
keyword set ``KS = getNewKeywords(Q) + Q``: every stack entry carries a
witness bitmask over KS, and whenever an entry is popped (its subtree
is complete) the algorithm

1. checks whether the popped node is a meaningful SLCA of the original
   query ``Q`` — if so, ``Q`` needs no refinement (Definition 3.4);
2. otherwise invokes ``getOptimalRQ`` on the witnessed keyword subset
   to maintain the refined query with minimum ``dSim(Q, RQ)`` whose
   match is meaningful, resetting the witness bits unique to an emitted
   RQ so ancestors do not re-derive the same result (the "pass the rest
   witness to the parent" rule of lines 18–19).

The scan is the paper's single merged pass over the KS inverted lists
(Theorem 1), served by the kernel layer's merged-stream LCP table
(:func:`repro.kernels.merged_lcp_runs`): the stack always holds
exactly the previous posting's components, so the shared-prefix
length the stack maintenance needs is the precomputed LCP of adjacent
merged labels — an indexed lookup instead of a per-posting prefix
comparison, and the popped node's label is a slice of the previous
key instead of a stack rebuild.  The table's sibling-leaf run
encoding goes further: a maximal chain of consecutive same-lane
sibling leaves pops one single-witness frame per posting with a
statically known outcome, so when that outcome is provably a no-op
(no Q-SLCA possible, the singleton DP cannot emit) the whole run is
retired with O(1) stack work — per-frame counters are emulated
exactly, keeping the statistics byte-identical.  Because the witness-reset rule is a heuristic about *where*
an RQ's matches end, the final result sets for the winning RQ(s) are
completed with one exact SLCA computation over the already decoded
lists — the candidate discovery itself remains one-scan, and the
chosen optimal RQ is identical either way (the tests assert it
against Algorithm 2).

This is deliberately the paper's *basic* solution: one DP invocation
per popped witness-bearing node makes it the slowest of the three
(Fig. 4's expected shape).
"""

from __future__ import annotations

import time

from ..kernels import columns_for, merged_lcp_runs, slca_columns
from ..lexicon.rules import RuleSet
from ..perf.profiling import phase
from ..xmltree.dewey import Dewey
from .common import QueryContext, rank_candidates
from .dp import get_optimal_rq
from .result import RefinementResponse, ScanStats


class _Entry:
    __slots__ = ("mask", "blocked_q")

    def __init__(self):
        self.mask = 0
        self.blocked_q = False


def stack_refine(index, query, rules=None, model=None, dp_memo=None):
    """Run Algorithm 1; returns a :class:`RefinementResponse` (Top-1).

    Parameters
    ----------
    index:
        A :class:`~repro.index.builder.DocumentIndex`.
    query:
        Keyword sequence or string.
    rules:
        The pertinent :class:`~repro.lexicon.rules.RuleSet`; an empty
        set (deletion only) when omitted.
    model:
        Ranking model used to order tied optimal candidates; the
        engine supplies one, standalone callers may omit it.
    dp_memo:
        Optional dict memoizing ``get_optimal_rq`` per witnessed
        keyword frozenset — a pure function of ``(query, witnessed,
        rules)``, so the planner shares it across calls.  Memo hits
        still count in ``stats.dp_invocations``.
    """
    from .ranking.model import full_model

    rules = rules if rules is not None else RuleSet()
    model = model if model is not None else full_model()
    started = time.perf_counter()

    context = QueryContext(index, query, rules)
    stats = ScanStats()
    stats.lists_opened = len(context.keyword_space)

    keyword_bit = {
        keyword: 1 << position
        for position, keyword in enumerate(context.keyword_space)
    }
    query_mask = 0
    for keyword in context.query:
        query_mask |= keyword_bit.get(keyword, 0)
    query_key = context.query_key()

    # One merge lane per keyword-space entry (a repeated keyword scans
    # its list twice, exactly as the per-keyword cursors did); each
    # lane contributes its keyword's witness bit.
    with phase("decode"):
        lane_columns = [
            columns_for(context.lists[keyword])
            for keyword in context.keyword_space
        ]
    bit_of_lane = [
        keyword_bit[keyword] for keyword in context.keyword_space
    ]

    needs_refine = True
    original_results = []
    min_dissimilarity = float("inf")
    best = {}  # rq key -> (RefinedQuery, [Dewey])
    optimal_memo = dp_memo if dp_memo is not None else {}

    stack = []

    def pop_entry(previous_key):
        """Pop the top entry; its node's label is ``previous_key`` up
        to the stack depth (the stack always spells out the previous
        merged posting's components)."""
        nonlocal needs_refine, min_dissimilarity
        depth = len(stack)
        entry = stack.pop()
        propagate = entry.mask
        if entry.blocked_q:
            if stack:
                stack[-1].blocked_q = True
        elif entry.mask & query_mask == query_mask and query_mask:
            # Popped node is an SLCA of the original query.
            dewey = Dewey.from_trusted(previous_key[:depth])
            if context.is_meaningful_node(dewey):
                needs_refine = False
                original_results.append(dewey)
            if stack:
                stack[-1].blocked_q = True
            propagate = 0  # line 12: reset all witness entries
        elif needs_refine and entry.mask:
            witnessed = frozenset(
                keyword
                for keyword, bit in keyword_bit.items()
                if entry.mask & bit
            )
            stats.dp_invocations += 1
            if witnessed in optimal_memo:
                optimal = optimal_memo[witnessed]
            else:
                optimal = get_optimal_rq(context.query, witnessed, rules)
                optimal_memo[witnessed] = optimal
            if (
                optimal is not None
                and optimal.key != query_key
                and optimal.dissimilarity <= min_dissimilarity
            ):
                dewey = Dewey.from_trusted(previous_key[:depth])
                if context.is_meaningful_node(dewey):
                    if optimal.dissimilarity < min_dissimilarity:
                        min_dissimilarity = optimal.dissimilarity
                        best.clear()
                    record = best.setdefault(
                        optimal.key, (optimal, [])
                    )
                    record[1].append(dewey)
                    # Deviation from the paper's lines 18-19: the
                    # witness bits are NOT reset.  Resetting the bits
                    # "unique to this RQ" can consume a witness that
                    # would have combined into a strictly better RQ at
                    # an ancestor (e.g. a lone acronym match emitted as
                    # a one-keyword RQ steals its bit from the
                    # inproceedings node above it), breaking Theorem
                    # 1's optimality.  Duplicate ancestor derivations
                    # the reset was meant to avoid are harmless here
                    # because the final result sets are completed by an
                    # exact SLCA pass below.
        if stack:
            stack[-1].mask |= propagate
            stack[-1].blocked_q = stack[-1].blocked_q or entry.blocked_q

    # ------------------------------------------------------------------
    # Merged single scan over the precomputed (lane, LCP) stream.  The
    # LCP table gives each posting's shared depth with the previous
    # one — which *is* the stack's surviving prefix — so stack
    # maintenance needs no component comparisons at all.
    # ------------------------------------------------------------------
    with phase("merge"):
        lanes, lcps, run_ends = merged_lcp_runs(lane_columns)
    positions = [0] * len(lane_columns)
    previous_key = ()
    skip_until = 0
    with phase("admit"):
        for i, lane in enumerate(lanes):
            if i < skip_until:
                continue
            key = lane_columns[lane].keys[positions[lane]]
            positions[lane] += 1
            stats.postings_scanned += 1
            shared = lcps[i]
            while len(stack) > shared:
                pop_entry(previous_key)
            for _ in range(shared, len(key)):
                stack.append(_Entry())
            stack[-1].mask |= bit_of_lane[lane]
            previous_key = key

            # Sibling-leaf run skip: every remaining posting of the run
            # pops exactly the one fresh frame its predecessor pushed.
            # When that frame carries only this lane's witness bit, is not
            # Q-blocked, cannot be a Q-SLCA (query_mask != bit), and the
            # singleton DP provably cannot emit (no optimal, the optimal
            # is Q itself, or its dissimilarity cannot beat the incumbent
            # — min_dissimilarity cannot change inside the run), each pop
            # is a no-op beyond its counters; retire the run in O(1),
            # emulating the per-frame statistics exactly.
            run_end = run_ends[i]
            if run_end > i:
                bit = bit_of_lane[lane]
                top = stack[-1]
                if top.mask == bit and not top.blocked_q and query_mask != bit:
                    emit_possible = False
                    if needs_refine:
                        witnessed = frozenset((context.keyword_space[lane],))
                        if witnessed in optimal_memo:
                            optimal = optimal_memo[witnessed]
                        else:
                            optimal = get_optimal_rq(
                                context.query, witnessed, rules
                            )
                            optimal_memo[witnessed] = optimal
                        emit_possible = (
                            optimal is not None
                            and optimal.key != query_key
                            and optimal.dissimilarity <= min_dissimilarity
                        )
                    if not emit_possible:
                        count = run_end - i
                        last = positions[lane] + count - 1
                        previous_key = lane_columns[lane].keys[last]
                        positions[lane] = last + 1
                        stats.postings_scanned += count
                        if needs_refine:
                            # The skipped pops all hit the memo just
                            # primed; they still count, as memo hits do.
                            stats.dp_invocations += count
                        if len(stack) >= 2:
                            stack[-2].mask |= bit
                        skip_until = run_end + 1

        while stack:
            pop_entry(previous_key)

    # ------------------------------------------------------------------
    # Finalize: complete exact result sets for the winning RQs.
    # ------------------------------------------------------------------
    refinements = []
    if needs_refine and best:
        candidate_map = {}
        with phase("merge"):
            for key, (rq, _witness_deweys) in best.items():
                stats.slca_invocations += 1
                slcas = slca_columns(
                    [
                        columns_for(context.index.inverted_list(k))
                        for k in rq.keywords
                    ]
                )
                meaningful = context.meaningful_only(slcas)
                if meaningful:
                    candidate_map[key] = (rq, meaningful)
        refinements = rank_candidates(context, model, candidate_map)
    if not needs_refine:
        original_results.sort()

    stats.elapsed_seconds = time.perf_counter() - started
    return RefinementResponse(
        query=context.query,
        needs_refinement=needs_refine,
        original_results=original_results if not needs_refine else [],
        refinements=refinements,
        search_for=context.search_for,
        stats=stats,
    )
