"""Algorithm 3 — short-list eager (SLE) Top-K refinement (Section VI-C).

Keyword frequencies vary wildly in practice, so SLE explores candidate
refined queries starting from the keyword with the **shortest**
inverted list: every partition containing that keyword is examined
(the other lists are only *probed* by random access — binary searches
that never move a cursor backwards), the local DP proposes candidates,
and the processed list is then retired.  After each iteration the
*potential* minimum dissimilarity ``C_potential`` of any refined query
over the remaining keywords is computed; once the candidate list is
full and ``C_potential`` exceeds its worst kept dissimilarity, no
unexplored candidate can qualify and exploration stops — often without
ever touching the long lists (step 1, lines 4–16).

Step 2 then computes SLCA results only for the kept candidates, using
any existing SLCA method (scan-eager here; the orthogonality of the
paper's discussion holds).  This back-loaded SLCA work is exactly why
SLE degrades faster than Partition as K grows (Fig. 5a).

The per-iteration keyword choice implements the paper's "smarter
choice": prefer keywords that need no refinement (they appear both in
``Q`` and the data) or that rules generate (RHS keywords), breaking
ties by shortest list.
"""

from __future__ import annotations

import time

from ..lexicon.rules import RuleSet
from ..slca.scan_eager import scan_eager_slca
from .candidates import RQSortedList
from .common import QueryContext, rank_candidates
from .dp import get_top_optimal_rqs
from .result import RefinementResponse, ScanStats


def _partitions_of(inverted_list):
    """Ordered distinct partition ids among a list's postings."""
    seen = []
    last = None
    for posting in inverted_list:
        pid = posting.dewey.partition_id()
        if pid is None or pid == last:
            continue
        seen.append(pid)
        last = pid
    return seen


def short_list_eager(index, query, rules=None, model=None, k=1,
                     smart_choice=True):
    """Run Algorithm 3; returns the Top-``k`` refined queries.

    ``smart_choice=False`` falls back to the plain shortest-list
    ordering (no preference for refinement-free / rule-generated
    keywords), for the ablation benchmark of the Section VI-C
    discussion.
    """
    from .ranking.model import full_model

    rules = rules if rules is not None else RuleSet()
    model = model if model is not None else full_model()
    started = time.perf_counter()

    context = QueryContext(index, query, rules)
    stats = ScanStats()
    stats.lists_opened = len(context.keyword_space)
    query_key = context.query_key()
    query_set = set(context.query)

    cursors = {
        keyword: context.lists[keyword].cursor()
        for keyword in context.keyword_space
    }
    remaining = {
        keyword
        for keyword in context.keyword_space
        if len(context.lists[keyword]) > 0
    }

    sorted_list = RQSortedList(capacity=max(2 * k, 2))
    found = {}  # rq key -> RefinedQuery
    visited_partitions = set()
    needs_refine = True
    original_results = []

    rhs_keywords = rules.generated_keywords()
    lhs_keywords = set()
    for rule in rules:
        lhs_keywords.update(rule.lhs)

    def choose_keyword():
        """The paper's smart choice of the next keyword to anchor on.

        Prefer a keyword that "either appears in the RHS of refinement
        rules related to Q or never appears in the LHS of any rule
        related to Q (i.e. does not need any refinement)", breaking
        ties by shortest inverted list.  With ``smart_choice`` off,
        pure shortest-list order is used.
        """
        def sort_key(keyword):
            preferred = (
                keyword in rhs_keywords or keyword not in lhs_keywords
            )
            rank = 0 if (preferred or not smart_choice) else 1
            return (rank, len(context.lists[keyword]), keyword)

        return min(remaining, key=sort_key)

    # ------------------------------------------------------------------
    # Step 1: explore Top-2K candidates.
    # ------------------------------------------------------------------
    while remaining:
        anchor_keyword = choose_keyword()
        anchor_cursor = cursors[anchor_keyword]

        for partition_id in _partitions_of(context.lists[anchor_keyword]):
            anchor_cursor.skip_to(partition_id)
            if partition_id in visited_partitions:
                continue
            visited_partitions.add(partition_id)
            stats.partitions_visited += 1

            # Random-access probes of every other keyword list.
            sublists = {}
            for keyword in context.keyword_space:
                if keyword == anchor_keyword:
                    postings = context.lists[keyword].sublist(partition_id)
                else:
                    postings = cursors[keyword].probe_partition(partition_id)
                    stats.probes += 1
                if postings:
                    sublists[keyword] = [p.dewey for p in postings]
            present = set(sublists)

            if query_set and query_set <= present:
                stats.slca_invocations += 1
                slcas = scan_eager_slca(
                    [sublists[keyword] for keyword in context.query]
                )
                meaningful = context.meaningful_only(slcas)
                if meaningful:
                    needs_refine = False
                    original_results.extend(meaningful)
            if not needs_refine:
                continue

            stats.dp_invocations += 1
            for rq in get_top_optimal_rqs(
                context.query, present, rules, sorted_list.capacity
            ):
                if rq.key == query_key:
                    continue
                already_kept = sorted_list.has_key(rq.key)
                if not already_kept and not sorted_list.would_admit(rq):
                    continue
                if not already_kept:
                    # Issue 2: a candidate may only occupy a Top-2K slot
                    # when it is assured a *meaningful* match; a cheap
                    # partition-local SLCA check (over the already
                    # probed sublists) prevents meaningless candidates
                    # from evicting real ones.  Full result sets are
                    # still deferred to step 2.
                    stats.slca_invocations += 1
                    local = scan_eager_slca(
                        [sublists[keyword] for keyword in rq.keywords]
                    )
                    if not context.meaningful_only(local):
                        continue
                if sorted_list.insert(rq):
                    found[rq.key] = rq

        remaining.discard(anchor_keyword)
        if not needs_refine:
            # Q's SLCAs may still exist in partitions only reachable
            # through other keywords; keep iterating only over lists of
            # Q's own keywords to complete the original results.
            remaining.intersection_update(query_set)
            continue

        # Stop condition: C_potential over the remaining keywords.
        if sorted_list.is_full and remaining:
            stats.dp_invocations += 1
            potential = get_top_optimal_rqs(
                context.query, remaining, rules, 1
            )
            c_potential = (
                potential[0].dissimilarity if potential else float("inf")
            )
            if c_potential > sorted_list.max_dissimilarity():
                break

    # ------------------------------------------------------------------
    # Step 2: SLCA computation for the kept candidates only.
    # ------------------------------------------------------------------
    ranked = []
    if needs_refine:
        candidate_map = {}
        for rq in sorted_list.queries():
            label_lists = [
                [p.dewey for p in context.index.inverted_list(keyword)]
                for keyword in rq.keywords
            ]
            stats.slca_invocations += 1
            slcas = scan_eager_slca(label_lists)
            meaningful = context.meaningful_only(slcas)
            if meaningful:
                candidate_map[rq.key] = (rq, meaningful)
        ranked = rank_candidates(context, model, candidate_map)
    else:
        original_results = sorted(set(original_results))

    stats.elapsed_seconds = time.perf_counter() - started
    return RefinementResponse(
        query=context.query,
        needs_refinement=needs_refine,
        original_results=original_results if not needs_refine else [],
        refinements=ranked[:k],
        candidates=ranked,
        search_for=context.search_for,
        stats=stats,
    )
