"""Algorithm 3 — short-list eager (SLE) Top-K refinement (Section VI-C).

Keyword frequencies vary wildly in practice, so SLE explores candidate
refined queries starting from the keyword with the **shortest**
inverted list: every partition containing that keyword is examined
(the other lists are only *probed* by random access — per-partition
range lookups in the kernel layer's partition tables, which never
touch a posting), the local DP proposes candidates, and the processed
list is then retired.  After each iteration the *potential* minimum
dissimilarity ``C_potential`` of any refined query over the remaining
keywords is computed; once the candidate list is full and
``C_potential`` exceeds its worst kept dissimilarity, no unexplored
candidate can qualify and exploration stops — often without ever
touching the long lists (step 1, lines 4–16).  Before ``C_potential``
even runs, a visited partition is pre-screened by the block-max
presence bound (:class:`repro.kernels.PresenceBoundCache`) — the
WAND-style skip that rejects hopeless blocks from presence masks
alone.

Step 2 then computes SLCA results only for the kept candidates, using
any existing SLCA method (the columnar scan-eager kernel here; the
orthogonality of the paper's discussion holds).  This back-loaded SLCA
work is exactly why SLE degrades faster than Partition as K grows
(Fig. 5a).

The per-iteration keyword choice implements the paper's "smarter
choice": prefer keywords that need no refinement (they appear both in
``Q`` and the data) or that rules generate (RHS keywords), breaking
ties by shortest list.
"""

from __future__ import annotations

import time

from ..kernels import (
    PresenceBoundCache,
    admission_sweep,
    columns_for,
    partition_presence,
    prepare_beam,
    presence_ready,
    slca_ranges,
)
from ..lexicon.rules import RuleSet
from ..perf.profiling import phase
from .candidates import RQSortedList
from .common import QueryContext, rank_candidates
from .dp import get_top_optimal_rqs
from .result import RefinementResponse, ScanStats


def short_list_eager(index, query, rules=None, model=None, k=1,
                     smart_choice=True, dp_memos=None):
    """Run Algorithm 3; returns the Top-``k`` refined queries.

    ``smart_choice=False`` falls back to the plain shortest-list
    ordering (no preference for refinement-free / rule-generated
    keywords), for the ablation benchmark of the Section VI-C
    discussion.  ``dp_memos`` is the planner's optional
    ``(probe_memo, beam_memo)`` pair (see
    :func:`~repro.core.partition_refine.partition_refine`); the
    ``C_potential`` probes share the 1-beam memo, since they are the
    same pure DP over the remaining-keyword set.
    """
    from .ranking.model import full_model

    rules = rules if rules is not None else RuleSet()
    model = model if model is not None else full_model()
    started = time.perf_counter()

    context = QueryContext(index, query, rules)
    stats = ScanStats()
    stats.lists_opened = len(context.keyword_space)
    query_key = context.query_key()
    query_set = set(context.query)

    # One column set per distinct keyword; lane order indexes the
    # presence bitmasks fed to the block-max bound.
    lanes = list(dict.fromkeys(context.keyword_space))
    lane_of = {keyword: lane for lane, keyword in enumerate(lanes)}
    with phase("decode"):
        columns = {keyword: columns_for(context.lists[keyword])
                   for keyword in lanes}
    remaining = {
        keyword
        for keyword in context.keyword_space
        if len(context.lists[keyword]) > 0
    }

    sorted_list = RQSortedList(capacity=max(2 * k, 2))
    visited_partitions = set()
    needs_refine = True
    original_results = []
    probe_memo, beam_memo = dp_memos if dp_memos is not None else ({}, {})
    presence_bound = PresenceBoundCache(context.query, rules, lanes)
    lane_columns = [columns[keyword] for keyword in lanes]
    query_lane_mask = 0
    query_covered = bool(query_set)
    for keyword in query_set:
        lane = lane_of.get(keyword)
        if lane is None:
            query_covered = False
        else:
            query_lane_mask |= 1 << lane

    def probe_minimum(available):
        """Memoized 1-beam DP: the least dSim achievable in ``available``."""
        key = frozenset(available)
        probe = probe_memo.get(key)
        if probe is None:
            probe = get_top_optimal_rqs(context.query, available, rules, 1)
            probe_memo[key] = probe
        return probe[0].dissimilarity if probe else float("inf")

    rhs_keywords = rules.generated_keywords()
    lhs_keywords = set()
    for rule in rules:
        lhs_keywords.update(rule.lhs)

    # Batch presence: when every lane's partition table is resident
    # (always true for eager columns; blocked columns only after a
    # whole-list consumer paid for the decode), the whole probe phase
    # of an anchor round is one merge-join over flat tables instead of
    # per-partition dict lookups.  Blocked indexes keep the header-first
    # probe loop — the batch path must never force a lazy decode.
    batch_ready = presence_ready(lane_columns)
    nlanes = len(lanes)
    present_of_mask = {}  # lane mask -> frozenset of present keywords
    prepared_memo = {}    # present frozenset -> PreparedBeam

    def present_for(mask):
        cached = present_of_mask.get(mask)
        if cached is None:
            cached = frozenset(
                lanes[lane] for lane in range(nlanes) if mask >> lane & 1
            )
            present_of_mask[mask] = cached
        return cached

    def build_row_sublists(spans_flat, base):
        built = {}
        for lane in range(nlanes):
            lo = spans_flat[base + 2 * lane]
            if lo >= 0:
                built[lanes[lane]] = (
                    lane_columns[lane], lo, spans_flat[base + 2 * lane + 1]
                )
        return built

    def choose_keyword():
        """The paper's smart choice of the next keyword to anchor on.

        Prefer a keyword that "either appears in the RHS of refinement
        rules related to Q or never appears in the LHS of any rule
        related to Q (i.e. does not need any refinement)", breaking
        ties by shortest inverted list.  With ``smart_choice`` off,
        pure shortest-list order is used.
        """
        def sort_key(keyword):
            preferred = (
                keyword in rhs_keywords or keyword not in lhs_keywords
            )
            rank = 0 if (preferred or not smart_choice) else 1
            return (rank, len(context.lists[keyword]), keyword)

        return min(remaining, key=sort_key)

    # ------------------------------------------------------------------
    # Step 1: explore Top-2K candidates.
    # ------------------------------------------------------------------
    with phase("admit"):
        while remaining:
            anchor_keyword = choose_keyword()
            anchor_columns = columns[anchor_keyword]
            if batch_ready:
                # The whole round's probe phase at once: per anchor
                # partition, the presence mask and every lane's posting
                # span, from one merge-join (compiled when the backend is).
                with phase("merge"):
                    masks, spans_flat = partition_presence(
                        anchor_columns, lane_columns
                    )
                # The sequential loop counted one probe per keyword-space
                # entry (duplicates included) that differs from the anchor,
                # for every partition that passed the pre-screen.
                probes_per_partition = sum(
                    1 for keyword in context.keyword_space
                    if keyword != anchor_keyword
                )
            else:
                masks = None

            for pindex, partition_id in enumerate(anchor_columns.pids):
                if partition_id in visited_partitions:
                    continue
                visited_partitions.add(partition_id)
                stats.partitions_visited += 1

                sublists = None  # keyword -> (ListColumns, lo, hi)
                base = pindex * nlanes * 2
                if masks is not None:
                    mask = masks[pindex]
                    # Pre-screen from the batch mask: for resident tables
                    # the mask is exact, so the decisions coincide with the
                    # header screen's (whose may-masks are supersets that
                    # collapse to the truth on eager columns).
                    if sorted_list.is_full or not needs_refine:
                        query_may = query_covered and (
                            mask & query_lane_mask == query_lane_mask
                        )
                        if not needs_refine:
                            # Only original results remain; a partition
                            # that cannot hold all of Q's keywords has
                            # nothing left to offer.
                            if not query_may:
                                stats.partitions_skipped += 1
                                continue
                        elif (
                            not query_may
                            and presence_bound.lower_bound(mask)
                            > sorted_list.max_dissimilarity()
                        ):
                            stats.partitions_skipped += 1
                            continue
                    stats.probes += probes_per_partition
                else:
                    # Block-max pre-screen: reject the partition from the
                    # block headers alone, before a single posting block is
                    # decoded or probe runs.  ``header_bound`` masks are
                    # supersets of the real presence masks, so the bound
                    # can only be lower than the post-probe one — pruning
                    # on it is answer-identical.  A partition that may
                    # still hold every query keyword is never pre-screened,
                    # so original-result discovery sees exactly the
                    # partitions it always did.
                    if sorted_list.is_full or not needs_refine:
                        bound, may_mask = presence_bound.header_bound(
                            partition_id, lane_columns
                        )
                        query_may = query_covered and (
                            may_mask & query_lane_mask == query_lane_mask
                        )
                        if not needs_refine:
                            if not query_may:
                                stats.partitions_skipped += 1
                                continue
                        elif (
                            not query_may
                            and bound > sorted_list.max_dissimilarity()
                        ):
                            stats.partitions_skipped += 1
                            continue

                    # Random-access probes of every other keyword list: one
                    # partition-table lookup each, no posting is touched.
                    sublists = {}
                    mask = 0
                    for keyword in context.keyword_space:
                        if keyword != anchor_keyword:
                            stats.probes += 1
                        span = columns[keyword].pid_range.get(partition_id)
                        if span is not None:
                            sublists[keyword] = (columns[keyword],) + span
                            mask |= 1 << lane_of[keyword]

                if query_covered and mask & query_lane_mask == query_lane_mask:
                    stats.slca_invocations += 1
                    if sublists is None:
                        sublists = build_row_sublists(spans_flat, base)
                    slcas = slca_ranges(
                        [sublists[keyword] for keyword in context.query]
                    )
                    meaningful = context.meaningful_only(slcas)
                    if meaningful:
                        needs_refine = False
                        original_results.extend(meaningful)
                if not needs_refine:
                    continue

                # Per-partition skip bound (mirrors Partition's
                # optimization 2): once the Top-2K list is full, a
                # partition whose cheapest derivable RQ provably exceeds
                # the worst kept dissimilarity cannot change the list —
                # new keys lose under the content order, and re-offers of
                # kept keys at a worse dSim never mutate it.  The
                # mask-memoized presence bound runs first (no DP at all);
                # both comparisons are strict, so skipping is
                # answer-identical.
                if sorted_list.is_full:
                    threshold = sorted_list.max_dissimilarity()
                    if presence_bound.lower_bound(mask) > threshold:
                        stats.partitions_skipped += 1
                        continue
                    stats.dp_invocations += 1
                    if probe_minimum(present_for(mask)) > threshold:
                        stats.partitions_skipped += 1
                        continue

                stats.dp_invocations += 1
                present_key = present_for(mask)
                local_candidates = beam_memo.get(present_key)
                if local_candidates is None:
                    local_candidates = get_top_optimal_rqs(
                        context.query, present_key, rules,
                        sorted_list.capacity
                    )
                    beam_memo[present_key] = local_candidates
                prepared = prepared_memo.get(present_key)
                if prepared is None:
                    prepared = prepare_beam(local_candidates)
                    prepared_memo[present_key] = prepared
                # Vectorized admission sweep, then the exact per-candidate
                # re-check on survivors (see kernels/scoring.py for why the
                # superset pre-filter is answer- and stats-identical).
                for index_in_beam in admission_sweep(
                    prepared, sorted_list, query_key
                ):
                    rq = local_candidates[index_in_beam]
                    already_kept = sorted_list.has_key(rq.key)
                    if not already_kept and not sorted_list.would_admit(rq):
                        continue
                    if not already_kept:
                        # Issue 2: a candidate may only occupy a Top-2K slot
                        # when it is assured a *meaningful* match; a cheap
                        # partition-local SLCA check (over the already
                        # probed ranges) prevents meaningless candidates
                        # from evicting real ones.  Full result sets are
                        # still deferred to step 2.
                        stats.slca_invocations += 1
                        if sublists is None:
                            sublists = build_row_sublists(spans_flat, base)
                        local = slca_ranges(
                            [sublists[keyword] for keyword in rq.keywords]
                        )
                        if not context.meaningful_only(local):
                            continue
                    sorted_list.insert(rq)

            remaining.discard(anchor_keyword)
            if not needs_refine:
                # Q's SLCAs may still exist in partitions only reachable
                # through other keywords; keep iterating only over lists of
                # Q's own keywords to complete the original results.
                remaining.intersection_update(query_set)
                continue

            # Stop condition: C_potential over the remaining keywords,
            # seeded against the best (tightest) Top-2K threshold carried
            # across anchor rounds.  Shares the 1-beam probe memo — the
            # same pure DP over a different keyword set.
            if sorted_list.is_full and remaining:
                stats.dp_invocations += 1
                if probe_minimum(remaining) > sorted_list.max_dissimilarity():
                    break

    # ------------------------------------------------------------------
    # Step 2: SLCA computation for the kept candidates only.
    # ------------------------------------------------------------------
    ranked = []
    if needs_refine:
        candidate_map = {}
        with phase("merge"):
            for rq in sorted_list.queries():
                whole_lists = [
                    (columns[keyword], 0, columns[keyword].size)
                    for keyword in rq.keywords
                ]
                stats.slca_invocations += 1
                slcas = slca_ranges(whole_lists)
                meaningful = context.meaningful_only(slcas)
                if meaningful:
                    candidate_map[rq.key] = (rq, meaningful)
        ranked = rank_candidates(context, model, candidate_map)
    else:
        original_results = sorted(set(original_results))

    stats.elapsed_seconds = time.perf_counter() - started
    return RefinementResponse(
        query=context.query,
        needs_refinement=needs_refine,
        original_results=original_results if not needs_refine else [],
        refinements=ranked[:k],
        candidates=ranked,
        search_for=context.search_for,
        stats=stats,
    )
