"""Query specialization — the paper's stated future work (Section IX).

The conclusion names "another extreme of our work — how to refine a
query which has *too many* matching results over XML data".  This
module implements that direction with the machinery already in place:

Given a query Q whose meaningful SLCA count exceeds a threshold,
propose *specialized* queries ``Q + {k'}`` where the expansion keyword
``k'``

1. co-occurs with Q's keywords inside the search-for subtrees — scored
   with the same association confidence the dependence score uses
   (Formula 7), so the suggestion is statistically grounded;
2. genuinely narrows the result set (strictly fewer, but more than
   zero, meaningful SLCAs — Lemma 1 guarantees the results of a
   superset query are a subset, so specialization can only narrow).

Candidates are ranked by a trade-off between *focus* (how much the
result set shrinks) and *support* (how strongly k' associates with Q),
so the top suggestions split the original result set into meaningful
slices rather than cherry-picking one stray result.
"""

from __future__ import annotations

import math
from collections import Counter

from ..errors import QueryError
from ..index.tokenize_text import extract_terms, query_terms
from ..slca.meaningful import infer_search_for, meaningful_slcas
from ..slca.scan_eager import scan_eager_slca

#: A query is "too broad" above this many meaningful results.
DEFAULT_BROAD_THRESHOLD = 20
#: Candidate expansion terms scanned per query (most frequent first).
DEFAULT_CANDIDATE_LIMIT = 40


class SpecializedQuery:
    """One narrowing suggestion ``Q + {expansion}`` with its results."""

    __slots__ = ("keywords", "expansion", "slcas", "support", "score")

    def __init__(self, keywords, expansion, slcas, support, score):
        self.keywords = tuple(keywords)
        self.expansion = expansion
        self.slcas = list(slcas)
        self.support = support
        self.score = score

    @property
    def result_count(self):
        return len(self.slcas)

    def __repr__(self):
        return (
            f"SpecializedQuery(+{self.expansion!r}, "
            f"results={len(self.slcas)}, score={self.score:.3f})"
        )


class SpecializationResponse:
    """Outcome of :func:`specialize_query`."""

    __slots__ = ("query", "is_broad", "original_results", "suggestions")

    def __init__(self, query, is_broad, original_results, suggestions):
        self.query = tuple(query)
        self.is_broad = is_broad
        self.original_results = list(original_results)
        self.suggestions = list(suggestions)

    def __repr__(self):
        status = "broad" if self.is_broad else "focused"
        return (
            f"SpecializationResponse({{{', '.join(self.query)}}}: {status}, "
            f"{len(self.suggestions)} suggestions)"
        )


def _meaningful_results(index, terms, search_for):
    lists = [[p.dewey for p in index.inverted_list(t)] for t in terms]
    if any(not labels for labels in lists):
        return []
    return meaningful_slcas(index, scan_eager_slca(lists), search_for)


def _expansion_candidates(index, results, query_set, limit):
    """Frequent subtree terms of the current results, minus Q itself."""
    counts = Counter()
    for dewey in results:
        node = index.tree.get(dewey)
        if node is None:
            continue
        seen_here = set()
        for term in extract_terms(node.subtree_text()):
            if term in query_set or len(term) < 2:
                continue
            if term not in seen_here:
                counts[term] += 1
                seen_here.add(term)
        for descendant in index.tree.iter_subtree(dewey):
            tag = descendant.tag.lower()
            if tag not in query_set and tag not in seen_here:
                counts[tag] += 1
                seen_here.add(tag)
    return [term for term, _ in counts.most_common(limit)]


def specialize_query(
    index,
    query,
    k=3,
    broad_threshold=DEFAULT_BROAD_THRESHOLD,
    candidate_limit=DEFAULT_CANDIDATE_LIMIT,
):
    """Suggest Top-``k`` narrowing refinements for an over-broad query.

    Returns a :class:`SpecializationResponse`; when the query is not
    broad (fewer than ``broad_threshold`` meaningful results) the
    response carries the original results and no suggestions — mirroring
    how the refinement engine leaves healthy queries alone (Issue 1).
    """
    terms = query_terms(query)
    if not terms:
        raise QueryError("the keyword query is empty")
    search_for = infer_search_for(index, terms)
    original = _meaningful_results(index, terms, search_for)
    if len(original) < broad_threshold:
        return SpecializationResponse(terms, False, original, [])

    query_set = set(terms)
    original_count = len(original)
    suggestions = []
    for expansion in _expansion_candidates(
        index, original, query_set, candidate_limit
    ):
        narrowed = _meaningful_results(
            index, terms + [expansion], search_for
        )
        if not narrowed or len(narrowed) >= original_count:
            continue
        # Support: how strongly the expansion associates with Q within
        # the search-for subtrees (mean Formula-7 confidence).
        if search_for:
            support = sum(
                index.cooccurrence.confidence(
                    term, expansion, candidate.node_type
                )
                for term in terms
                for candidate in search_for
            ) / (len(terms) * len(search_for))
        else:
            support = 0.0
        coverage = len(narrowed) / original_count
        # Score favours meaningful slices (not singletons, not
        # near-total coverage) with strong association.
        focus = -abs(math.log(max(coverage, 1e-9)) - math.log(0.3))
        score = support + focus
        suggestions.append(
            SpecializedQuery(
                terms + [expansion], expansion, narrowed, support, score
            )
        )
    suggestions.sort(key=lambda s: (-s.score, s.expansion))
    return SpecializationResponse(terms, True, original, suggestions[:k])
