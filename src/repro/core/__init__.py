"""The paper's primary contribution: automatic keyword query refinement.

Contains the ``getOptimalRQ`` dynamic program (Section V), the three
one-scan refinement algorithms (Section VI), the ranking model
(Section IV) and the :class:`~repro.core.engine.XRefine` facade tying
them to the index substrate.
"""

from .baselines import cleaned_query_has_meaningful_result, or_search, static_clean
from .candidates import RefinedQuery, RQSortedList
from .common import QueryContext
from .dp import dissimilarity, get_optimal_rq, get_top_optimal_rqs
from .engine import ALGORITHMS, SLCA_ALGORITHMS, XRefine
from .partition_refine import partition_refine
from .presentation import Snippet, present, return_node, snippet
from .ranking import RankingModel, full_model, variant_without_guideline
from .result import RankedRefinement, RefinementResponse, ScanStats
from .short_list_eager import short_list_eager
from .specialize import SpecializationResponse, SpecializedQuery, specialize_query
from .stack_refine import stack_refine

__all__ = [
    "XRefine",
    "ALGORITHMS",
    "SLCA_ALGORITHMS",
    "RefinedQuery",
    "RQSortedList",
    "QueryContext",
    "get_optimal_rq",
    "get_top_optimal_rqs",
    "dissimilarity",
    "stack_refine",
    "partition_refine",
    "short_list_eager",
    "RankingModel",
    "full_model",
    "variant_without_guideline",
    "RankedRefinement",
    "RefinementResponse",
    "ScanStats",
    "specialize_query",
    "SpecializedQuery",
    "SpecializationResponse",
    "or_search",
    "static_clean",
    "cleaned_query_has_meaningful_result",
    "present",
    "snippet",
    "return_node",
    "Snippet",
]
