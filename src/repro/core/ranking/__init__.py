"""The query ranking model of Section IV.

Similarity (Guidelines 1–4, Formulas 2–6) + dependence (Guideline 5,
Formulas 7–9), combined by Formula 10, with every ablation knob Table
IX and Table X exercise.
"""

from .dependence import dependence, dependence_for_type, pair_confidence
from .model import RankingModel, full_model, variant_without_guideline
from .results import rank_response_results, rank_results, score_result
from .search_for import (
    DEFAULT_COMPARABLE_FRACTION,
    DEFAULT_REDUCTION,
    SearchForCandidate,
    confidence,
    infer_search_for,
)
from .similarity import (
    DEFAULT_DECAY,
    importance,
    keyword_importance,
    similarity,
    similarity_for_type,
)

__all__ = [
    "RankingModel",
    "full_model",
    "variant_without_guideline",
    "similarity",
    "similarity_for_type",
    "importance",
    "keyword_importance",
    "DEFAULT_DECAY",
    "dependence",
    "dependence_for_type",
    "pair_confidence",
    "rank_results",
    "rank_response_results",
    "score_result",
    "SearchForCandidate",
    "confidence",
    "infer_search_for",
    "DEFAULT_REDUCTION",
    "DEFAULT_COMPARABLE_FRACTION",
]
