"""Similarity score of a refined query (Section IV-A, Formulas 2–6).

Four incremental guidelines:

* **Guideline 1** (Formula 2) — term-frequency evidence:
  ``Imp(RQ, T) = sum_{k in RQ} tf(k, T) / G_T``.
* **Guideline 2** (Formula 3) — keyword discriminative power:
  ``Imp_ki(Q, T) = ln(N_T / (1 + f_ki^T))``.
* **Guideline 3** (Formula 5) — weight per-type scores by the
  search-for confidence ``C_for(T, Q)`` when several types qualify.
* **Guideline 4** (Formula 6) — decay by the rule-based dissimilarity:
  the final similarity is scaled by ``decay ** dSim(Q, RQ)``.

.. note:: **Formula 4's summation domain.**  The paper prints the
   Guideline-2 multiplier as a sum over ``RQ △ Q`` (keywords deleted
   or newly generated).  Taken literally this *rewards* deleting
   discriminative keywords — the opposite of Guideline 2's own text
   and of Example 2, where the RQ that *keeps* the discriminative
   keyword (``join``, XML DF 9462) must outrank the one keeping the
   common one (``pattern``, XML DF 17297).  Summing over the keywords
   **of RQ** restores consistency and matches the paper's own gloss
   that Guideline 1 plays the TF role and Guideline 2 the IDF role of
   TF*IDF.  The consistent reading is the default; pass
   ``domain="sym_diff"`` for the literal formula (exercised by an
   ablation benchmark).
"""

from __future__ import annotations

import math

#: Decay factor of Guideline 4; 0.8 is the paper's empirical choice.
DEFAULT_DECAY = 0.8


def importance(index, rq_keywords, node_type):
    """Formula 2: accumulated normalized term frequency of RQ under T."""
    g_t = index.distinct_keywords(node_type)
    if g_t == 0:
        return 0.0
    return sum(index.tf(k, node_type) for k in rq_keywords) / g_t


def keyword_importance(index, keyword, node_type):
    """Formula 3: discriminative power of one keyword w.r.t. type T.

    Uses the standard smoothed IDF ``ln(1 + N_T / (1 + f_k^T))`` rather
    than the raw ``ln(N_T / (1 + f_k^T))``: the raw form goes negative
    whenever a keyword occurs under most T-typed nodes (inevitable on
    small documents), which would let a *more* frequent keyword push
    the score below zero.  The smoothing preserves the ordering Formula
    3 encodes while keeping every importance positive.
    """
    n_t = index.node_count(node_type)
    if n_t == 0:
        return 0.0
    return math.log(1 + n_t / (1 + index.xml_df(keyword, node_type)))


def _guideline2_domain(rq_keywords, original_keywords, domain):
    rq_set = set(rq_keywords)
    original = set(original_keywords)
    if domain == "rq":
        return rq_set
    if domain == "sym_diff":
        return rq_set ^ original
    raise ValueError(f"unknown Guideline-2 domain {domain!r}")


def similarity_for_type(
    index,
    rq_keywords,
    original_keywords,
    node_type,
    domain="rq",
    use_g1=True,
    use_g2=True,
):
    """Formula 4: per-type similarity ``rho(RQ, Q | T)``.

    ``use_g1`` / ``use_g2`` switch either multiplier to 1, producing
    the RS1 / RS2 ablation variants of Section VIII-C.
    """
    first = importance(index, rq_keywords, node_type) if use_g1 else 1.0
    if use_g2:
        second = sum(
            keyword_importance(index, k, node_type)
            for k in _guideline2_domain(rq_keywords, original_keywords, domain)
        )
    else:
        second = 1.0
    return first * second


def similarity(
    index,
    rq,
    original_keywords,
    search_for,
    decay=DEFAULT_DECAY,
    domain="rq",
    use_g1=True,
    use_g2=True,
    use_g3=True,
    use_g4=True,
):
    """Formulas 5+6: the full similarity score of a refined query.

    Parameters
    ----------
    index:
        A :class:`~repro.index.builder.DocumentIndex`.
    rq:
        A :class:`~repro.core.candidates.RefinedQuery`.
    original_keywords:
        The original query ``Q``.
    search_for:
        List of :class:`~repro.slca.meaningful.SearchForCandidate`
        (``T_for`` with confidences), best first.
    decay:
        Guideline-4 decay factor in (0, 1).
    use_g3:
        When False, only the single best search-for type contributes
        (the RS3 variant); otherwise the confidence-weighted sum of
        Formula 5 is used.
    use_g4:
        When False, the dissimilarity decay is skipped (RS4).
    """
    if not search_for:
        return 0.0
    candidates = search_for if use_g3 else search_for[:1]
    total = 0.0
    for candidate in candidates:
        per_type = similarity_for_type(
            index,
            rq.keywords,
            original_keywords,
            candidate.node_type,
            domain=domain,
            use_g1=use_g1,
            use_g2=use_g2,
        )
        total += candidate.confidence * per_type
    if use_g4:
        total *= decay ** rq.dissimilarity
    return total
