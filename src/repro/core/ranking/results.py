"""Within-query result ranking — XML TF*IDF in the style of [6].

The paper ranks *refined queries*; the authors' companion work [6]
(cited in Sections II and III-A) ranks the *results* of a query with an
XML-aware TF*IDF.  This module provides that layer so the engine can
order the meaningful SLCAs of each refined query rather than emit them
in document order:

    score(r, Q) = sum_k  tf(k, r) / |r|  *  ln(1 + N_T / (1 + f_k^T))

where ``tf(k, r)`` counts k's occurrences in the result subtree,
``|r|`` is the subtree's term volume (length normalization), ``T`` is
the result's entity type and ``f_k^T`` / ``N_T`` come straight from the
frequent table — i.e. the IDF part reuses Formula 3's statistics.
"""

from __future__ import annotations

from collections import Counter

from ...index.tokenize_text import node_keywords
from .similarity import keyword_importance


def result_term_counts(index, dewey):
    """Term frequency of every keyword inside one result subtree."""
    counts = Counter()
    for node in index.tree.iter_subtree(dewey):
        counts.update(node_keywords(node))
    return counts


def score_result(index, dewey, keywords, node_type=None):
    """XML TF*IDF score of one result subtree for a keyword set."""
    node = index.tree.get(dewey)
    if node is None:
        return 0.0
    if node_type is None:
        node_type = node.node_type
    counts = result_term_counts(index, dewey)
    volume = sum(counts.values())
    if volume == 0:
        return 0.0
    score = 0.0
    for keyword in keywords:
        tf = counts.get(keyword, 0)
        if not tf:
            continue
        score += (tf / volume) * keyword_importance(index, keyword, node_type)
    return score


def rank_results(index, labels, keywords):
    """Sort result labels by descending XML TF*IDF score.

    Ties break by document order, keeping the output deterministic.
    """
    scored = [
        (score_result(index, dewey, keywords), dewey) for dewey in labels
    ]
    scored.sort(key=lambda item: (-item[0], item[1].components))
    return [dewey for _, dewey in scored]


def rank_response_results(index, response):
    """Reorder every result list of a refinement response in place."""
    if not response.needs_refinement:
        response.original_results[:] = rank_results(
            index, response.original_results, response.query
        )
        return response
    for refinement in response.refinements:
        refinement.slcas[:] = rank_results(
            index, refinement.slcas, refinement.rq.keywords
        )
    return response
