"""Dependence score of a refined query (Section IV-B, Formulas 7–9).

The similarity score treats query terms as independent; the dependence
score complements it with Guideline 5: an RQ is effective for a
search-for type ``T`` when its keywords co-occur frequently in T-typed
subtrees.  Formula 7 is an association-rule confidence,

    C(ki => k) = f_{ki,k}^T / f_{ki}^T,

Formula 8 accumulates it over all ordered keyword pairs of the RQ and
normalizes by ``|RQ|`` (Guideline 5 would otherwise favour long
queries), and Formula 9 applies the Guideline-3 confidence weighting
across multiple search-for candidates.
"""

from __future__ import annotations


def pair_confidence(index, ki, k, node_type):
    """Formula 7: how often ``k`` appears in T-subtrees containing ``ki``."""
    return index.cooccurrence.confidence(ki, k, node_type)


def dependence_for_type(index, rq_keywords, node_type):
    """Formula 8: normalized pairwise dependence of RQ under type T."""
    keywords = list(dict.fromkeys(rq_keywords))
    if len(keywords) < 2:
        return 0.0
    total = 0.0
    for k in keywords:
        for ki in keywords:
            if ki == k:
                continue
            total += pair_confidence(index, ki, k, node_type)
    return total / len(keywords)


def dependence(index, rq, search_for, use_g3=True):
    """Formula 9: overall dependence score of a refined query."""
    if not search_for:
        return 0.0
    candidates = search_for if use_g3 else search_for[:1]
    return sum(
        candidate.confidence
        * dependence_for_type(index, rq.keywords, candidate.node_type)
        for candidate in candidates
    )
