"""The complete query ranking model (Formula 10) with ablation variants.

``Rank(RQ) = alpha * rho(RQ, Q) + beta * Dep(RQ, Q)`` — a weighted sum
of the similarity score (Formulas 2–6) and the dependence score
(Formulas 7–9).  ``alpha = beta = 1`` is the paper's default; Section
VIII-C sweeps the weights (Table X) and ablates the four similarity
guidelines (Table IX, variants RS1–RS4 versus the full model RS0).
"""

from __future__ import annotations

from .dependence import dependence
from .similarity import DEFAULT_DECAY, similarity


class RankingModel:
    """Configurable instance of the Section-IV ranking model.

    Parameters
    ----------
    alpha, beta:
        Formula-10 weights for similarity and dependence.
    decay:
        Guideline-4 decay factor (``0.8`` per the paper).
    use_g1 .. use_g4:
        Toggle the four similarity guidelines; switching ``use_gi`` off
        yields the RS``i`` variant of Table IX.
    g2_domain:
        ``"rq"`` (consistent reading, default) or ``"sym_diff"``
        (the literal Formula 4); see
        :mod:`repro.core.ranking.similarity`.
    """

    def __init__(
        self,
        alpha=1.0,
        beta=1.0,
        decay=DEFAULT_DECAY,
        use_g1=True,
        use_g2=True,
        use_g3=True,
        use_g4=True,
        g2_domain="rq",
    ):
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must lie in (0, 1), got {decay}")
        self.alpha = alpha
        self.beta = beta
        self.decay = decay
        self.use_g1 = use_g1
        self.use_g2 = use_g2
        self.use_g3 = use_g3
        self.use_g4 = use_g4
        self.g2_domain = g2_domain

    # ------------------------------------------------------------------
    def similarity_score(self, index, rq, original_keywords, search_for):
        """``rho(RQ, Q)`` after Guideline-4 decay (Formulas 2–6)."""
        return similarity(
            index,
            rq,
            original_keywords,
            search_for,
            decay=self.decay,
            domain=self.g2_domain,
            use_g1=self.use_g1,
            use_g2=self.use_g2,
            use_g3=self.use_g3,
            use_g4=self.use_g4,
        )

    def dependence_score(self, index, rq, search_for):
        """``Dep(RQ, Q)`` (Formulas 7–9)."""
        return dependence(index, rq, search_for, use_g3=self.use_g3)

    def rank(self, index, rq, original_keywords, search_for):
        """Formula 10: the overall rank value of one refined query."""
        score = 0.0
        if self.alpha:
            score += self.alpha * self.similarity_score(
                index, rq, original_keywords, search_for
            )
        if self.beta:
            score += self.beta * self.dependence_score(index, rq, search_for)
        return score

    def rank_all(self, index, rqs, original_keywords, search_for):
        """Score and sort candidates, best first.

        Ties (e.g. all-zero scores) fall back to ascending
        dissimilarity, then keyword order, keeping results
        deterministic.
        """
        scored = [
            (
                self.rank(index, rq, original_keywords, search_for),
                rq,
            )
            for rq in rqs
        ]
        scored.sort(key=lambda item: (-item[0], item[1].dissimilarity, item[1].keywords))
        return scored

    def __repr__(self):
        flags = "".join(
            str(int(flag))
            for flag in (self.use_g1, self.use_g2, self.use_g3, self.use_g4)
        )
        return (
            f"RankingModel(alpha={self.alpha}, beta={self.beta}, "
            f"decay={self.decay}, guidelines={flags})"
        )


def full_model(alpha=1.0, beta=1.0, decay=DEFAULT_DECAY):
    """RS0 — the complete ranking model."""
    return RankingModel(alpha=alpha, beta=beta, decay=decay)


def variant_without_guideline(i, alpha=1.0, beta=1.0, decay=DEFAULT_DECAY):
    """RS``i`` — the model with Guideline ``i`` removed (Table IX)."""
    if i not in (1, 2, 3, 4):
        raise ValueError(f"guideline index must be 1..4, got {i}")
    flags = {f"use_g{j}": j != i for j in (1, 2, 3, 4)}
    return RankingModel(alpha=alpha, beta=beta, decay=decay, **flags)
