"""Search-for node inference, re-exported for the ranking layer.

Formula 1 lives with the SLCA semantics in
:mod:`repro.slca.meaningful` (it is needed before any ranking — the
meaningful-SLCA test uses it); the ranking model consumes the same
confidences for Guideline 3, so this module re-exports the API at the
layer the ranking code imports from.
"""

from ...slca.meaningful import (
    DEFAULT_COMPARABLE_FRACTION,
    DEFAULT_REDUCTION,
    SearchForCandidate,
    confidence,
    infer_search_for,
)

__all__ = [
    "SearchForCandidate",
    "confidence",
    "infer_search_for",
    "DEFAULT_REDUCTION",
    "DEFAULT_COMPARABLE_FRACTION",
]
