"""Result presentation: return-node inference and snippets.

SLCA semantics say *where* a match is; they do not say *what to show*.
XSeek [5] (cited in the paper's related work) infers the *return node*
— the entity a user actually wants rendered — from match patterns and
entity structure.  This module provides that presentation layer for
XRefine results:

* :func:`return_node` — lift an SLCA label to the closest
  self-or-ancestor node of a search-for type (the inferred entity), so
  a match deep inside a publication renders the publication, not a
  bare ``year`` element;
* :func:`snippet` — a compact rendition of the entity: its name-ish
  fields first, keyword-bearing text fragments highlighted;
* :func:`present` — apply both to a whole
  :class:`~repro.core.result.RefinementResponse`.

Only presentation happens here; result *sets* are untouched.
"""

from __future__ import annotations

from ..index.tokenize_text import extract_terms

#: Tags commonly holding an entity's display name, tried in order.
NAME_TAGS = ("title", "name", "surname", "headline", "label")

#: Maximum characters of highlighted context per fragment.
FRAGMENT_WIDTH = 60


class Snippet:
    """A display-ready result: entity node + highlighted fragments."""

    __slots__ = ("entity", "match", "heading", "fragments")

    def __init__(self, entity, match, heading, fragments):
        self.entity = entity
        self.match = match
        self.heading = heading
        self.fragments = list(fragments)

    def render(self):
        """Single-string rendition (used by the CLI and examples)."""
        lines = [f"{self.entity.label()}  {self.heading}"]
        lines.extend(f"    {fragment}" for fragment in self.fragments)
        return "\n".join(lines)

    def __repr__(self):
        return f"Snippet({self.entity.label()}, {self.heading!r})"


def return_node(index, dewey, search_for_types):
    """The entity node to display for one SLCA result label.

    Walks from the SLCA toward the root until a node whose type is one
    of the search-for candidates is found; the SLCA itself is returned
    when nothing matches (e.g. no search-for could be inferred).
    """
    node = index.tree.get(dewey)
    if node is None:
        return None
    candidates = [tuple(t) for t in search_for_types]
    current = node
    while current is not None:
        if current.node_type in candidates:
            return current
        parent_dewey = current.dewey.parent
        current = (
            index.tree.get(parent_dewey) if parent_dewey is not None else None
        )
    return node


def _heading(entity):
    """Best-effort display name for an entity node."""
    for tag in NAME_TAGS:
        for child in entity.children:
            if child.tag == tag and child.text:
                return child.text[:FRAGMENT_WIDTH]
    if entity.text:
        return entity.text[:FRAGMENT_WIDTH]
    return entity.tag


def _highlight(text, keywords):
    """Uppercase query keywords inside one text fragment."""
    pieces = []
    for word in text.split():
        normalized = "".join(ch for ch in word.lower() if ch.isalnum())
        pieces.append(word.upper() if normalized in keywords else word)
    return " ".join(pieces)


def snippet(index, dewey, keywords, search_for_types):
    """Build a :class:`Snippet` for one result label."""
    keywords = {k.lower() for k in keywords}
    entity = return_node(index, dewey, search_for_types)
    if entity is None:
        return None
    fragments = []
    for node in index.tree.iter_subtree(entity.dewey):
        if not node.text:
            continue
        terms = set(extract_terms(node.text))
        if node.tag.lower() in keywords or terms & keywords:
            fragment = _highlight(node.text[: FRAGMENT_WIDTH * 2], keywords)
            fragments.append(f"{node.tag}: {fragment}")
        if len(fragments) >= 4:
            break
    return Snippet(entity, dewey, _heading(entity), fragments)


def present(index, response, max_results=5):
    """Snippets for a refinement response.

    Returns ``[(label, [Snippet, ...]), ...]`` — one group for the
    original query when it answered directly, or one per refined query
    otherwise.  Duplicate entities within a group are collapsed.
    """
    types = [c.node_type for c in response.search_for]
    groups = []
    if not response.needs_refinement:
        groups.append(
            (
                " ".join(response.query),
                _snippets_for(
                    index, response.original_results, response.query,
                    types, max_results,
                ),
            )
        )
        return groups
    for refinement in response.refinements:
        groups.append(
            (
                " ".join(refinement.rq.keywords),
                _snippets_for(
                    index,
                    refinement.slcas,
                    refinement.rq.keywords,
                    types,
                    max_results,
                ),
            )
        )
    return groups


def _snippets_for(index, labels, keywords, types, max_results):
    snippets = []
    seen_entities = set()
    for dewey in labels:
        built = snippet(index, dewey, keywords, types)
        if built is None or built.entity.dewey in seen_entities:
            continue
        seen_entities.add(built.entity.dewey)
        snippets.append(built)
        if len(snippets) >= max_results:
            break
    return snippets
