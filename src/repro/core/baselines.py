"""Comparison baselines from the paper's related-work discussion.

Two approaches the paper positions itself against are implemented so
the benchmarks can quantify the contrast:

* **Boolean OR relaxation** (the [8]-style relaxation the introduction
  calls out as "heavily relaxing the search intention"): every node
  containing *any* query keyword is a match; results are grouped into
  the search-for subtrees and ranked by how many distinct keywords
  they cover.  It never returns empty — but precision collapses, which
  is exactly the paper's criticism.

* **Static query cleaning** ([10]-style): rewrite the query against the
  corpus vocabulary and rule set *before* any search, with no
  guarantee the cleaned query has (meaningful) matching results —
  "a potential problem is the cleaned query is not guaranteed to have
  matching results in database".  The benchmark measures how often
  that guarantee actually fails versus XRefine's always-answerable
  output.
"""

from __future__ import annotations

from ..errors import QueryError
from ..index.tokenize_text import query_terms
from ..slca.meaningful import infer_search_for
from .candidates import RefinedQuery
from .dp import get_top_optimal_rqs


class ORMatch:
    """One OR-semantics result: a search-for subtree and its coverage."""

    __slots__ = ("dewey", "covered")

    def __init__(self, dewey, covered):
        self.dewey = dewey
        self.covered = frozenset(covered)

    @property
    def coverage(self):
        return len(self.covered)

    def __repr__(self):
        return f"ORMatch({self.dewey}, covers={sorted(self.covered)})"


def or_search(index, query, limit=50):
    """Boolean OR relaxation: subtrees containing any query keyword.

    Returns :class:`ORMatch` entries sorted by descending keyword
    coverage then document order, capped at ``limit``.  Matches are
    grouped at the best search-for type so the granularity is
    comparable to meaningful SLCAs.
    """
    terms = query_terms(query)
    if not terms:
        raise QueryError("the keyword query is empty")
    search_for = infer_search_for(index, terms)
    if not search_for:
        return []
    anchor_type = search_for[0].node_type
    type_len = len(anchor_type)
    covered = {}
    for term in terms:
        for posting in index.inverted_list(term):
            if posting.node_type[:type_len] != anchor_type:
                continue
            root = posting.dewey.components[:type_len]
            covered.setdefault(root, set()).add(term)
    from ..xmltree.dewey import Dewey

    matches = [
        ORMatch(Dewey(components), terms_found)
        for components, terms_found in covered.items()
    ]
    matches.sort(key=lambda m: (-m.coverage, m.dewey.components))
    return matches[:limit]


def static_clean(index, query, rules, limit=1):
    """Static query cleaning: rewrite against the vocabulary, no search.

    Runs the same optimal-RQ dynamic program but with the *entire
    corpus vocabulary* as the available keyword set — the cleaned
    query's keywords each exist somewhere, but nothing checks that
    they co-occur in any subtree, let alone a meaningful one.  Returns
    up to ``limit`` :class:`RefinedQuery` candidates (best first), or
    an empty list when no rewrite reaches the vocabulary.
    """
    terms = query_terms(query)
    if not terms:
        raise QueryError("the keyword query is empty")
    vocabulary = set(index.inverted.keywords())
    candidates = get_top_optimal_rqs(terms, vocabulary, rules, limit)
    return [
        candidate
        for candidate in candidates
        if candidate.key != frozenset(terms)
    ] or (
        [RefinedQuery(terms, 0)]
        if all(term in vocabulary for term in terms)
        else []
    )


def cleaned_query_has_meaningful_result(index, cleaned):
    """Does a statically cleaned query actually answer? (the KQC gap)"""
    from ..slca.meaningful import meaningful_slcas
    from ..slca.scan_eager import scan_eager_slca

    lists = [
        [p.dewey for p in index.inverted_list(term)]
        for term in cleaned.keywords
    ]
    if any(not labels for labels in lists):
        return False
    slcas = scan_eager_slca(lists)
    search_for = infer_search_for(index, list(cleaned.keywords))
    return bool(meaningful_slcas(index, slcas, search_for))
