"""Minimal HTTP/1.1 framing over asyncio streams.

Just enough of the protocol for the daemon's JSON endpoints: request
line + headers + ``Content-Length`` bodies in, status + JSON out, with
keep-alive.  Limits are enforced while *reading* (oversized header
blocks and bodies are rejected with typed :class:`HttpError`\\ s before
any allocation proportional to the claimed size), chunked uploads are
declined, and anything malformed maps to a 400 rather than a traceback.
"""

from __future__ import annotations

import json

#: Per-header-block ceiling (request line + all headers).
MAX_HEADER_BYTES = 16 * 1024
#: Request body ceiling.
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol-level failure with the status to answer with."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


class Request:
    """One parsed request."""

    __slots__ = ("method", "path", "headers", "body", "keep_alive")

    def __init__(self, method, path, headers, body, keep_alive):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive

    def json(self):
        """The body as JSON, or a 400-mapped :class:`HttpError`."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(
                400, f"request body is not valid JSON: {exc}"
            ) from None

    def __repr__(self):
        return f"Request({self.method} {self.path}, {len(self.body)}B)"


async def read_request(reader):
    """Parse one request off the stream; ``None`` on a clean EOF."""
    header_block = b""
    while b"\r\n\r\n" not in header_block:
        chunk = await reader.read(1024)
        if not chunk:
            if header_block.strip():
                raise HttpError(
                    400, "connection closed mid-request-header"
                )
            return None
        header_block += chunk
        if len(header_block) > MAX_HEADER_BYTES:
            raise HttpError(431, "request headers too large")
    head, _, remainder = header_block.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    try:
        request_line = lines[0].decode("latin-1")
        method, path, http_version = request_line.split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise HttpError(400, "malformed request line") from None
    if not http_version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {http_version!r}")
    headers = {}
    for line in lines[1:]:
        name, sep, value = line.partition(b":")
        if not sep:
            raise HttpError(400, "malformed header line")
        try:
            headers[name.decode("latin-1").strip().lower()] = (
                value.decode("latin-1").strip()
            )
        except UnicodeDecodeError:
            raise HttpError(400, "malformed header line") from None
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise HttpError(
            400, f"invalid Content-Length {length_header!r}"
        ) from None
    if length < 0:
        raise HttpError(400, f"invalid Content-Length {length}")
    if length > MAX_BODY_BYTES:
        raise HttpError(
            413, f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit"
        )
    body = remainder
    while len(body) < length:
        chunk = await reader.read(length - len(body))
        if not chunk:
            raise HttpError(400, "connection closed mid-request-body")
        body += chunk
    if len(body) > length:
        # Pipelined extra bytes would need pushback we don't implement;
        # a JSON client never pipelines, so treat it as malformed.
        raise HttpError(400, "request body longer than Content-Length")
    keep_alive = (
        headers.get("connection", "keep-alive").lower() != "close"
        if http_version == "HTTP/1.1"
        else headers.get("connection", "").lower() == "keep-alive"
    )
    return Request(method.upper(), path, headers, body, keep_alive)


def render_response(status, payload, keep_alive=True, extra_headers=()):
    """Serialize a status + JSON payload into response bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
