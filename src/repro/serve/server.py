"""The always-on refinement daemon.

:class:`RefineServer` is an asyncio TCP/HTTP server that owns one
:class:`~repro.XRefine` via a :class:`~repro.serve.lifecycle.SnapshotManager`
and serves it forever:

====================  ==================================================
``POST /search``      One refinement search (``query``, ``k``,
                      ``algorithm``, ``rank_results``).
``POST /search_many`` A batch (``queries`` plus the same knobs).
``POST /explain``     ``/search`` with the routing plan attached.
``POST /reload``      Zero-downtime hot swap onto ``snapshot``.
``POST /shutdown``    Graceful stop.
``GET /stats``        Engine + serving counters.
``GET /healthz``      Liveness (never touches the query thread).
====================  ==================================================

Concurrency model — the part everything else leans on:

* The **event loop** does protocol work only (framing, JSON, admission,
  singleflight bookkeeping).
* All engine calls run on a **single-worker executor** (the engine is
  not thread-safe); requests queue FIFO behind it, admission caps the
  queue, singleflight collapses identical entries in it.
* ``/reload`` does its slow half (loading the new snapshot, then
  pre-mining recently served queries' rule sets against it) on a
  separate **reload executor**, so serving continues at full rate, and
  submits its fast half — :meth:`SnapshotManager.flip` — to the *query*
  executor.  FIFO ordering of that single thread is the drain: the flip
  cannot start until every already-admitted evaluation has finished,
  and nothing evaluates mid-flip.  Requests admitted after the flip see
  the new generation; the old generation's mmap is released by the
  refcount when its last reader exits.

Error mapping: validation failures (:class:`~repro.errors.QueryError`)
are 400s, overload (:class:`~repro.errors.ServerOverloadedError`) is a
429 with ``Retry-After``, a failed reload
(:class:`~repro.errors.IndexingError`) is a 500 whose body names the
type — and leaves the old snapshot serving.  Every error body is
``{"error": ..., "error_type": ...}``.
"""

from __future__ import annotations

import asyncio
import os.path
import signal
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from ..errors import (
    IndexingError,
    QueryError,
    ReproError,
    ServerOverloadedError,
)
from ..index.tokenize_text import query_terms
from ..perf.result_cache import DEFAULT_CAPACITY
from .admission import DEFAULT_MAX_INFLIGHT, AdmissionController
from .http import HttpError, read_request, render_response
from .lifecycle import SnapshotManager
from .singleflight import SingleFlight
from .wire import (
    decode_reload_body,
    decode_search_body,
    decode_search_many_body,
    encode_response,
)

DEFAULT_PORT = 8391


class RefineServer:
    """One engine, one port, zero-downtime reloads."""

    #: Recently served query signatures kept for reload pre-mining.
    RECENT_TERMS_LIMIT = 128
    #: Hot signatures pre-warmed per reload-executor burst, and the
    #: pause between bursts that hands the interpreter back to the
    #: query thread (long enough for a few queued evaluations to
    #: drain at steady-state service times).
    PREWARM_CHUNK = 1
    PREWARM_PAUSE_SECONDS = 0.015
    #: Sleep between tree-decode chunks of the reload's snapshot open,
    #: so the load yields the interpreter to in-flight evaluations.
    LOAD_PAUSE_SECONDS = 0.005
    #: Installed warmups remembered per snapshot path, so cycling back
    #: to a recently served snapshot reuses its mined rule sets.
    SWAP_SEED_LIMIT = 8

    def __init__(self, source, host="127.0.0.1", port=0, model=None,
                 cache_size=DEFAULT_CAPACITY, parallelism=1,
                 max_inflight=DEFAULT_MAX_INFLIGHT,
                 cache_policy="tinylfu", cache_ttl=None,
                 subresult_size=None, plan_cache_size=None):
        self.manager = SnapshotManager(
            source, model=model, cache_size=cache_size,
            parallelism=parallelism, cache_policy=cache_policy,
            cache_ttl=cache_ttl, subresult_size=subresult_size,
            plan_cache_size=plan_cache_size,
        )
        self.host = host
        self.port = port  # rebound to the real port after start()
        self.admission = AdmissionController(max_inflight)
        self.singleflight = SingleFlight()
        self._query_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="xrefine-query"
        )
        self._reload_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="xrefine-reload"
        )
        self._server = None
        self.loop = None
        self._stopping = None
        self._started = time.monotonic()
        #: LRU set of recently served term tuples (event-loop only);
        #: /reload pre-mines these against the incoming snapshot.
        self._recent_terms = OrderedDict()
        #: LRU of installed warmups keyed by snapshot path (event-loop
        #: only).  A reload seeds its pre-warm from the target's last
        #: warmup; vocabulary equality is checked in `prepare_swap`, so
        #: a changed file behind the same path is never trusted.
        self._swap_seeds = OrderedDict()
        self.requests = 0
        self.errors = 0
        self.reloads = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self):
        """Bind and start accepting (use port 0 for an ephemeral port)."""
        self.loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self.manager.prewarm()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_stopped(self):
        """Serve until :meth:`request_shutdown`, then tear down."""
        async with self._server:
            await self._stopping.wait()
        await self._shutdown_resources()

    def request_shutdown(self):
        """Signal the serve loop to stop (threadsafe via the loop)."""
        if self._stopping is not None:
            self._stopping.set()

    async def _shutdown_resources(self):
        # The single-worker pools drain their queues on shutdown, so
        # in-flight evaluations complete before the engine closes.
        await self.loop.run_in_executor(None, self._query_pool.shutdown)
        await self.loop.run_in_executor(None, self._reload_pool.shutdown)
        self.manager.close()

    @property
    def uptime_seconds(self):
        return time.monotonic() - self._started

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer):
        try:
            while not self._stopping.is_set():
                try:
                    request = await read_request(reader)
                except HttpError as err:
                    writer.write(render_response(
                        err.status,
                        {"error": str(err), "error_type": "HttpError"},
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload, extra = await self._dispatch(request)
                keep_alive = request.keep_alive and not self._stopping.is_set()
                writer.write(render_response(
                    status, payload, keep_alive=keep_alive,
                    extra_headers=extra,
                ))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request):
        """Route one request; returns (status, payload, extra_headers)."""
        self.requests += 1
        route = (request.method, request.path)
        try:
            if route == ("POST", "/search"):
                return 200, await self._search(request.json()), ()
            if route == ("POST", "/explain"):
                return 200, await self._search(
                    request.json(), explain=True
                ), ()
            if route == ("POST", "/search_many"):
                return 200, await self._search_many(request.json()), ()
            if route == ("POST", "/reload"):
                return 200, await self._reload(request.json()), ()
            if route == ("POST", "/shutdown"):
                self.request_shutdown()
                return 200, {"ok": True, "stopping": True}, ()
            if route == ("GET", "/healthz"):
                return 200, {
                    "ok": True,
                    "generation": self.manager.generation,
                    "uptime_seconds": round(self.uptime_seconds, 3),
                }, ()
            if route == ("GET", "/stats"):
                return 200, await self._stats(), ()
            if request.path in (
                "/search", "/search_many", "/explain", "/reload",
                "/shutdown", "/stats", "/healthz",
            ):
                self.errors += 1
                return 405, {
                    "error": f"{request.method} not allowed on "
                             f"{request.path}",
                    "error_type": "HttpError",
                }, ()
            self.errors += 1
            return 404, {
                "error": f"no such endpoint: {request.path}",
                "error_type": "HttpError",
            }, ()
        except HttpError as err:
            self.errors += 1
            return err.status, {
                "error": str(err), "error_type": "HttpError",
            }, ()
        except ServerOverloadedError as err:
            self.errors += 1
            return 429, {
                "error": str(err),
                "error_type": "ServerOverloadedError",
                "retry_after": err.retry_after,
            }, (("Retry-After", f"{err.retry_after:.3f}"),)
        except QueryError as err:
            self.errors += 1
            return 400, {
                "error": str(err), "error_type": "QueryError",
            }, ()
        except ReproError as err:
            self.errors += 1
            return 500, {
                "error": str(err),
                "error_type": type(err).__name__,
            }, ()
        except Exception as err:  # noqa: BLE001 — the daemon must not die
            self.errors += 1
            return 500, {
                "error": f"internal error: {err!r}",
                "error_type": "InternalError",
            }, ()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _note_terms(self, terms):
        """Record a served query signature for reload pre-mining.

        Event-loop only (like the rest of the singleflight/admission
        bookkeeping), so no lock is needed.
        """
        recent = self._recent_terms
        recent.pop(terms, None)
        recent[terms] = None
        while len(recent) > self.RECENT_TERMS_LIMIT:
            recent.popitem(last=False)

    async def _search(self, body, explain=False):
        params = decode_search_body(body)
        engine = self.manager.engine
        # Normalization is index-independent, so the singleflight key
        # can be computed on the event loop; it extends the engine's
        # result-cache key with the snapshot generation so identical
        # queries coalesce only within a generation.
        terms = tuple(query_terms(params["query"]))
        self._note_terms(terms)
        key = (
            "explain" if explain else "search",
            terms,
            params["k"],
            params["algorithm"],
            params["rank_results"],
            engine._model_key(),
            self.manager.generation,
        )
        with self.admission.admit():
            handle = self.manager.current()
            try:
                async def evaluate():
                    def call():
                        response = engine.search(
                            params["query"],
                            k=params["k"],
                            algorithm=params["algorithm"],
                            rank_results=params["rank_results"],
                            explain=explain,
                        )
                        payload = encode_response(
                            response, include_plan=explain
                        )
                        if explain and response.plan is not None:
                            payload["plan_text"] = response.plan.describe()
                        # Read on the query thread, where a flip cannot
                        # be concurrent: the label always matches the
                        # generation the answer was evaluated against,
                        # even for requests admitted mid-drain (their
                        # `handle` may pin the previous generation).
                        payload["generation"] = self.manager.generation
                        return payload

                    return await self.loop.run_in_executor(
                        self._query_pool, call
                    )

                return await self.singleflight.run(key, evaluate)
            finally:
                handle.release()

    async def _search_many(self, body):
        params = decode_search_many_body(body)
        engine = self.manager.engine
        for query in params["queries"]:
            self._note_terms(tuple(query_terms(query)))
        with self.admission.admit():
            handle = self.manager.current()
            try:
                def call():
                    responses = engine.search_many(
                        params["queries"],
                        k=params["k"],
                        algorithm=params["algorithm"],
                        rank_results=params["rank_results"],
                    )
                    return {
                        "responses": [
                            encode_response(r) for r in responses
                        ],
                        # Query-thread read; see _search.
                        "generation": self.manager.generation,
                    }

                return await self.loop.run_in_executor(
                    self._query_pool, call
                )
            finally:
                handle.release()

    async def _reload(self, body):
        source = decode_reload_body(body)
        # Slow half off the hot path: serving continues at full rate
        # while the new snapshot loads.  An IndexingError here (missing
        # or corrupt snapshot) propagates as a typed 500 and nothing
        # has changed — the old generation keeps serving.
        new_index = await self.loop.run_in_executor(
            self._reload_pool, self.manager.load, source,
            self.LOAD_PAUSE_SECONDS,
        )
        # Still the slow half: pre-warm the recently served query
        # signatures against the new generation (rule mining, posting
        # decode + packing, search-for inference), so their first
        # post-flip occurrence skips the cold costs on the query
        # thread.  Mined in small chunks with pauses between them —
        # mining is GIL-heavy, and an unbroken burst on the reload
        # thread would inflate concurrent requests' tail latency.
        warmup = None
        seed_key = os.path.realpath(source)
        seed = self._swap_seeds.get(seed_key)
        hot = list(self._recent_terms)
        for start in range(0, len(hot), self.PREWARM_CHUNK):
            warmup = await self.loop.run_in_executor(
                self._reload_pool, self.manager.prepare, new_index,
                hot[start:start + self.PREWARM_CHUNK], warmup, seed,
            )
            await asyncio.sleep(self.PREWARM_PAUSE_SECONDS)
        # Fast half on the query thread: FIFO behind every in-flight
        # evaluation (the drain), and nothing evaluates mid-flip.
        flip = await self.loop.run_in_executor(
            self._query_pool, self.manager.flip, new_index, source,
            warmup,
        )
        if warmup is not None and warmup.miner is not None:
            # Retain only miner + rules (never the packed store, which
            # would pin the swapped-out generation's mmap).
            self._swap_seeds.pop(seed_key, None)
            self._swap_seeds[seed_key] = warmup.seed_only()
            while len(self._swap_seeds) > self.SWAP_SEED_LIMIT:
                self._swap_seeds.popitem(last=False)
        self.reloads += 1
        return {"ok": True, **flip}

    async def _stats(self):
        manager = self.manager
        engine_stats = await self.loop.run_in_executor(
            self._query_pool, manager.engine.cache_stats
        )
        return {
            "generation": manager.generation,
            "source": str(manager.current_source),
            "swaps": manager.swaps,
            "reloads": self.reloads,
            "engine": engine_stats,
            "admission": self.admission.stats(),
            "singleflight": self.singleflight.stats(),
            "server": {
                "requests": self.requests,
                "errors": self.errors,
                "uptime_seconds": round(self.uptime_seconds, 3),
                "parallelism": manager.engine.parallelism,
            },
        }

    def __repr__(self):
        return (
            f"RefineServer({self.host}:{self.port}, "
            f"gen={self.manager.generation})"
        )


async def _amain(server, ready_callback, handle_signals):
    await server.start()
    if handle_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                server.loop.add_signal_handler(
                    signum, server.request_shutdown
                )
            except (NotImplementedError, RuntimeError):
                break
    if ready_callback is not None:
        ready_callback(server)
    await server.serve_until_stopped()


def run_server(source, host="127.0.0.1", port=DEFAULT_PORT, *,
               model=None, cache_size=DEFAULT_CAPACITY, parallelism=1,
               max_inflight=DEFAULT_MAX_INFLIGHT, ready_callback=None,
               handle_signals=True, cache_policy="tinylfu",
               cache_ttl=None, subresult_size=None,
               plan_cache_size=None):
    """Build a :class:`RefineServer` and serve until shutdown.

    ``ready_callback(server)`` fires once the socket is bound (the CLI
    prints the port; the test harness grabs ``server.loop`` to stop it
    from another thread).  With ``handle_signals`` (the default),
    SIGTERM/SIGINT trigger the same graceful path as ``/shutdown`` —
    drain, close the engine's pool, release the snapshot.
    """
    server = RefineServer(
        source, host=host, port=port, model=model,
        cache_size=cache_size, parallelism=parallelism,
        max_inflight=max_inflight, cache_policy=cache_policy,
        cache_ttl=cache_ttl, subresult_size=subresult_size,
        plan_cache_size=plan_cache_size,
    )
    asyncio.run(_amain(server, ready_callback, handle_signals))
    return server
