"""Always-on serving daemon with zero-downtime snapshot hot-swap.

The library used to pay a fresh-process startup for every caller; this
package turns the engine into a long-lived service the way the paper's
interactive refinement loop assumes — a user's failed query is refined
against a **live** index, immediately.

``repro.serve`` is an asyncio TCP/HTTP server that owns a single
:class:`~repro.XRefine` (optionally with a ``parallelism=N`` shard
runtime) and layers the production concerns on top of it:

* **Endpoints** — ``POST /search``, ``POST /search_many``,
  ``POST /explain``, ``POST /reload``, ``POST /shutdown``,
  ``GET /stats``, ``GET /healthz`` (JSON in, JSON out; see
  :mod:`repro.serve.server`).
* **Zero-downtime hot-swap** — ``/reload`` loads a newer frozen
  snapshot in the background, drains in-flight requests against the
  old version stamp, atomically flips the engine, and releases the old
  snapshot's mmap and shared-memory segments only after the last
  reader exits (:mod:`repro.serve.lifecycle`).
* **Singleflight** — identical in-flight queries are coalesced onto
  one evaluation keyed on the result-cache key
  (:mod:`repro.serve.singleflight`).
* **Admission control** — a bounded in-flight budget rejects overload
  with a typed 429 instead of piling up queue latency
  (:mod:`repro.serve.admission`).

Quickstart::

    python -m repro serve corpus.frz --port 8391 --parallelism 2

    >>> from repro.serve import ServeClient
    >>> client = ServeClient("127.0.0.1", 8391)
    >>> client.search("on line data base", k=3)["refinements"]
"""

from .admission import AdmissionController
from .background import BackgroundServer
from .client import ServeClient, ServeClientError
from .lifecycle import SnapshotHandle, SnapshotManager
from .server import RefineServer, run_server
from .singleflight import SingleFlight

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "RefineServer",
    "ServeClient",
    "ServeClientError",
    "SingleFlight",
    "SnapshotHandle",
    "SnapshotManager",
    "run_server",
]
