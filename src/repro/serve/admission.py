"""Admission control: bounded in-flight work, typed overload rejection.

The daemon funnels every evaluation through one query thread (the
engine is not thread-safe), so under overload requests would otherwise
queue without bound — each admitted request making every later one
slower, the classic latency death spiral.  The controller instead caps
concurrently admitted requests and rejects the excess *immediately*
with :class:`~repro.errors.ServerOverloadedError`, which the HTTP
layer maps to ``429 Too Many Requests`` plus a ``Retry-After`` hint.

Single-event-loop use only (a plain counter, no lock): admission and
release both happen on the server's asyncio loop.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..errors import ServerOverloadedError

#: Default cap on concurrently admitted requests.  Generous relative
#: to the single query thread — the bound exists to keep worst-case
#: queue latency proportional to ``max_inflight``×(per-query cost),
#: not to serialize admission.
DEFAULT_MAX_INFLIGHT = 64


class AdmissionController:
    """Bounded in-flight request budget for one event loop."""

    __slots__ = ("max_inflight", "retry_after", "inflight", "admitted",
                 "rejected", "peak")

    def __init__(self, max_inflight=DEFAULT_MAX_INFLIGHT,
                 retry_after=0.05):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.max_inflight = max_inflight
        #: Seconds clients are told to back off on rejection.
        self.retry_after = retry_after
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0
        self.peak = 0

    def acquire(self):
        """Admit one request or raise ``ServerOverloadedError``."""
        if self.inflight >= self.max_inflight:
            self.rejected += 1
            raise ServerOverloadedError(
                f"server overloaded: {self.inflight} requests in "
                f"flight (limit {self.max_inflight})",
                retry_after=self.retry_after,
            )
        self.inflight += 1
        self.admitted += 1
        if self.inflight > self.peak:
            self.peak = self.inflight
        return self

    def release(self):
        self.inflight -= 1

    @contextmanager
    def admit(self):
        """``with admission.admit():`` — acquire/release around a request."""
        self.acquire()
        try:
            yield self
        finally:
            self.release()

    def stats(self):
        return {
            "max_inflight": self.max_inflight,
            "inflight": self.inflight,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "peak": self.peak,
        }

    def __repr__(self):
        return (
            f"AdmissionController({self.inflight}/{self.max_inflight} "
            f"in flight, rejected={self.rejected})"
        )
