"""Refcounted snapshot generations behind one long-lived engine.

The daemon serves every request through the *same* :class:`~repro.XRefine`
across snapshot reloads; what changes underneath is the
:class:`~repro.index.builder.DocumentIndex` generation.  This module
owns that lifetime:

* a :class:`SnapshotHandle` wraps one loaded generation with a
  reference count — every request acquires the current handle for the
  duration of its evaluation, and a swapped-out generation's resources
  (the frozen snapshot's mmap) are released only when the **last**
  such reader exits, never while a request may still be decoding
  posting lists out of the mapped file;
* a :class:`SnapshotManager` owns the engine plus the current handle
  and implements the two halves of a hot swap — :meth:`~SnapshotManager.load`
  (slow, runs on a background thread while serving continues) and
  :meth:`~SnapshotManager.flip` (fast, runs on the query thread so it
  is serialized behind every in-flight evaluation — the drain — and
  calls :meth:`repro.XRefine.swap_index` for the atomic pointer flip).

The shard runtime's shared-memory segment is handled inside
``swap_index`` (the old pool is closed on the flip, after the drain);
the handle only needs to care about the mmap.
"""

from __future__ import annotations

import threading
import time

from ..core.engine import XRefine
from ..index.persist import open_index_source
from ..perf.result_cache import DEFAULT_CAPACITY


class SnapshotHandle:
    """One loaded index generation with a reader refcount.

    The manager holds one owning reference (dropped by :meth:`retire`
    when the generation is swapped out); every request holds one for
    the duration of its evaluation (:meth:`acquire` / :meth:`release`).
    When the count reaches zero the generation's frozen mmap is
    closed.  All transitions are lock-protected and idempotent.
    """

    __slots__ = ("index", "source", "generation", "_refs", "_lock",
                 "_disposed")

    def __init__(self, index, source, generation):
        self.index = index
        self.source = source
        self.generation = generation
        self._refs = 1  # the manager's owning reference
        self._lock = threading.Lock()
        self._disposed = False

    @property
    def refs(self):
        return self._refs

    @property
    def disposed(self):
        return self._disposed

    def acquire(self):
        """Register a reader; returns ``self`` for chaining."""
        with self._lock:
            if self._disposed:
                raise RuntimeError(
                    f"snapshot generation {self.generation} is disposed"
                )
            self._refs += 1
        return self

    def release(self):
        """Drop a reader reference; disposes on the last one."""
        self._drop()

    def retire(self):
        """Drop the manager's owning reference (the swap-out)."""
        self._drop()

    def _drop(self):
        with self._lock:
            if self._disposed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._disposed = True
        snapshot = getattr(self.index, "frozen_snapshot", None)
        if snapshot is not None:
            snapshot.close()

    def __repr__(self):
        state = "disposed" if self._disposed else f"refs={self._refs}"
        return (
            f"SnapshotHandle(gen={self.generation}, "
            f"{self.source!r}, {state})"
        )


class SnapshotManager:
    """The engine plus its current (and draining) snapshot generations."""

    def __init__(self, source, model=None, cache_size=DEFAULT_CAPACITY,
                 parallelism=1, cache_policy="tinylfu", cache_ttl=None,
                 subresult_size=None, plan_cache_size=None):
        index = open_index_source(source)
        self.engine = XRefine(
            index, model=model, cache_size=cache_size,
            parallelism=parallelism, cache_policy=cache_policy,
            cache_ttl=cache_ttl, subresult_size=subresult_size,
            plan_cache_size=plan_cache_size,
        )
        self._lock = threading.Lock()
        self._current = SnapshotHandle(index, source, generation=0)
        #: Completed swaps (monitoring).
        self.swaps = 0

    # ------------------------------------------------------------------
    @property
    def generation(self):
        return self._current.generation

    @property
    def current_source(self):
        return self._current.source

    def current(self):
        """Acquire the serving generation for one request's lifetime."""
        with self._lock:
            return self._current.acquire()

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def load(self, source, pause_seconds=None):
        """Load a new generation from disk (slow half; any thread).

        Raises :class:`~repro.errors.IndexingError` on a missing or
        corrupt snapshot — in which case nothing has changed and the
        old generation keeps serving.

        ``pause_seconds`` makes the load cooperative: the CPU-bound
        tree decode sleeps that long between chunks, yielding the
        interpreter to the query thread so a reload on a busy host
        does not inflate serving tail latency.
        """
        pause = None
        if pause_seconds:
            pause = lambda: time.sleep(pause_seconds)  # noqa: E731
        return open_index_source(source, pause=pause)

    def prepare(self, new_index, queries=(), warmup=None, seed=None):
        """Pre-mine hot rule sets against the pending generation.

        The second slow half of a reload (any thread, like
        :meth:`load`): the first post-flip evaluation of a query pays
        the new generation's cold costs — rule mining against the
        fresh vocabulary, posting-list decode + packing, search-for
        inference — so the daemon pre-builds that state for its
        recently served query signatures here, off the serving path,
        and hands the returned :class:`~repro.core.engine.SwapWarmup`
        to :meth:`flip`, which installs it atomically.  Chain calls by
        passing the previous return value as ``warmup`` to warm
        incrementally; pass an earlier generation's warmup as ``seed``
        to reuse its mined rule sets when the vocabulary matches
        (cycling back to a recently served snapshot).
        """
        return self.engine.prepare_swap(
            new_index, queries, warmup=warmup, seed=seed
        )

    def flip(self, new_index, source, warmup=None):
        """Swap the engine onto ``new_index`` (fast half; query thread).

        Must run where no evaluation can be concurrently executing —
        the daemon submits it to its single query executor, which
        serializes it behind all in-flight evaluations (that *is* the
        drain).  The old generation is retired; its mmap closes when
        the last already-admitted reader releases it.
        """
        with self._lock:
            old = self._current
            self.engine.swap_index(new_index, warmup=warmup)
            self._current = SnapshotHandle(
                new_index, source, old.generation + 1
            )
            self.swaps += 1
        old.retire()
        return {
            "generation": self._current.generation,
            "source": source,
            "index_version": getattr(new_index, "version", 0),
            "prewarmed": warmup.queries if warmup is not None else 0,
        }

    def prewarm(self):
        """Spin up the shard pool ahead of the first parallel query.

        The runtime builds its worker pool (and publishes the shared-
        memory segment) lazily on first use; forcing it here moves the
        fork + publish cost to daemon startup instead of the first
        parallel request's latency.
        """
        engine = self.engine
        if engine.parallelism > 1:
            engine._shard_runtime_for(engine.parallelism).executor()

    def close(self):
        """Release the engine's pool and the current generation."""
        self.engine.close()
        with self._lock:
            self._current.retire()

    def __repr__(self):
        return (
            f"SnapshotManager(gen={self._current.generation}, "
            f"{self._current.source!r}, swaps={self.swaps})"
        )
