"""Coalescing of identical in-flight queries (singleflight).

A burst of identical queries — the paper's motivating workload is many
users mistyping the *same* popular query — would each miss the result
cache until the first evaluation lands, then stampede the single query
thread with redundant work.  :class:`SingleFlight` collapses the burst:
the first arrival (the *leader*) evaluates; every identical request
that arrives while it is still in flight awaits the leader's future
and shares its wire-level payload.

Keys mirror the engine's result-cache key (normalized terms, ``k``,
algorithm, ranking flag, model parameters) **plus the snapshot
generation**, so a request admitted after a hot swap can never be
coalesced onto an evaluation against the previous generation.

Single-event-loop use only: the map is touched exclusively from the
server's asyncio loop, so no lock is needed.
"""

from __future__ import annotations

import asyncio


class SingleFlight:
    """Future-per-key coalescing for one event loop."""

    __slots__ = ("_inflight", "leaders", "coalesced")

    def __init__(self):
        self._inflight = {}
        #: Evaluations actually started.
        self.leaders = 0
        #: Requests served by awaiting another request's evaluation.
        self.coalesced = 0

    @property
    def inflight(self):
        return len(self._inflight)

    async def run(self, key, supplier):
        """Return ``await supplier()``, shared across identical keys.

        ``supplier`` is an async callable invoked only by the leader.
        A failing supplier propagates its exception to the leader *and*
        every coalesced follower, then clears the key so the next
        arrival retries fresh.  Cancelling a follower does not cancel
        the leader's evaluation.
        """
        future = self._inflight.get(key)
        if future is not None:
            self.coalesced += 1
            return await asyncio.wait_for(asyncio.shield(future), None)
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self.leaders += 1
        try:
            result = await supplier()
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.done():
                if isinstance(exc, Exception):
                    future.set_exception(exc)
                    # Mark retrieved: followers re-raise via their own
                    # awaits; an unobserved leader error must not warn.
                    future.exception()
                else:
                    future.cancel()
            raise
        self._inflight.pop(key, None)
        future.set_result(result)
        return result

    def stats(self):
        return {
            "leaders": self.leaders,
            "coalesced": self.coalesced,
            "inflight": len(self._inflight),
        }

    def __repr__(self):
        return (
            f"SingleFlight(inflight={len(self._inflight)}, "
            f"leaders={self.leaders}, coalesced={self.coalesced})"
        )
