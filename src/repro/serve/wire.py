"""Wire codec: request decoding and response encoding for the daemon.

Everything the daemon speaks is JSON.  Decoding is strict — a body
that is not a JSON object, a query that is not a string or a list of
strings, an unknown field type — fails with a typed
:class:`~repro.errors.QueryError` that the HTTP layer maps to a 400,
*before* the request ever reaches the query thread.  Encoding turns a
:class:`~repro.core.result.RefinementResponse` into plain dicts and
strings (Dewey labels via ``str()``), so payloads are stable across
snapshot generations and safe to share between coalesced requests.
"""

from __future__ import annotations

from ..errors import QueryError


def decode_query(value, field="query"):
    """Validate a query value: a string or a non-empty list of strings."""
    if isinstance(value, str):
        return value
    if isinstance(value, list) and value and all(
        isinstance(term, str) for term in value
    ):
        return value
    raise QueryError(
        f"{field!r} must be a keyword string or a non-empty list of "
        f"strings, got {value!r}"
    )


def decode_search_body(body):
    """Decode a ``/search`` / ``/explain`` body into engine kwargs.

    ``k``/``algorithm`` are passed through for the engine's own
    validation (so client errors match library errors byte for byte);
    unknown fields are rejected to catch misspellings like ``"topk"``.
    """
    if not isinstance(body, dict):
        raise QueryError("request body must be a JSON object")
    unknown = set(body) - {"query", "k", "algorithm", "rank_results"}
    if unknown:
        raise QueryError(
            f"unknown request field(s): {sorted(unknown)}"
        )
    if "query" not in body:
        raise QueryError("missing required field 'query'")
    params = {
        "query": decode_query(body["query"]),
        "k": body.get("k", 1),
        "algorithm": body.get("algorithm", "auto"),
        "rank_results": bool(body.get("rank_results", False)),
    }
    if not isinstance(params["algorithm"], str):
        raise QueryError(
            f"'algorithm' must be a string, got {params['algorithm']!r}"
        )
    return params


def decode_search_many_body(body):
    """Decode a ``/search_many`` body into engine kwargs."""
    if not isinstance(body, dict):
        raise QueryError("request body must be a JSON object")
    unknown = set(body) - {"queries", "k", "algorithm", "rank_results"}
    if unknown:
        raise QueryError(
            f"unknown request field(s): {sorted(unknown)}"
        )
    queries = body.get("queries")
    if not isinstance(queries, list) or not queries:
        raise QueryError(
            "'queries' must be a non-empty list of keyword queries"
        )
    params = {
        "queries": [
            decode_query(q, field=f"queries[{i}]")
            for i, q in enumerate(queries)
        ],
        "k": body.get("k", 1),
        "algorithm": body.get("algorithm", "auto"),
        "rank_results": bool(body.get("rank_results", False)),
    }
    if not isinstance(params["algorithm"], str):
        raise QueryError(
            f"'algorithm' must be a string, got {params['algorithm']!r}"
        )
    return params


def decode_reload_body(body):
    """Decode a ``/reload`` body: the snapshot (or document) path."""
    if not isinstance(body, dict):
        raise QueryError("request body must be a JSON object")
    snapshot = body.get("snapshot")
    if not isinstance(snapshot, str) or not snapshot:
        raise QueryError(
            "missing required field 'snapshot' (path to the frozen "
            "snapshot or index to load)"
        )
    return snapshot


# ----------------------------------------------------------------------
# Response encoding
# ----------------------------------------------------------------------
def encode_refinement(refinement):
    return {
        "keywords": list(refinement.rq.keywords),
        "dissimilarity": refinement.rq.dissimilarity,
        "rank_score": refinement.rank_score,
        "similarity_score": refinement.similarity_score,
        "dependence_score": refinement.dependence_score,
        "result_count": refinement.result_count,
        "slcas": [str(label) for label in refinement.slcas],
    }


def encode_response(response, include_plan=False):
    """A ``RefinementResponse`` as a JSON-ready dict."""
    payload = {
        "query": list(response.query),
        "needs_refinement": response.needs_refinement,
        "original_results": [
            str(label) for label in response.original_results
        ],
        "refinements": [
            encode_refinement(r) for r in response.refinements
        ],
        "search_for": [
            {
                "node_type": list(candidate.node_type),
                "confidence": candidate.confidence,
            }
            for candidate in response.search_for
        ],
        "stats": response.stats.as_dict(),
    }
    if include_plan:
        plan = response.plan
        payload["plan"] = plan.as_dict() if plan is not None else None
    return payload
