"""In-process daemon harness for tests and benchmarks.

Runs :func:`repro.serve.server.run_server` on a background thread with
an ephemeral port, hands out :class:`~repro.serve.client.ServeClient`
connections, and stops the daemon through the same graceful path as
``/shutdown``.  A startup failure (missing snapshot, bad port) is
re-raised in the caller's thread from :meth:`start`.
"""

from __future__ import annotations

import threading

from .client import ServeClient
from .server import run_server


class BackgroundServer:
    """``with BackgroundServer("corpus.frz") as daemon: ...``"""

    def __init__(self, source, host="127.0.0.1", port=0,
                 startup_timeout=60.0, **server_kwargs):
        self.source = source
        self.host = host
        self.port = port  # rebound to the real port once started
        self.startup_timeout = startup_timeout
        self.server_kwargs = server_kwargs
        self.server = None
        self._thread = None
        self._ready = threading.Event()
        self._error = None

    # ------------------------------------------------------------------
    def start(self):
        if self._thread is not None:
            raise RuntimeError("BackgroundServer already started")

        def main():
            try:
                run_server(
                    self.source, host=self.host, port=self.port,
                    ready_callback=self._on_ready,
                    # Signal handlers can only be installed on the main
                    # thread; tests SIGTERM a *subprocess* instead.
                    handle_signals=False,
                    **self.server_kwargs,
                )
            except BaseException as exc:  # noqa: BLE001 — report to caller
                self._error = exc
            finally:
                self._ready.set()

        self._thread = threading.Thread(
            target=main, name="xrefine-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.startup_timeout):
            raise TimeoutError(
                f"daemon did not start within {self.startup_timeout}s"
            )
        if self._error is not None:
            self._thread.join()
            raise self._error
        return self

    def _on_ready(self, server):
        self.server = server
        self.port = server.port
        self._ready.set()

    def stop(self, timeout=30.0):
        """Graceful shutdown (drain, close pool, release snapshot)."""
        server = self.server
        if server is not None and server.loop is not None:
            server.loop.call_soon_threadsafe(server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError(
                    f"daemon did not stop within {timeout}s"
                )
        if self._error is not None:
            raise self._error

    def client(self, timeout=30.0):
        return ServeClient(self.host, self.port, timeout=timeout)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False

    def __repr__(self):
        state = "running" if self.server is not None else "stopped"
        return f"BackgroundServer({self.source!r}, {state})"
