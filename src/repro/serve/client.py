"""A small keep-alive JSON client for the refinement daemon.

Built on :mod:`http.client` (stdlib), one persistent connection per
:class:`ServeClient`.  Non-2xx answers raise :class:`ServeClientError`
carrying the HTTP status and the server's typed error body — a 429
rejection, for instance, exposes ``retry_after`` so callers can back
off exactly as the daemon suggested.
"""

from __future__ import annotations

import http.client
import json

from .server import DEFAULT_PORT


class ServeClientError(Exception):
    """A non-2xx daemon answer, with its typed error body."""

    def __init__(self, status, error, error_type=None, retry_after=None):
        super().__init__(f"HTTP {status}: {error}")
        self.status = status
        self.error = error
        self.error_type = error_type
        self.retry_after = retry_after


class ServeClient:
    """One keep-alive connection to a :class:`RefineServer`."""

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, timeout=30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection = None

    # ------------------------------------------------------------------
    def _request(self, method, path, payload=None):
        body = None
        headers = {"Connection": "keep-alive"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            self._connection.request(method, path, body=body,
                                     headers=headers)
            response = self._connection.getresponse()
        except (http.client.RemoteDisconnected, BrokenPipeError,
                ConnectionResetError):
            # The daemon closed the idle keep-alive connection (e.g.
            # across a shutdown/restart in tests); retry once fresh.
            self.close()
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._connection.request(method, path, body=body,
                                     headers=headers)
            response = self._connection.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw) if raw else {}
        except ValueError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if not 200 <= response.status < 300:
            retry_after = decoded.get("retry_after")
            header = response.getheader("Retry-After")
            if retry_after is None and header is not None:
                retry_after = float(header)
            raise ServeClientError(
                response.status,
                decoded.get("error", "unknown server error"),
                error_type=decoded.get("error_type"),
                retry_after=retry_after,
            )
        return decoded

    # ------------------------------------------------------------------
    def search(self, query, k=1, algorithm="auto", rank_results=False):
        return self._request("POST", "/search", {
            "query": query, "k": k, "algorithm": algorithm,
            "rank_results": rank_results,
        })

    def search_many(self, queries, k=1, algorithm="auto",
                    rank_results=False):
        return self._request("POST", "/search_many", {
            "queries": queries, "k": k, "algorithm": algorithm,
            "rank_results": rank_results,
        })

    def explain(self, query, k=1, algorithm="auto"):
        return self._request("POST", "/explain", {
            "query": query, "k": k, "algorithm": algorithm,
        })

    def reload(self, snapshot):
        return self._request("POST", "/reload", {"snapshot": snapshot})

    def stats(self):
        return self._request("GET", "/stats")

    def healthz(self):
        return self._request("GET", "/healthz")

    def shutdown(self):
        return self._request("POST", "/shutdown")

    def close(self):
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return f"ServeClient({self.host}:{self.port})"
