"""Structural validation of a built or mutated :class:`XMLTree`.

The invariants every other subsystem assumes:

* each child's Dewey label extends its parent's by exactly one
  component, and sibling ordinals are strictly increasing;
* each node's type (prefix path) extends its parent's by its own tag;
* the tree's Dewey lookup table contains exactly the reachable nodes,
  and its ordered label list is sorted document order.

:func:`check_tree` raises :class:`~repro.errors.XMLError` on the first
violation; the incremental-update tests run it after every mutation.
"""

from __future__ import annotations

from ..errors import XMLError
from .dewey import Dewey


def check_tree(tree):
    """Verify all structural invariants; returns the node count."""
    seen = {}
    stack = [(tree.root, None)]
    while stack:
        node, parent = stack.pop()
        if parent is None:
            if node.dewey != Dewey.root():
                raise XMLError(f"root must be labeled 0, got {node.dewey}")
            if node.node_type != (node.tag,):
                raise XMLError(
                    f"root type must be ({node.tag},), got {node.node_type}"
                )
        else:
            if node.dewey.parent != parent.dewey:
                raise XMLError(
                    f"{node.label()} is not a Dewey child of {parent.label()}"
                )
            if node.node_type != parent.node_type + (node.tag,):
                raise XMLError(
                    f"{node.label()} type {node.node_type} does not extend "
                    f"its parent's {parent.node_type}"
                )
        if node.dewey in seen:
            raise XMLError(f"duplicate Dewey label {node.dewey}")
        seen[node.dewey] = node
        ordinals = [child.dewey.components[-1] for child in node.children]
        if ordinals != sorted(ordinals) or len(set(ordinals)) != len(ordinals):
            raise XMLError(
                f"children of {node.label()} have non-increasing ordinals"
            )
        for child in node.children:
            stack.append((child, node))

    if set(seen) != set(tree._by_dewey):
        missing = set(seen) ^ set(tree._by_dewey)
        raise XMLError(f"lookup table out of sync at {sorted(missing)[:3]}")
    ordered = tree._ordered
    if ordered != sorted(ordered):
        raise XMLError("ordered label list is not in document order")
    if len(ordered) != len(seen):
        raise XMLError("ordered label list size mismatch")
    return len(seen)


def merge_documents(trees, root_tag="collection"):
    """Combine several documents into one tree, one partition each.

    Keyword search over a *corpus* of XML documents (the sponsored-
    search setting: many advertising listings) reduces to the single-
    document case by grafting each document under a synthetic root:
    every original document becomes one document partition, so the
    partition-based algorithms parallelize over documents naturally and
    the meaningless-root semantics carry over (a "result" spanning two
    documents is exactly a root result).
    """
    from .build import build_tree

    def spec_of(node):
        return (
            node.tag,
            node.text or None,
            [spec_of(child) for child in node.children],
        )

    return build_tree(
        (root_tag, None, [spec_of(tree.root) for tree in trees])
    )
