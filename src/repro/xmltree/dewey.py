"""Dewey labels for XML nodes.

A Dewey label identifies a node by the path of child ordinals from the
document root: the root is ``0``, its second child is ``0.1``, that
child's first child is ``0.1.0`` and so on (the scheme of Tatarinov et
al. [19], used throughout the paper).  Dewey labels give three
properties that the refinement algorithms rely on:

* **document order** is the lexicographic order of the component tuples;
* the **LCA** of two nodes is their longest common prefix;
* a node is an **ancestor** of another iff its label is a proper prefix.

:class:`Dewey` is an immutable, hashable, totally ordered wrapper around
a tuple of non-negative ints.  It is the common currency passed between
the parser, the inverted lists, the SLCA algorithms and the document
partitioner, so the implementation favours cheap construction and
comparison.
"""

from __future__ import annotations

from ..errors import DeweyError


class Dewey:
    """An immutable Dewey label.

    Parameters
    ----------
    components:
        Iterable of non-negative ints, root first.  Must be non-empty.

    Examples
    --------
    >>> a = Dewey((0, 1, 2))
    >>> b = Dewey.parse("0.1")
    >>> b.is_ancestor_of(a)
    True
    >>> a.lca(Dewey((0, 2))).components
    (0,)
    """

    __slots__ = ("components", "_hash")

    def __init__(self, components):
        components = tuple(components)
        if not components:
            raise DeweyError("a Dewey label needs at least one component")
        for part in components:
            if not isinstance(part, int) or part < 0:
                raise DeweyError(f"invalid Dewey component: {part!r}")
        object.__setattr__(self, "components", components)
        object.__setattr__(self, "_hash", hash(components))

    def __setattr__(self, name, value):
        raise AttributeError("Dewey labels are immutable")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text):
        """Parse a dotted label string such as ``"0.1.2"``."""
        try:
            return cls(int(piece) for piece in text.split("."))
        except ValueError as exc:
            raise DeweyError(f"cannot parse Dewey label {text!r}") from exc

    @classmethod
    def from_trusted(cls, components):
        """Wrap an already-validated component tuple without any checks.

        Internal fast path for hot loops (inverted-list decoding, SLCA
        inner loops) where ``components`` is a non-empty tuple of
        non-negative ints by construction — typically sliced or copied
        from an existing label.  Passing anything else yields a label
        whose behaviour is undefined; every public construction route
        (``Dewey(...)``, :meth:`parse`, :meth:`child`) stays validated.
        """
        label = object.__new__(cls)
        object.__setattr__(label, "components", components)
        object.__setattr__(label, "_hash", hash(components))
        return label

    @classmethod
    def root(cls):
        """The label of the document root, ``0``."""
        return cls((0,))

    def child(self, ordinal):
        """Label of this node's ``ordinal``-th child (0-based)."""
        if ordinal < 0:
            raise DeweyError(f"child ordinal must be >= 0, got {ordinal}")
        return Dewey(self.components + (ordinal,))

    @property
    def parent(self):
        """Label of the parent node, or ``None`` for the root."""
        if len(self.components) == 1:
            return None
        return Dewey(self.components[:-1])

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    @property
    def depth(self):
        """Number of components; the root has depth 1."""
        return len(self.components)

    def is_ancestor_of(self, other):
        """True iff ``self`` is a *proper* ancestor of ``other``."""
        mine, theirs = self.components, other.components
        return len(mine) < len(theirs) and theirs[: len(mine)] == mine

    def is_ancestor_or_self_of(self, other):
        """True iff ``self`` is ``other`` or a proper ancestor of it."""
        mine, theirs = self.components, other.components
        return len(mine) <= len(theirs) and theirs[: len(mine)] == mine

    def is_descendant_of(self, other):
        """True iff ``self`` is a *proper* descendant of ``other``."""
        return other.is_ancestor_of(self)

    def lca(self, other):
        """Lowest common ancestor: the longest common prefix."""
        mine, theirs = self.components, other.components
        shared = 0
        for a, b in zip(mine, theirs):
            if a != b:
                break
            shared += 1
        if shared == 0:
            raise DeweyError(
                f"labels {self} and {other} share no prefix; "
                "they come from different documents"
            )
        return Dewey.from_trusted(mine[:shared])

    def partition_id(self):
        """The document partition containing this node (Def. 6.1).

        A partition is a subtree rooted at a child of the document root,
        so the partition id is the 2-component prefix of the label.  The
        root itself has no partition and returns ``None``.
        """
        if len(self.components) < 2:
            return None
        return Dewey.from_trusted(self.components[:2])

    # ------------------------------------------------------------------
    # Ordering / container protocol
    # ------------------------------------------------------------------
    def __eq__(self, other):
        if not isinstance(other, Dewey):
            return NotImplemented
        return self.components == other.components

    def __lt__(self, other):
        if not isinstance(other, Dewey):
            return NotImplemented
        return self.components < other.components

    def __le__(self, other):
        if not isinstance(other, Dewey):
            return NotImplemented
        return self.components <= other.components

    def __gt__(self, other):
        if not isinstance(other, Dewey):
            return NotImplemented
        return self.components > other.components

    def __ge__(self, other):
        if not isinstance(other, Dewey):
            return NotImplemented
        return self.components >= other.components

    def __hash__(self):
        return self._hash

    def __reduce__(self):
        # Labels cross process boundaries in the sharded execution
        # layer (repro.shard); the default slot-based pickling would
        # trip over the immutability guard in ``__setattr__``, so
        # rebuild through the trusted constructor instead.
        return (_from_components, (self.components,))

    def __len__(self):
        return len(self.components)

    def __getitem__(self, item):
        return self.components[item]

    def __iter__(self):
        return iter(self.components)

    def __repr__(self):
        return f"Dewey({str(self)!r})"

    def __str__(self):
        return ".".join(str(part) for part in self.components)


def _from_components(components):
    """Pickle helper: rebuild a label from its validated components."""
    return Dewey.from_trusted(components)


def lca_of_all(labels):
    """LCA of a non-empty iterable of :class:`Dewey` labels."""
    iterator = iter(labels)
    try:
        result = next(iterator)
    except StopIteration:
        raise DeweyError("lca_of_all() needs at least one label") from None
    for label in iterator:
        result = result.lca(label)
    return result


def descendant_range_key(prefix):
    """Upper-bound tuple for all descendants-or-self of ``prefix``.

    For a sorted list of component tuples, all labels ``x`` with
    ``prefix <= x < descendant_range_key(prefix)`` are exactly the
    descendants-or-self of ``prefix``.  Used by the partitioner and SLE's
    random-access probes to binary-search a Dewey range.
    """
    parts = prefix.components
    return parts[:-1] + (parts[-1] + 1,)
