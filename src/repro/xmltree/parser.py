"""DOM builder on top of the streaming tokenizer.

:func:`parse` turns an XML string into an :class:`~repro.xmltree.tree.XMLTree`,
assigning Dewey labels and node types on the fly.  :func:`iterparse`
exposes the same traversal as a stream of ``(event, node)`` pairs for
callers (like the index builder) that want a single pass without
retaining the whole tree.

Whitespace-only text between elements is discarded (the datasets are
data-centric XML); meaningful text is concatenated into the owning
element's ``text``.
"""

from __future__ import annotations

from ..errors import XMLSyntaxError
from .dewey import Dewey
from .tokenizer import COMMENT, EMPTY, END, PI, START, TEXT, tokenize
from .tree import XMLNode, XMLTree, build_node_type

#: iterparse event emitted when an element starts (node has no children yet).
EVENT_START = "start"
#: iterparse event emitted when an element is complete.
EVENT_END = "end"


def _attribute_children(node, attributes):
    """Materialize attributes as child pseudo-elements (see tree.py)."""
    for ordinal, (name, value) in enumerate(attributes.items()):
        child = XMLNode(
            tag=name,
            dewey=node.dewey.child(ordinal),
            node_type=build_node_type(node.node_type, name),
            text=value,
        )
        node.children.append(child)


def iterparse(text, keep_attributes=True):
    """Parse ``text``, yielding ``(event, XMLNode)`` pairs.

    ``EVENT_START`` fires when the element opens (its ``text`` and
    ``children`` are not final yet); ``EVENT_END`` fires when it closes
    and the node is complete.  Parents are yielded (start) before and
    (end) after all their children, i.e. the end-event order is a
    post-order traversal.
    """
    stack = []
    saw_root = False
    for token in tokenize(text):
        if token.kind in (COMMENT, PI):
            continue
        if token.kind == TEXT:
            if not stack:
                if token.value.strip():
                    raise XMLSyntaxError(
                        "character data outside the document element",
                        token.line,
                        token.column,
                    )
                continue
            stripped = token.value.strip()
            if stripped:
                node = stack[-1]
                node.text = f"{node.text} {stripped}" if node.text else stripped
            continue
        if token.kind in (START, EMPTY):
            if not stack:
                if saw_root:
                    raise XMLSyntaxError(
                        "multiple document elements", token.line, token.column
                    )
                saw_root = True
                dewey = Dewey.root()
                node_type = (token.value,)
            else:
                parent = stack[-1]
                dewey = parent.dewey.child(len(parent.children))
                node_type = build_node_type(parent.node_type, token.value)
            node = XMLNode(token.value, dewey, node_type)
            if keep_attributes and token.attributes:
                _attribute_children(node, token.attributes)
            if stack:
                stack[-1].children.append(node)
            yield EVENT_START, node
            if token.kind == EMPTY:
                yield EVENT_END, node
            else:
                stack.append(node)
            continue
        if token.kind == END:
            if not stack:
                raise XMLSyntaxError(
                    f"unexpected end tag </{token.value}>",
                    token.line,
                    token.column,
                )
            node = stack.pop()
            if node.tag != token.value:
                raise XMLSyntaxError(
                    f"mismatched end tag: expected </{node.tag}>, "
                    f"found </{token.value}>",
                    token.line,
                    token.column,
                )
            yield EVENT_END, node
    if stack:
        raise XMLSyntaxError(f"unclosed element <{stack[-1].tag}>")
    if not saw_root:
        raise XMLSyntaxError("document has no root element")


def parse(text, keep_attributes=True):
    """Parse an XML document string into an :class:`XMLTree`."""
    root = None
    for event, node in iterparse(text, keep_attributes=keep_attributes):
        if event == EVENT_START and root is None:
            root = node
    return XMLTree(root)


def parse_file(path, encoding="utf-8", keep_attributes=True):
    """Parse an XML document from a file path."""
    with open(path, "r", encoding=encoding) as handle:
        return parse(handle.read(), keep_attributes=keep_attributes)
