"""Serialization of :class:`~repro.xmltree.tree.XMLTree` back to XML text.

The writer is the inverse of the parser for the data-centric documents
this package produces: round-tripping ``parse(serialize(tree))``
preserves tags, text and structure (attribute pseudo-elements are
written back as child elements, which is the representation every other
subsystem consumes anyway).
"""

from __future__ import annotations

from io import StringIO

from .escape import escape_text


def serialize(tree, indent="  ", declaration=True):
    """Render a tree as pretty-printed XML text."""
    out = StringIO()
    if declaration:
        out.write('<?xml version="1.0" encoding="utf-8"?>\n')
    _write_node(out, tree.root, 0, indent)
    return out.getvalue()


def _write_node(out, node, level, indent):
    pad = indent * level
    if node.is_leaf:
        if node.text:
            out.write(
                f"{pad}<{node.tag}>{escape_text(node.text)}</{node.tag}>\n"
            )
        else:
            out.write(f"{pad}<{node.tag}/>\n")
        return
    out.write(f"{pad}<{node.tag}>")
    if node.text:
        out.write(escape_text(node.text))
    out.write("\n")
    for child in node.children:
        _write_node(out, child, level + 1, indent)
    out.write(f"{pad}</{node.tag}>\n")


def write_file(tree, path, indent="  ", encoding="utf-8"):
    """Serialize a tree directly to a file."""
    with open(path, "w", encoding=encoding) as handle:
        handle.write(serialize(tree, indent=indent))
