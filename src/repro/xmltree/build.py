"""Programmatic construction of :class:`~repro.xmltree.tree.XMLTree`.

The dataset generators build multi-megabyte documents; constructing
nodes directly (with Dewey labels and node types assigned on the fly)
avoids serializing to text and re-parsing.  A *spec* is a nested tuple

    (tag, text, [child_spec, ...])

where ``text`` may be ``None`` and the child list may be omitted::

    tree = build_tree(
        ("bib", None, [
            ("author", None, [
                ("name", "John Smith"),
            ]),
        ])
    )

Round-tripping through :func:`~repro.xmltree.serialize.serialize` and
:func:`~repro.xmltree.parser.parse` yields an identical tree — a
property the test suite checks with hypothesis.
"""

from __future__ import annotations

from ..errors import XMLError
from .dewey import Dewey
from .tree import XMLNode, XMLTree, build_node_type


def _normalize_spec(spec):
    if isinstance(spec, str):
        raise XMLError(f"a node spec must be a tuple, got string {spec!r}")
    tag = spec[0]
    text = spec[1] if len(spec) > 1 else None
    children = spec[2] if len(spec) > 2 else []
    return tag, text, children


def build_tree(spec):
    """Build a complete :class:`XMLTree` from a nested spec."""
    tag, text, children = _normalize_spec(spec)
    root = XMLNode(tag, Dewey.root(), (tag,), text or "")
    _attach_children(root, children)
    return XMLTree(root)


def _attach_children(parent, child_specs):
    # Iterative DFS to keep very deep/wide documents stack-safe.
    work = [(parent, child_specs)]
    while work:
        node, specs = work.pop()
        for spec in specs:
            tag, text, children = _normalize_spec(spec)
            child = XMLNode(
                tag,
                node.dewey.child(len(node.children)),
                build_node_type(node.node_type, tag),
                text or "",
            )
            node.children.append(child)
            if children:
                work.append((child, children))
