"""XML substrate: Dewey labels, tokenizer, parser, tree model, writer.

This subpackage is a self-contained, dependency-free XML toolkit
implementing exactly what the paper's data model (Section III) needs:
a rooted labeled tree whose nodes carry Dewey labels [19] and node
types (root-to-node prefix paths, Definition 3.1).
"""

from .build import build_tree
from .dewey import Dewey, descendant_range_key, lca_of_all
from .parser import EVENT_END, EVENT_START, iterparse, parse, parse_file
from .serialize import serialize, write_file
from .validate import check_tree, merge_documents
from .tree import XMLNode, XMLTree, build_node_type, type_display_name

__all__ = [
    "build_tree",
    "check_tree",
    "merge_documents",
    "Dewey",
    "descendant_range_key",
    "lca_of_all",
    "parse",
    "parse_file",
    "iterparse",
    "EVENT_START",
    "EVENT_END",
    "serialize",
    "write_file",
    "XMLNode",
    "XMLTree",
    "build_node_type",
    "type_display_name",
]
