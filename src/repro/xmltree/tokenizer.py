"""A from-scratch streaming XML tokenizer.

The tokenizer turns a unicode string (or an iterable of string chunks)
into a flat stream of :class:`Token` objects: start tags, end tags,
self-closing tags, character data, comments and processing
instructions.  It implements the subset of XML 1.0 the data generators
emit and real bibliographic data uses:

* elements with attributes (single or double quoted);
* character data with the predefined entities and numeric references;
* comments, processing instructions and the XML declaration (skipped);
* CDATA sections;
* a DOCTYPE declaration without an internal subset (skipped).

It does **not** implement namespaces, general entity definitions or
DTD validation — none of which the paper's datasets require.

Positions (line/column) are tracked so syntax errors are actionable.
"""

from __future__ import annotations

from ..errors import XMLSyntaxError
from .escape import unescape

# Token kinds.
START = "start"           # <tag attr="v">
END = "end"               # </tag>
EMPTY = "empty"           # <tag/>
TEXT = "text"             # character data (entity-decoded)
COMMENT = "comment"       # <!-- ... -->
PI = "pi"                 # <? ... ?>

_NAME_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:"
)
_NAME_CHARS = _NAME_START | set("0123456789.-")
_WHITESPACE = set(" \t\r\n")


class Token:
    """One lexical unit of an XML document.

    Attributes
    ----------
    kind:
        One of the module constants ``START``, ``END``, ``EMPTY``,
        ``TEXT``, ``COMMENT``, ``PI``.
    value:
        Tag name for element tokens, decoded character data for text
        tokens, raw body for comments and PIs.
    attributes:
        Dict of attribute name -> decoded value (element tokens only).
    line, column:
        1-based position where the token started.
    """

    __slots__ = ("kind", "value", "attributes", "line", "column")

    def __init__(self, kind, value, attributes=None, line=0, column=0):
        self.kind = kind
        self.value = value
        self.attributes = attributes or {}
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r})"

    def __eq__(self, other):
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.value == other.value
            and self.attributes == other.attributes
        )

    def __hash__(self):
        return hash((self.kind, self.value))


class _Cursor:
    """Position-tracking cursor over the input string."""

    __slots__ = ("text", "pos", "line", "col")

    def __init__(self, text):
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1

    def eof(self):
        return self.pos >= len(self.text)

    def peek(self):
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def advance(self, count=1):
        """Move forward ``count`` chars, updating line/column."""
        end = self.pos + count
        chunk = self.text[self.pos : end]
        newlines = chunk.count("\n")
        if newlines:
            self.line += newlines
            self.col = len(chunk) - chunk.rfind("\n")
        else:
            self.col += count
        self.pos = end

    def take_until(self, needle, error):
        """Consume and return text up to ``needle`` (also consumed)."""
        found = self.text.find(needle, self.pos)
        if found == -1:
            raise XMLSyntaxError(error, self.line, self.col)
        chunk = self.text[self.pos : found]
        self.advance(found - self.pos + len(needle))
        return chunk

    def skip_whitespace(self):
        while not self.eof() and self.text[self.pos] in _WHITESPACE:
            self.advance()

    def error(self, message):
        return XMLSyntaxError(message, self.line, self.col)


def _read_name(cur):
    """Read an XML Name at the cursor."""
    start = cur.pos
    if cur.eof() or cur.peek() not in _NAME_START:
        raise cur.error(f"expected a name, found {cur.peek()!r}")
    while not cur.eof() and cur.peek() in _NAME_CHARS:
        cur.advance()
    return cur.text[start : cur.pos]


def _read_attributes(cur):
    """Read zero or more ``name="value"`` pairs, stopping at > or /."""
    attributes = {}
    while True:
        cur.skip_whitespace()
        ch = cur.peek()
        if ch in (">", "/", ""):
            return attributes
        name = _read_name(cur)
        cur.skip_whitespace()
        if cur.peek() != "=":
            raise cur.error(f"attribute {name!r} is missing '='")
        cur.advance()
        cur.skip_whitespace()
        quote = cur.peek()
        if quote not in ("'", '"'):
            raise cur.error(f"attribute {name!r} value must be quoted")
        cur.advance()
        raw = cur.take_until(quote, f"unterminated value for attribute {name!r}")
        if name in attributes:
            raise cur.error(f"duplicate attribute {name!r}")
        attributes[name] = unescape(raw)


def tokenize(text):
    """Yield :class:`Token` objects for an XML document string.

    The stream is purely lexical: tag balance is the parser's job.
    Leading/trailing whitespace-only text between tags is still emitted
    (the parser decides whether to keep it).
    """
    cur = _Cursor(text)
    while not cur.eof():
        line, col = cur.line, cur.col
        if cur.peek() != "<":
            next_tag = cur.text.find("<", cur.pos)
            end = next_tag if next_tag != -1 else len(cur.text)
            raw = cur.text[cur.pos : end]
            cur.advance(end - cur.pos)
            decoded = unescape(raw)
            if decoded:
                yield Token(TEXT, decoded, line=line, column=col)
            continue

        # At a '<'.
        rest = cur.text[cur.pos : cur.pos + 9]
        if rest.startswith("<!--"):
            cur.advance(4)
            body = cur.take_until("-->", "unterminated comment")
            yield Token(COMMENT, body, line=line, column=col)
        elif rest.startswith("<![CDATA["):
            cur.advance(9)
            body = cur.take_until("]]>", "unterminated CDATA section")
            if body:
                yield Token(TEXT, body, line=line, column=col)
        elif rest.startswith("<!DOCTYPE"):
            cur.advance(9)
            body = cur.take_until(">", "unterminated DOCTYPE")
            if "[" in body:
                raise cur.error("DOCTYPE internal subsets are not supported")
        elif rest.startswith("<?"):
            cur.advance(2)
            body = cur.take_until("?>", "unterminated processing instruction")
            yield Token(PI, body, line=line, column=col)
        elif rest.startswith("</"):
            cur.advance(2)
            name = _read_name(cur)
            cur.skip_whitespace()
            if cur.peek() != ">":
                raise cur.error(f"malformed end tag </{name}")
            cur.advance()
            yield Token(END, name, line=line, column=col)
        else:
            cur.advance(1)
            name = _read_name(cur)
            attributes = _read_attributes(cur)
            if cur.peek() == "/":
                cur.advance()
                if cur.peek() != ">":
                    raise cur.error(f"malformed empty-element tag <{name}")
                cur.advance()
                yield Token(EMPTY, name, attributes, line=line, column=col)
            elif cur.peek() == ">":
                cur.advance()
                yield Token(START, name, attributes, line=line, column=col)
            else:
                raise cur.error(f"unterminated start tag <{name}")
