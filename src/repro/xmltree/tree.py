"""The labeled-tree data model of Section III.

XML data is modeled as a rooted, labeled tree.  Each element becomes an
:class:`XMLNode` carrying

* ``tag`` — the element name;
* ``dewey`` — its :class:`~repro.xmltree.dewey.Dewey` label;
* ``node_type`` — the prefix path of tag names from the root
  (Definition 3.1), represented as a tuple of tags;
* ``text`` — the concatenated direct character data of the element.

Attributes of an element are modeled the way the XML keyword search
literature does: each attribute becomes a child node whose tag is the
attribute name and whose text is the attribute value, so keyword
matches on attribute names/values behave exactly like matches on
elements.  (The synthetic datasets only use elements, but real data
such as DBLP uses ``key=``/``mdate=`` attributes.)

:class:`XMLTree` owns the node table and offers Dewey-keyed lookup,
pre-order traversal, subtree iteration via Dewey ranges, and document
partitions (Definition 6.1).
"""

from __future__ import annotations

import bisect

from ..errors import XMLError
from .dewey import Dewey, descendant_range_key


class XMLNode:
    """One element (or attribute pseudo-element) of the document tree."""

    __slots__ = ("tag", "dewey", "node_type", "text", "children")

    def __init__(self, tag, dewey, node_type, text=""):
        self.tag = tag
        self.dewey = dewey
        self.node_type = node_type
        self.text = text
        self.children = []

    @property
    def depth(self):
        """Depth of the node; the root has depth 1 (as in Formula 1)."""
        return self.dewey.depth

    @property
    def is_leaf(self):
        return not self.children

    def label(self):
        """The ``tag:deweyID`` display form used throughout the paper."""
        return f"{self.tag}:{self.dewey}"

    def iter_subtree(self):
        """Yield this node and all descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def subtree_text(self):
        """All character data in the subtree, in document order."""
        return " ".join(
            node.text for node in self.iter_subtree() if node.text
        )

    def __repr__(self):
        return f"XMLNode({self.label()})"


class XMLTree:
    """A parsed XML document with Dewey-addressed random access."""

    def __init__(self, root):
        if root.dewey != Dewey.root():
            raise XMLError(
                f"document root must carry Dewey label 0, got {root.dewey}"
            )
        self.root = root
        self._by_dewey = {}
        self._ordered = []
        for node in root.iter_subtree():
            self._by_dewey[node.dewey] = node
            self._ordered.append(node.dewey.components)
        self._ordered.sort()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self):
        """Number of nodes in the document."""
        return len(self._by_dewey)

    def __contains__(self, dewey):
        return dewey in self._by_dewey

    def node(self, dewey):
        """The node with the given Dewey label.

        Raises :class:`XMLError` if no such node exists.
        """
        try:
            return self._by_dewey[dewey]
        except KeyError:
            raise XMLError(f"no node with Dewey label {dewey}") from None

    def get(self, dewey, default=None):
        """Like :meth:`node` but returns ``default`` when missing."""
        return self._by_dewey.get(dewey, default)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter_nodes(self):
        """All nodes in document order."""
        for components in self._ordered:
            yield self._by_dewey[Dewey(components)]

    def iter_subtree(self, dewey):
        """All nodes in the subtree rooted at ``dewey``, document order."""
        lo = bisect.bisect_left(self._ordered, dewey.components)
        hi = bisect.bisect_left(self._ordered, descendant_range_key(dewey))
        for components in self._ordered[lo:hi]:
            yield self._by_dewey[Dewey(components)]

    def partitions(self):
        """The document partitions of Definition 6.1, in order.

        Each partition is the subtree rooted at a child of the document
        root; the returned list contains the partition root nodes.
        """
        return list(self.root.children)

    def partition_count(self):
        """Number of document partitions.

        Cheap on paged trees (directory length, no node
        materialization), unlike ``len(partitions())``.
        """
        return len(self.root.children)

    def partition_of(self, dewey):
        """The partition root containing ``dewey`` (``None`` for root)."""
        pid = dewey.partition_id()
        if pid is None:
            return None
        return self._by_dewey.get(pid)

    # ------------------------------------------------------------------
    # Mutation (document partitions only; see repro.index.update)
    # ------------------------------------------------------------------
    def next_partition_ordinal(self):
        """Ordinal for a new root child that cannot collide.

        After a partition removal, ``len(root.children)`` may reuse an
        existing ordinal; the maximum existing ordinal + 1 never does.
        """
        if not self.root.children:
            return 0
        return max(child.dewey.components[1] for child in self.root.children) + 1

    def append_partition(self, node):
        """Attach a fully built subtree as a new child of the root.

        ``node`` must carry a Dewey label of
        ``root.child(next_partition_ordinal())`` and consistent labels
        throughout its subtree (``repro.index.update`` builds it).
        """
        expected = Dewey((0, self.next_partition_ordinal()))
        if node.dewey != expected:
            raise XMLError(
                f"new partition must be labeled {expected}, got {node.dewey}"
            )
        self.root.children.append(node)
        appended = []
        for descendant in node.iter_subtree():
            self._by_dewey[descendant.dewey] = descendant
            appended.append(descendant.dewey.components)
        # New labels all sort after every existing label.
        self._ordered.extend(appended)

    def remove_partition(self, dewey):
        """Detach one document partition; returns its root node.

        Sibling labels keep their ordinals (Dewey labels need not be
        dense), so document order and all remaining labels stay valid.
        """
        import bisect as _bisect

        node = self.node(dewey)
        if node not in self.root.children:
            raise XMLError(f"{dewey} is not a document partition")
        self.root.children.remove(node)
        lo = _bisect.bisect_left(self._ordered, dewey.components)
        hi = _bisect.bisect_left(
            self._ordered, descendant_range_key(dewey)
        )
        for components in self._ordered[lo:hi]:
            del self._by_dewey[Dewey(components)]
        del self._ordered[lo:hi]
        return node

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def node_types(self):
        """All distinct node types with their node counts.

        Returns a dict mapping the type (tuple of tags) to the number of
        nodes of that type (``N_T`` in Formula 3).
        """
        counts = {}
        for node in self._by_dewey.values():
            counts[node.node_type] = counts.get(node.node_type, 0) + 1
        return counts

    def __repr__(self):
        return f"XMLTree(root={self.root.tag!r}, nodes={len(self)})"


def build_node_type(parent_type, tag):
    """Extend a parent's node type (prefix path) with a child tag."""
    return parent_type + (tag,)


def type_display_name(node_type):
    """Human-readable name for a node type.

    Following the paper's convention ("we use the tag name instead of
    the prefix path to represent the node type"), the last tag of the
    path is used.
    """
    return node_type[-1]
