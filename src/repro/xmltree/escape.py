"""XML character data escaping and entity decoding.

Only the five predefined XML entities plus numeric character references
are supported — that is everything the bundled parsers and serializers
emit or need to consume.  The functions here are deliberately free of
regular expressions on the hot decode path; the tokenizer calls
:func:`unescape` on every text span.
"""

from __future__ import annotations

from ..errors import XMLSyntaxError

_NAMED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_ESCAPE_TEXT = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}

_ESCAPE_ATTR = dict(_ESCAPE_TEXT)
_ESCAPE_ATTR['"'] = "&quot;"


def escape_text(value):
    """Escape character data for element content."""
    if not any(ch in value for ch in "&<>"):
        return value
    return "".join(_ESCAPE_TEXT.get(ch, ch) for ch in value)


def escape_attribute(value):
    """Escape character data for a double-quoted attribute value."""
    if not any(ch in value for ch in '&<>"'):
        return value
    return "".join(_ESCAPE_ATTR.get(ch, ch) for ch in value)


def decode_entity(body):
    """Decode the body of one entity reference (text between & and ;).

    Supports the five XML named entities plus decimal (``#65``) and
    hexadecimal (``#x41``) character references.
    """
    if body in _NAMED_ENTITIES:
        return _NAMED_ENTITIES[body]
    if body.startswith("#x") or body.startswith("#X"):
        try:
            return chr(int(body[2:], 16))
        except (ValueError, OverflowError) as exc:
            raise XMLSyntaxError(f"bad character reference &{body};") from exc
    if body.startswith("#"):
        try:
            return chr(int(body[1:]))
        except (ValueError, OverflowError) as exc:
            raise XMLSyntaxError(f"bad character reference &{body};") from exc
    raise XMLSyntaxError(f"unknown entity &{body};")


def unescape(value):
    """Replace all entity references in ``value`` with their characters."""
    if "&" not in value:
        return value
    out = []
    pos = 0
    length = len(value)
    while pos < length:
        amp = value.find("&", pos)
        if amp == -1:
            out.append(value[pos:])
            break
        out.append(value[pos:amp])
        semi = value.find(";", amp + 1)
        if semi == -1:
            raise XMLSyntaxError("unterminated entity reference")
        out.append(decode_entity(value[amp + 1 : semi]))
        pos = semi + 1
    return "".join(out)
