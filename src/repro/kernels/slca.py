"""Columnar batch SLCA — Scan Eager restructured column-at-a-time.

``scan_eager_slca`` walks the anchor list one label at a time, asking
every matcher for its closest element.  This kernel transposes the
loops: the anchor range's candidate **depths** are computed one whole
matcher column at a time, so the inner loop is a single galloping
sweep over two flat arrays — pure pointer arithmetic in the compiled
backend, one bisect per anchor in the Python fallback.

The transposition is exact, not approximate:

* For anchor ``a``, Scan Eager's candidate is ``lca(a, m)`` over the
  per-matcher closest elements ``m`` — always a *prefix of the
  anchor*, so only its depth matters.
* A matcher's closest element is the anchor's floor or ceiling in the
  matcher column (the forward pointer never changes which, only how
  fast it is found), and ``depth = max(lcp(floor), lcp(ceil))``
  regardless of the floor-favouring tie-break on the returned label.
* The final candidate depth is the **min** over matchers, and min is
  order-independent — the per-anchor ``depth == 1`` early exit prunes
  work, never changes the value.

The one semantic the batch form cannot reproduce is the
``DeweyError`` raised for labels sharing no prefix (cross-document
lists): a computed depth of 0 routes the whole call back to the
classic per-node implementation, which raises identically.
"""

from __future__ import annotations

from bisect import bisect_right

from ..xmltree.dewey import Dewey
from . import backend


def _lcp(a, b):
    shared = 0
    for x, y in zip(a, b):
        if x != y:
            break
        shared += 1
    return shared


def _fold_depths_python(anchor_keys, a_lo, a_hi, keys, m_lo, m_hi, depths):
    """Pure-Python twin of the compiled ``repro_slca_fold``."""
    position = m_lo
    # Lazy key columns ship a header-guided bisect that decodes at
    # most one posting block per probe; prefer it over random-access
    # bisection (which would fault O(log n) blocks per anchor).
    search = getattr(keys, "bisect_right", None)
    for i in range(a_lo, a_hi):
        target = anchor_keys[i]
        if search is not None:
            position = search(target, position, m_hi)
        else:
            position = bisect_right(keys, target, position, m_hi)
        depth = 0
        if position > m_lo:
            depth = _lcp(keys[position - 1], target)
        if position < m_hi:
            ceil_depth = _lcp(keys[position], target)
            if ceil_depth > depth:
                depth = ceil_depth
        slot = i - a_lo
        if depth < depths[slot]:
            depths[slot] = depth
    return depths


def slca_ranges(column_ranges):
    """SLCAs of the key ranges ``[(ListColumns, lo, hi), ...]``.

    One entry per keyword; returns document-ordered ``Dewey`` labels,
    byte-identical to ``scan_eager_slca`` over the same label slices.
    """
    if not column_ranges:
        return []
    for _, lo, hi in column_ranges:
        if lo >= hi:
            return []

    anchor_index = min(
        range(len(column_ranges)),
        key=lambda i: column_ranges[i][2] - column_ranges[i][1],
    )
    anchor_columns, a_lo, a_hi = column_ranges[anchor_index]
    anchor_keys = anchor_columns.keys
    count = a_hi - a_lo
    matchers = sorted(
        (
            entry
            for i, entry in enumerate(column_ranges)
            if i != anchor_index
        ),
        key=lambda entry: entry[2] - entry[1],
    )

    lib = backend.compiled
    if lib is not None:
        from array import array

        # One FFI crossing for the whole SLCA: depth initialization
        # and every matcher fold happen inside repro_slca_all, with the
        # per-column pointer casts memoized on the columns themselves.
        depths = array("q", bytes(8 * count))
        a_flat_c, a_offs_c = backend.column_handles(lib, anchor_columns)
        ffi = lib.ffi
        nmatchers = len(matchers)
        m_flats = []
        m_offs = []
        m_los = array("q", bytes(8 * max(nmatchers, 1)))
        m_his = array("q", bytes(8 * max(nmatchers, 1)))
        for j, (column, m_lo, m_hi) in enumerate(matchers):
            flat_c, offs_c = backend.column_handles(lib, column)
            m_flats.append(flat_c)
            m_offs.append(offs_c)
            m_los[j] = m_lo
            m_his[j] = m_hi
        lib.lib.repro_slca_all(
            a_flat_c, a_offs_c, a_lo, a_hi,
            ffi.new("const int64_t *[]", m_flats),
            ffi.new("const int64_t *[]", m_offs),
            lib.i64(m_los), lib.i64(m_his), nmatchers,
            lib.i64(depths),
        )
    else:
        depths = [len(anchor_keys[i]) for i in range(a_lo, a_hi)]
        for column, m_lo, m_hi in matchers:
            _fold_depths_python(
                anchor_keys, a_lo, a_hi, column.keys, m_lo, m_hi, depths
            )

    candidates = []
    for slot in range(count):
        depth = depths[slot]
        if depth == 0:
            # Labels from different documents: re-run the classic
            # per-node path, which raises the exact DeweyError.
            from ..slca.scan_eager import scan_eager_slca

            return scan_eager_slca(
                [
                    [
                        Dewey.from_trusted(column.keys[i])
                        for i in range(lo, hi)
                    ]
                    for column, lo, hi in column_ranges
                ]
            )
        candidates.append(anchor_keys[a_lo + slot][:depth])

    return [Dewey.from_trusted(key) for key in _remove_ancestors(candidates)]


def slca_columns(columns):
    """SLCAs over whole columns (step-2 / whole-list calls)."""
    return slca_ranges([(column, 0, column.size) for column in columns])


def _remove_ancestors(candidate_keys):
    """`slca.lca.remove_ancestors` on raw component tuples."""
    ordered = sorted(set(candidate_keys))
    kept = []
    for key in ordered:
        length = len(key)
        while kept:
            last = kept[-1]
            if len(last) < length and key[: len(last)] == last:
                kept.pop()
            else:
                break
        kept.append(key)
    return kept
