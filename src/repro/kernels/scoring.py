"""Vectorized Top-2K candidate scoring (the batch scoring kernels).

The refinement hot path spends its time in three per-candidate /
per-partition Python loops: the short-list route's random-access
probes (one ``pid_range`` dict hit per lane per partition), the
Top-2K admission pre-checks (``has_key`` / ``would_admit`` per beam
candidate per partition), and the final ranking model's statistics
lookups (``f_k^T`` / ``tf`` / co-occurrence store reads per keyword
per candidate).  This module batches all three:

* :func:`partition_presence` — one merge-join over flat partition
  tables (compiled when the backend is) producing every anchor
  partition's presence mask and per-lane posting span at once: the
  whole probe phase of the short-list route as two columns.
* :func:`prepare_beam` / :func:`admission_sweep` — the memoized DP
  beam's ``(dissimilarity, content order)`` admission columns,
  compared against the :class:`~repro.core.candidates.RQSortedList`
  bound in a single threshold sweep.  Ties must resolve in content
  order (the sorted keyword tuple), exactly the list's own total
  order, so the sweep is a *superset* pre-filter: a candidate it
  passes is re-checked by ``insert`` itself, and one it rejects could
  never have been admitted (the threshold only tightens as the loop
  runs) — pruning is answer- and stats-identical.
* :class:`ScoreTable` / :func:`batch_similarity` /
  :func:`batch_dependence` — Formula 2–9 scoring over precomputed
  ``f_k^T`` / ``tf`` / pairwise co-occurrence lookup columns, memoized
  per index version.  The arithmetic replays the reference formulas
  term for term (same association, same iteration order), so scores
  are byte-identical floats; only the store lookups are batched away.

Everything here follows the kernel contract: pure-Python semantics
are the reference, the compiled path is a speedup behind
``REPRO_NO_COMPILED_KERNELS=1``, and the ``kernel:batch_score``
oracle comparison in ``verify-diff`` holds both to byte-identity.
"""

from __future__ import annotations

from array import array
from weakref import WeakKeyDictionary

from . import backend

_MISS = object()


# ----------------------------------------------------------------------
# Batch partition presence (the short-list probe phase)
# ----------------------------------------------------------------------
def presence_ready(lane_columns):
    """True when every lane can feed the batch presence kernel.

    Blocked (beyond-RAM) columns only qualify once their partition
    tables are already materialized — the batch path must never be
    what forces a lazy column resident.
    """
    return all(column.tables_ready for column in lane_columns)


def partition_presence(anchor_columns, lane_columns):
    """``(masks, spans)`` for every partition of the anchor column.

    ``masks[i]`` sets bit ``lane`` when ``lane_columns[lane]`` has
    postings in the anchor's ``i``-th partition; ``spans[(i * nlanes +
    lane) * 2]`` / ``+ 1`` hold that lane's ``(lo, hi)`` posting range
    (``-1`` when absent).  Exactly the masks and spans the per-pid
    ``pid_range`` probes produced, in one merge-join over the sorted
    partition tables.
    """
    a_pids = anchor_columns.pids
    npart = len(a_pids)
    nlanes = len(lane_columns)

    lib = backend.compiled
    if lib is not None and 0 < nlanes <= backend.MAX_MERGE_LANES and npart:
        masks = array("q", bytes(8 * npart))
        spans = array("q", bytes(16 * npart * nlanes))
        a_pid_flat, _, _ = anchor_columns.pid_cols()
        ffi = lib.ffi
        pid_ptrs = []
        lo_ptrs = []
        hi_ptrs = []
        keepalive = []
        counts = array("q", bytes(8 * nlanes))
        for lane, column in enumerate(lane_columns):
            pid_flat, los, his = column.pid_cols()
            handles = (lib.i64(pid_flat), lib.i64(los), lib.i64(his))
            keepalive.append(handles)
            pid_ptrs.append(handles[0])
            lo_ptrs.append(handles[1])
            hi_ptrs.append(handles[2])
            counts[lane] = len(column.pids)
        lib.lib.repro_partition_presence(
            lib.i64(a_pid_flat), npart,
            ffi.new("const int64_t *[]", pid_ptrs),
            ffi.new("const int64_t *[]", lo_ptrs),
            ffi.new("const int64_t *[]", hi_ptrs),
            lib.i64(counts), nlanes,
            lib.i64(masks), lib.i64(spans),
        )
        return masks, spans

    masks = [0] * npart
    spans = [-1] * (2 * npart * nlanes)
    for lane, column in enumerate(lane_columns):
        pids = column.pids
        starts = column.starts
        ends = column.ends
        bit = 1 << lane
        ai = 0
        li = 0
        na = npart
        nl = len(pids)
        while ai < na and li < nl:
            a = a_pids[ai]
            l = pids[li]
            if a < l:
                ai += 1
            elif l < a:
                li += 1
            else:
                masks[ai] |= bit
                base = (ai * nlanes + lane) * 2
                spans[base] = starts[li]
                spans[base + 1] = ends[li]
                ai += 1
                li += 1
    return masks, spans


# ----------------------------------------------------------------------
# Vectorized admission sweep (the Top-2K threshold check)
# ----------------------------------------------------------------------
class PreparedBeam:
    """Admission columns of one memoized DP beam.

    Parallel to the candidate list: the set key and the
    ``(dissimilarity, sorted keyword tuple)`` total-order tuple of
    every candidate, precomputed once per distinct present-keyword set
    instead of per partition visit.
    """

    __slots__ = ("rqs", "keys", "orders")

    def __init__(self, candidates):
        self.rqs = candidates
        self.keys = [rq.key for rq in candidates]
        self.orders = [
            (rq.dissimilarity, tuple(sorted(rq.key))) for rq in candidates
        ]


def prepare_beam(candidates):
    """Wrap a DP beam's candidates in their admission columns."""
    return PreparedBeam(candidates)


def admission_sweep(prepared, sorted_list, query_key):
    """Beam indices the admission loop must still consider.

    One pass comparing the beam's precomputed order tuples against the
    list's worst kept entry.  The result is a superset of the
    candidates the sequential loop would admit: the threshold only
    tightens while the loop runs (inserts never raise the bound and
    membership only grows among swept candidates), so a candidate
    rejected against the entry state could never have passed later —
    skipping it changes neither answers nor statistics.  Survivors are
    re-checked per candidate, keeping ties resolved in content order
    by ``insert`` itself.
    """
    keys = prepared.keys
    if not sorted_list.is_full:
        return [i for i, key in enumerate(keys) if key != query_key]
    worst = sorted_list.worst_order()
    orders = prepared.orders
    has_key = sorted_list.has_key
    return [
        i
        for i, key in enumerate(keys)
        if key != query_key and (orders[i] < worst or has_key(key))
    ]


# ----------------------------------------------------------------------
# Batch Formula 2-9 scoring over precomputed lookup columns
# ----------------------------------------------------------------------
class ScoreTable:
    """Per-index memo of the ranking model's statistics lookups.

    ``tf`` holds ``tf(k, T)``, ``ki`` the Formula-3 keyword importance
    ``ln(1 + N_T / (1 + f_k^T))``, ``pair`` the Formula-7 association
    confidences, and ``g`` the per-type ``G_T`` normalizers.  The
    values are exactly what the reference formulas compute — caching a
    float changes nothing — and the table self-invalidates by index
    version, like every other derived cache.
    """

    __slots__ = ("version", "tf", "ki", "pair", "g")

    def __init__(self, version):
        self.version = version
        self.tf = {}
        self.ki = {}
        self.pair = {}
        self.g = {}


_SCORE_TABLES = WeakKeyDictionary()


def score_table(index):
    """The (possibly fresh) :class:`ScoreTable` for ``index``."""
    version = getattr(index, "version", 0)
    try:
        table = _SCORE_TABLES.get(index)
    except TypeError:
        return ScoreTable(version)
    if table is None or table.version != version:
        table = ScoreTable(version)
        try:
            _SCORE_TABLES[index] = table
        except TypeError:
            pass
    return table


def supported_model(model):
    """True when the batch scorer can stand in for ``model``.

    Only the stock :class:`~repro.core.ranking.model.RankingModel` is
    replayed here; a subclass may override the scoring methods, so it
    keeps the per-node path.
    """
    from ..core.ranking.model import RankingModel

    return type(model) is RankingModel


def batch_similarity(table, index, model, rq, original_keywords, search_for):
    """Formulas 2-6 over the lookup columns — byte-identical floats.

    Term-for-term replay of :func:`repro.core.ranking.similarity.
    similarity`: same summation order (including the Guideline-2
    domain set's own iteration order), same association, same
    special cases; only the ``f_k^T`` / ``tf`` store reads go through
    the memo columns.
    """
    from ..core.ranking.similarity import (
        _guideline2_domain,
        keyword_importance,
    )

    if not search_for:
        return 0.0
    candidates = search_for if model.use_g3 else search_for[:1]
    tf_memo = table.tf
    ki_memo = table.ki
    g_memo = table.g
    total = 0.0
    for candidate in candidates:
        node_type = candidate.node_type
        if model.use_g1:
            g_t = g_memo.get(node_type, _MISS)
            if g_t is _MISS:
                g_t = index.distinct_keywords(node_type)
                g_memo[node_type] = g_t
            if g_t == 0:
                first = 0.0
            else:
                acc = 0
                for k in rq.keywords:
                    key = (k, node_type)
                    value = tf_memo.get(key, _MISS)
                    if value is _MISS:
                        value = index.tf(k, node_type)
                        tf_memo[key] = value
                    acc += value
                first = acc / g_t
        else:
            first = 1.0
        if model.use_g2:
            second = 0
            for k in _guideline2_domain(
                rq.keywords, original_keywords, model.g2_domain
            ):
                key = (k, node_type)
                value = ki_memo.get(key, _MISS)
                if value is _MISS:
                    value = keyword_importance(index, k, node_type)
                    ki_memo[key] = value
                second += value
        else:
            second = 1.0
        total += candidate.confidence * (first * second)
    if model.use_g4:
        total *= model.decay ** rq.dissimilarity
    return total


def batch_dependence(table, index, model, rq, search_for):
    """Formulas 7-9 over the pair-confidence column — identical floats.

    The pairwise co-occurrence reads are the expensive part (each is a
    key-encoded store probe plus, on a cold pair, two ancestor-set
    intersections); memoizing the confidence float per ``(ki, k, T)``
    leaves the Formula-8 accumulation untouched.
    """
    if not search_for:
        return 0.0
    candidates = search_for if model.use_g3 else search_for[:1]
    pair_memo = table.pair
    keywords = list(dict.fromkeys(rq.keywords))
    total = 0.0
    for candidate in candidates:
        node_type = candidate.node_type
        if len(keywords) < 2:
            total += candidate.confidence * 0.0
            continue
        acc = 0.0
        for k in keywords:
            for ki in keywords:
                if ki == k:
                    continue
                key = (ki, k, node_type)
                value = pair_memo.get(key, _MISS)
                if value is _MISS:
                    value = index.cooccurrence.confidence(ki, k, node_type)
                    pair_memo[key] = value
                acc += value
        total += candidate.confidence * (acc / len(keywords))
    return total
