"""Merged Dewey scan with a precomputed adjacent-LCP table.

The stack route (Algorithm 1) consumes the KS inverted lists as one
merged document-ordered stream and, for every posting, compares its
label against the current stack to find the shared prefix length.
Because the stack always holds exactly the previous posting's
components, that shared length **is** the LCP of adjacent labels in
the merged stream — a pure function of the posting columns that can
be tabulated up front, turning the per-posting prefix comparison into
an indexed lookup.

:func:`merged_lcp` produces the table: per merged posting, the source
lane (list index) and the LCP against the previous merged label.
Ties between lanes break toward the lowest lane, byte-identical to
the strict-``<`` cursor merge it replaces.  The compiled backend runs
the k-way merge over the flat component arrays; the Python fallback
concatenates the per-lane ``(key, lane)`` runs and lets Timsort's
galloping merge sort them (the runs are already sorted), then fills
the LCP column in one adjacent pass.

:func:`merged_lcp_runs` additionally encodes the stream's
**sibling-leaf runs**: maximal chains of consecutive postings from
the same lane, with the same label length, each sharing all but the
last component with its predecessor (LCP = length - 1).  Such a chain
is exactly the case where the stack route pops one leaf frame and
pushes the next sibling, over and over, with no other lane
interleaved; the run table lets ``stack_refine`` process the whole
chain in O(1) stack work per run when no emission is possible.
"""

from __future__ import annotations

from . import backend


def _lcp(a, b):
    shared = 0
    for x, y in zip(a, b):
        if x != y:
            break
        shared += 1
    return shared


def merged_lcp(columns):
    """``(lanes, lcps)`` for the merged stream over ``columns``.

    ``lanes[i]`` is the column index that produced merged posting
    ``i``; ``lcps[i]`` is the component LCP between merged postings
    ``i - 1`` and ``i`` (0 for the first).  The caller reconstructs
    each posting's key by keeping one counter per lane — the streams
    inside each lane come out in their original order.
    """
    total = sum(column.size for column in columns)
    lib = backend.compiled
    if lib is not None and 0 < len(columns) <= backend.MAX_MERGE_LANES:
        from array import array

        lanes = array("i", bytes(4 * total))
        lcps = array("q", bytes(8 * total))
        if total:
            ffi = lib.ffi
            flats = []
            offs = []
            keepalive = []
            for column in columns:
                flat, off = column.flat_offs()
                flat_c = lib.i64(flat)
                off_c = lib.i64(off)
                keepalive.append((flat_c, off_c))
                flats.append(flat_c)
                offs.append(off_c)
            lens = array("q", (column.size for column in columns))
            lib.lib.repro_merge_lcp(
                ffi.new("const int64_t *[]", flats),
                ffi.new("const int64_t *[]", offs),
                lib.i64(lens),
                len(columns),
                ffi.from_buffer("int32_t[]", lanes),
                ffi.from_buffer("int64_t[]", lcps),
            )
        return lanes, lcps

    entries = []
    for lane, column in enumerate(columns):
        entries.extend((key, lane) for key in column.keys)
    # Sorting (key, lane) pairs both merges the runs and breaks key
    # ties toward the lowest lane in one go.
    entries.sort()
    lanes = [0] * total
    lcps = [0] * total
    previous = None
    for i, (key, lane) in enumerate(entries):
        lanes[i] = lane
        if previous is not None:
            lcps[i] = _lcp(previous, key)
        previous = key
    return lanes, lcps


def merged_lcp_runs(columns):
    """``(lanes, lcps, ends)`` — the LCP table plus sibling-leaf runs.

    ``lanes`` / ``lcps`` are exactly :func:`merged_lcp`'s columns;
    ``ends[i]`` is the index of the **last** posting of the maximal
    sibling-leaf run containing posting ``i`` (``ends[i] == i`` for a
    run of one).  Posting ``i`` chains with ``i - 1`` when both come
    from the same lane, their labels have equal length, and
    ``lcps[i]`` equals that length minus one — i.e. consecutive
    siblings under one parent, uninterrupted by any other lane.
    """
    total = sum(column.size for column in columns)
    lib = backend.compiled
    if lib is not None and 0 < len(columns) <= backend.MAX_MERGE_LANES:
        from array import array

        lanes = array("i", bytes(4 * total))
        lcps = array("q", bytes(8 * total))
        ends = array("q", bytes(8 * total))
        if total:
            ffi = lib.ffi
            flats = []
            offs = []
            keepalive = []
            for column in columns:
                flat, off = column.flat_offs()
                flat_c = lib.i64(flat)
                off_c = lib.i64(off)
                keepalive.append((flat_c, off_c))
                flats.append(flat_c)
                offs.append(off_c)
            lens = array("q", (column.size for column in columns))
            lib.lib.repro_merge_lcp_runs(
                ffi.new("const int64_t *[]", flats),
                ffi.new("const int64_t *[]", offs),
                lib.i64(lens),
                len(columns),
                ffi.from_buffer("int32_t[]", lanes),
                ffi.from_buffer("int64_t[]", lcps),
                ffi.from_buffer("int64_t[]", ends),
            )
        return lanes, lcps, ends

    entries = []
    for lane, column in enumerate(columns):
        entries.extend((key, lane) for key in column.keys)
    entries.sort()
    lanes = [0] * total
    lcps = [0] * total
    ends = [0] * total
    previous = None
    for i, (key, lane) in enumerate(entries):
        lanes[i] = lane
        if previous is not None:
            lcps[i] = _lcp(previous, key)
        previous = key
    for i in range(total - 1, -1, -1):
        if i + 1 < total:
            key_next, lane_next = entries[i + 1]
            key_here = entries[i][0]
            if (
                lane_next == lanes[i]
                and len(key_next) == len(key_here)
                and lcps[i + 1] == len(key_next) - 1
            ):
                ends[i] = ends[i + 1]
                continue
        ends[i] = i
    return lanes, lcps, ends
