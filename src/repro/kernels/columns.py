"""Columnar views of packed posting lists (the kernels' data layout).

A :class:`ListColumns` wraps one inverted list's document-ordered
Dewey key column (the component tuples PR 1's packed arrays already
share) with the two derived structures every batch kernel needs:

* a **partition table** — ``pids[i]`` with half-open posting ranges
  ``[starts[i], ends[i])``, built with partition-to-partition binary
  search jumps (O(partitions · log n), never a per-posting pass).
  This is the per-block metadata of the block-max skip: which blocks
  (partitions) contain the keyword at all, and where their postings
  live, without touching a single posting.
* **flat int64 arrays** — all components concatenated plus an offset
  table — the zero-copy operands of the compiled galloping kernel.
  Built lazily, only when the compiled backend is active.

Columns are cached on the :class:`~repro.index.inverted.InvertedList`
itself (``_kernel_columns``); the index's decode cache keeps one list
object per keyword and replaces it on any mutation, so object identity
gives exact freshness for free, the same rule ``perf.packed`` uses.

:func:`partition_view` merges several columns' partition tables into
the ordered presence view Algorithm 2 iterates: each distinct
partition id, in document order, with every lane's posting range (or
``None``) — byte-for-byte the partitions and sublists the former
per-posting cursor merge produced, at per-partition instead of
per-posting cost.
"""

from __future__ import annotations

from bisect import bisect_left


class ListColumns:
    """Partition table + flat component arrays for one key column."""

    __slots__ = ("keys", "size", "pids", "starts", "ends", "pid_range",
                 "root_count", "_flat", "_offs", "_pid_cols", "_c")

    #: Eager columns always have their partition tables materialized;
    #: the batch presence kernel keys off this to avoid forcing a
    #: blocked column's lazy decode.
    tables_ready = True

    def __init__(self, keys):
        #: Document-ordered component tuples (shared, read-only).
        self.keys = keys
        self.size = len(keys)
        pids = []
        starts = []
        ends = []
        root_count = 0
        position = 0
        size = self.size
        while position < size:
            key = keys[position]
            if len(key) < 2:
                # A root posting belongs to no partition (Def. 6.1).
                root_count += 1
                position += 1
                continue
            pid = key[:2]
            end = bisect_left(keys, (pid[0], pid[1] + 1), position)
            pids.append(pid)
            starts.append(position)
            ends.append(end)
            position = end
        self.pids = pids
        self.starts = starts
        self.ends = ends
        #: pid -> (lo, hi); the O(1) random-access probe (SLE).
        self.pid_range = {
            pid: (starts[i], ends[i]) for i, pid in enumerate(pids)
        }
        self.root_count = root_count
        self._flat = None
        self._offs = None
        self._pid_cols = None
        self._c = None

    def pid_cols(self):
        """``(pid_flat, lo, hi)`` int64 arrays of the partition table.

        ``pid_flat`` holds the two components of every pid back to
        back; the batch presence kernel merge-joins these against
        another column's.  Built on first use, cached for the column's
        lifetime (the tables are immutable once constructed).
        """
        cols = self._pid_cols
        if cols is None:
            from array import array

            pid_flat = array("q")
            for pid in self.pids:
                pid_flat.extend(pid)
            cols = (pid_flat, array("q", self.starts),
                    array("q", self.ends))
            self._pid_cols = cols
        return cols

    def flat_offs(self):
        """``(flat, offs)`` int64 arrays for the compiled kernels.

        ``flat`` concatenates every key's components; ``offs[i]`` is
        key ``i``'s start within it (``size + 1`` entries).  Built on
        first use and cached for the column's lifetime.
        """
        flat = self._flat
        if flat is None:
            from array import array

            flat = array("q")
            offs = array("q", bytes(8 * (self.size + 1)))
            position = 0
            for i, key in enumerate(self.keys):
                flat.extend(key)
                position += len(key)
                offs[i + 1] = position
            self._flat = flat
            self._offs = offs
        return flat, self._offs

    def may_contain(self, pid):
        """Exact membership — the eager table *is* the ground truth."""
        return pid in self.pid_range

    def __len__(self):
        return self.size

    def __repr__(self):
        return f"ListColumns(n={self.size}, partitions={len(self.pids)})"


class _LazyPidRanges:
    """``pid -> (lo, hi)`` probes that decode at most two blocks.

    The blocked twin of ``ListColumns.pid_range``: a probe first asks
    the block headers whether the partition's key interval intersects
    any block at all (:meth:`BlockedListColumns.may_contain` — zero
    decodes); only a may-hit falls through to the two header-guided
    binary searches that pin the exact range.  Results (including
    definite misses) are memoized, so SLE's repeated probes of the
    same partition stay dict hits.
    """

    __slots__ = ("_columns", "_memo")

    def __init__(self, columns):
        self._columns = columns
        self._memo = {}

    def get(self, pid, default=None):
        memo = self._memo
        if pid in memo:
            span = memo[pid]
        else:
            columns = self._columns
            span = None
            if columns.may_contain(pid):
                keys = columns.keys
                lo = keys.bisect_left(pid)
                hi = keys.bisect_left((pid[0], pid[1] + 1), lo)
                if lo < hi:
                    span = (lo, hi)
            memo[pid] = span
        return span if span is not None else default

    def __contains__(self, pid):
        return self.get(pid) is not None


class BlockedListColumns:
    """Columns over a :class:`~repro.index.blocks.BlockedInvertedList`.

    Duck-compatible with :class:`ListColumns`, but nothing decodes at
    construction: partition probes (``pid_range.get`` /
    ``may_contain``) answer from the block headers first, and the full
    partition table / flat arrays materialize only when a whole-list
    consumer (the partition kernel, the compiled SLCA backend) asks
    for them.
    """

    __slots__ = ("keys", "size", "pid_range", "_firsts", "_lasts",
                 "_pids", "_starts", "_ends", "_root_count",
                 "_flat", "_offs", "_pid_cols", "_c")

    def __init__(self, blocked_list):
        self.keys = blocked_list.dewey_keys
        self.size = len(self.keys)
        self._firsts, self._lasts = blocked_list.block_intervals()
        self.pid_range = _LazyPidRanges(self)
        self._pids = None
        self._starts = None
        self._ends = None
        self._root_count = 0
        self._flat = None
        self._offs = None
        self._pid_cols = None
        self._c = None

    @property
    def tables_ready(self):
        """True only once the lazy partition table has materialized.

        The batch presence path must never be the thing that forces a
        blocked column resident — paging's sub-linear RSS depends on
        header-first probes — so it only engages when a whole-list
        consumer already paid for the table.
        """
        return self._pids is not None

    def pid_cols(self):
        """Same contract as :meth:`ListColumns.pid_cols` (full decode)."""
        cols = self._pid_cols
        if cols is None:
            from array import array

            pid_flat = array("q")
            for pid in self.pids:
                pid_flat.extend(pid)
            cols = (pid_flat, array("q", self.starts),
                    array("q", self.ends))
            self._pid_cols = cols
        return cols

    def may_contain(self, pid):
        """Header-only presence test — a superset of the truth.

        ``False`` is definite (no block's key interval intersects the
        partition); ``True`` only means a probe must look inside.
        """
        lasts = self._lasts
        block = bisect_left(lasts, pid)
        if block == len(lasts):
            return False
        return self._firsts[block] < (pid[0], pid[1] + 1)

    def _ensure_tables(self):
        if self._pids is not None:
            return
        keys = self.keys
        size = self.size
        pids = []
        starts = []
        ends = []
        root_count = 0
        position = 0
        while position < size:
            key = keys[position]
            if len(key) < 2:
                root_count += 1
                position += 1
                continue
            pid = key[:2]
            end = keys.bisect_left((pid[0], pid[1] + 1), position)
            pids.append(pid)
            starts.append(position)
            ends.append(end)
            position = end
        self._pids = pids
        self._starts = starts
        self._ends = ends
        self._root_count = root_count

    @property
    def pids(self):
        self._ensure_tables()
        return self._pids

    @property
    def starts(self):
        self._ensure_tables()
        return self._starts

    @property
    def ends(self):
        self._ensure_tables()
        return self._ends

    @property
    def root_count(self):
        self._ensure_tables()
        return self._root_count

    def flat_offs(self):
        """Same contract as :meth:`ListColumns.flat_offs` (full decode)."""
        flat = self._flat
        if flat is None:
            from array import array

            flat = array("q")
            offs = array("q", bytes(8 * (self.size + 1)))
            position = 0
            for i, key in enumerate(self.keys):
                flat.extend(key)
                position += len(key)
                offs[i + 1] = position
            self._flat = flat
            self._offs = offs
        return flat, self._offs

    def __len__(self):
        return self.size

    def __repr__(self):
        return (
            f"BlockedListColumns(n={self.size}, "
            f"blocks={len(self._lasts)})"
        )


def columns_for(inverted_list):
    """The cached columns of one inverted list.

    Blocked lists (frozen v3 long lists) get the header-first
    :class:`BlockedListColumns`; everything else the eager
    :class:`ListColumns`.
    """
    columns = inverted_list._kernel_columns
    if columns is None:
        if hasattr(inverted_list, "block_intervals"):
            columns = BlockedListColumns(inverted_list)
        else:
            columns = ListColumns(inverted_list.dewey_keys)
        inverted_list._kernel_columns = columns
    return columns


def columns_of_labels(labels):
    """Columns for a label sequence, or ``None`` if it carries none.

    :class:`~repro.perf.packed.PackedPostings` exposes its source
    inverted list; anything else (a plain ``Dewey`` list, a partition
    slice) has no precomputed columns and stays on the classic path.
    """
    source = getattr(labels, "source", None)
    if source is None or getattr(source, "_kernel_columns", False) is False:
        return None
    return columns_for(source)


def partition_view(columns):
    """Merged partition presence over several columns.

    Returns ``[(pid, ranges), ...]`` in document order, where
    ``ranges[lane]`` is the ``(lo, hi)`` posting range of ``pid`` in
    ``columns[lane]`` or ``None`` when the lane has no posting there —
    exactly the partitions a merged cursor scan would visit and the
    sublists it would slice, at per-partition-entry cost.
    """
    return [
        (pid, spans) for pid, spans, _mask, _n in
        partition_view_masked(columns)
    ]


def partition_view_masked(columns):
    """:func:`partition_view` plus per-partition presence summaries.

    Returns ``[(pid, ranges, mask, postings), ...]`` where ``mask``
    sets bit ``lane`` when ``ranges[lane]`` is present and ``postings``
    is the total posting count across lanes — the two aggregates the
    partition kernel previously recomputed per partition in Python,
    now built during the same merge pass at no extra cost.
    """
    lanes = len(columns)
    table = {}
    for lane, column in enumerate(columns):
        starts = column.starts
        ends = column.ends
        bit = 1 << lane
        for i, pid in enumerate(column.pids):
            entry = table.get(pid)
            if entry is None:
                entry = table[pid] = [[None] * lanes, 0, 0]
            lo = starts[i]
            hi = ends[i]
            entry[0][lane] = (lo, hi)
            entry[1] |= bit
            entry[2] += hi - lo
    return [
        (pid, spans, mask, postings)
        for pid, (spans, mask, postings) in sorted(table.items())
    ]
