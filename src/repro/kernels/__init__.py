"""Batch scan kernels over the packed posting columns.

The refinement algorithms' inner loops — merged cursor scans, per-node
LCA arithmetic, per-partition slicing — are replaced here by batch
operations over columnar views of the inverted lists:

* :mod:`.columns` — per-list partition tables and flat component
  arrays; the merged :func:`partition_view` Algorithm 2 iterates.
* :mod:`.slca` — columnar Scan Eager: candidate depths for a whole
  anchor range per matcher sweep.
* :mod:`.lcp` — the merged-stream adjacent-LCP table that makes the
  stack route's LCA depth an indexed lookup.
* :mod:`.bounds` — presence bounds memoized by block bitmask (the
  WAND-style skip pre-check).
* :mod:`.backend` — compiled (cffi + cc) fast path selection with a
  pure-Python fallback; ``REPRO_NO_COMPILED_KERNELS=1`` forces the
  fallback.

Every kernel is byte-identical to the loop it replaced; the
``kernel:*`` comparisons of ``verify-diff`` hold both paths to that.
"""

from .backend import backend_name, compiled  # noqa: F401
from .bounds import PresenceBoundCache  # noqa: F401
from .columns import (  # noqa: F401
    BlockedListColumns,
    ListColumns,
    columns_for,
    columns_of_labels,
    partition_view,
)
from .lcp import merged_lcp  # noqa: F401
from .slca import slca_columns, slca_ranges  # noqa: F401

__all__ = [
    "BlockedListColumns",
    "ListColumns",
    "PresenceBoundCache",
    "backend_name",
    "columns_for",
    "columns_of_labels",
    "compiled",
    "merged_lcp",
    "partition_view",
    "slca_columns",
    "slca_ranges",
]
