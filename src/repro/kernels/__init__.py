"""Batch scan kernels over the packed posting columns.

The refinement algorithms' inner loops — merged cursor scans, per-node
LCA arithmetic, per-partition slicing — are replaced here by batch
operations over columnar views of the inverted lists:

* :mod:`.columns` — per-list partition tables and flat component
  arrays; the merged :func:`partition_view` Algorithm 2 iterates.
* :mod:`.slca` — columnar Scan Eager: candidate depths for a whole
  anchor range per matcher sweep.
* :mod:`.lcp` — the merged-stream adjacent-LCP table that makes the
  stack route's LCA depth an indexed lookup, plus the sibling-leaf
  run encoding the stack route retires whole chains with.
* :mod:`.scoring` — batch candidate scoring: partition presence as a
  merge-join over flat tables, Top-2K admission as one threshold
  sweep, Formula 2-9 ranking over memoized lookup columns.
* :mod:`.bounds` — presence bounds memoized by block bitmask (the
  WAND-style skip pre-check).
* :mod:`.backend` — compiled (cffi + cc) fast path selection with a
  pure-Python fallback; ``REPRO_NO_COMPILED_KERNELS=1`` forces the
  fallback.

Every kernel is byte-identical to the loop it replaced; the
``kernel:*`` comparisons of ``verify-diff`` hold both paths to that.
"""

from .backend import backend_name, compiled  # noqa: F401
from .bounds import PresenceBoundCache  # noqa: F401
from .columns import (  # noqa: F401
    BlockedListColumns,
    ListColumns,
    columns_for,
    columns_of_labels,
    partition_view,
    partition_view_masked,
)
from .lcp import merged_lcp, merged_lcp_runs  # noqa: F401
from .scoring import (  # noqa: F401
    PreparedBeam,
    ScoreTable,
    admission_sweep,
    batch_dependence,
    batch_similarity,
    partition_presence,
    prepare_beam,
    presence_ready,
    score_table,
    supported_model,
)
from .slca import slca_columns, slca_ranges  # noqa: F401

__all__ = [
    "BlockedListColumns",
    "ListColumns",
    "PreparedBeam",
    "PresenceBoundCache",
    "ScoreTable",
    "admission_sweep",
    "backend_name",
    "batch_dependence",
    "batch_similarity",
    "columns_for",
    "columns_of_labels",
    "compiled",
    "merged_lcp",
    "merged_lcp_runs",
    "partition_presence",
    "partition_view",
    "partition_view_masked",
    "prepare_beam",
    "presence_ready",
    "score_table",
    "slca_columns",
    "slca_ranges",
    "supported_model",
]
