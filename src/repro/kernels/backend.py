"""Compiled fast-path selection for the scan kernels.

The batch kernels in this package have two interchangeable
implementations: a pure-Python one (always present, the semantic
reference) and a small C library compiled on first use and loaded
through cffi's ABI mode.  Selection happens once at import time:

1. ``REPRO_NO_COMPILED_KERNELS=1`` in the environment forces the
   pure-Python path (the CI job that keeps the fallback load-bearing
   sets it).
2. Otherwise the C source below is compiled with the system C compiler
   into a per-source-hash cache directory under the platform temp dir
   (one ~50 ms compile per machine, reused afterwards) and loaded via
   ``ffi.dlopen``.  ABI mode needs no Python headers — only ``cc``.
3. Any failure — no cffi, no compiler, sandboxed temp dir, dlopen
   error — silently degrades to pure Python.  The compiled path is a
   speedup, never a dependency.

The library works exclusively on flat ``int64`` component arrays plus
offset tables (see :mod:`.columns`), the columnar layout shared by all
kernels, so the only per-call marshalling is a handful of pointer
casts through ``ffi.from_buffer``.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile

#: Environment flag forcing the pure-Python fallback.
NO_COMPILED_ENV = "REPRO_NO_COMPILED_KERNELS"

#: Lanes the compiled merge kernel accepts (stack allocation bound);
#: wider merges fall back to pure Python.
MAX_MERGE_LANES = 64

_CDEF = """
void repro_slca_fold(const int64_t *a_flat, const int64_t *a_offs,
                     int64_t a_lo, int64_t a_hi,
                     const int64_t *m_flat, const int64_t *m_offs,
                     int64_t m_lo, int64_t m_hi,
                     int64_t *depths);
void repro_slca_all(const int64_t *a_flat, const int64_t *a_offs,
                    int64_t a_lo, int64_t a_hi,
                    const int64_t **m_flats, const int64_t **m_offs,
                    const int64_t *m_los, const int64_t *m_his,
                    int64_t nmatchers, int64_t *depths);
void repro_merge_lcp(const int64_t **flats, const int64_t **offs,
                     const int64_t *lens, int64_t nlists,
                     int32_t *lanes, int64_t *lcps);
void repro_merge_lcp_runs(const int64_t **flats, const int64_t **offs,
                          const int64_t *lens, int64_t nlists,
                          int32_t *lanes, int64_t *lcps, int64_t *ends);
void repro_partition_presence(const int64_t *a_pids, int64_t a_count,
                              const int64_t **pid_arrs,
                              const int64_t **lo_arrs,
                              const int64_t **hi_arrs,
                              const int64_t *counts, int64_t nlanes,
                              int64_t *masks, int64_t *spans);
"""

_C_SOURCE = r"""
#include <stdint.h>

/* Lexicographic compare of two variable-length int64 Dewey keys. */
static int key_cmp(const int64_t *a, int64_t alen,
                   const int64_t *b, int64_t blen)
{
    int64_t n = alen < blen ? alen : blen;
    int64_t i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i])
            return a[i] < b[i] ? -1 : 1;
    }
    if (alen == blen)
        return 0;
    return alen < blen ? -1 : 1;
}

/* Longest common prefix of two keys (the LCA depth of two labels). */
static int64_t key_lcp(const int64_t *a, int64_t alen,
                       const int64_t *b, int64_t blen)
{
    int64_t n = alen < blen ? alen : blen;
    int64_t i = 0;
    while (i < n && a[i] == b[i])
        i++;
    return i;
}

/* First index in [lo, hi) whose key compares > target: a galloping
 * scan — exponential probing from lo, then a binary search inside the
 * final bracket.  Forward-only; lo must satisfy "every index < lo
 * holds a key <= target", which successive non-decreasing targets
 * preserve. */
static int64_t gallop_upper(const int64_t *flat, const int64_t *offs,
                            int64_t lo, int64_t hi,
                            const int64_t *key, int64_t klen)
{
    int64_t step, l, h;
    if (lo >= hi ||
        key_cmp(flat + offs[lo], offs[lo + 1] - offs[lo], key, klen) > 0)
        return lo;
    step = 1;
    while (lo + step < hi &&
           key_cmp(flat + offs[lo + step],
                   offs[lo + step + 1] - offs[lo + step], key, klen) <= 0) {
        lo += step;
        step <<= 1;
    }
    l = lo + 1;
    h = lo + step < hi ? lo + step : hi;
    while (l < h) {
        int64_t mid = (l + h) >> 1;
        if (key_cmp(flat + offs[mid], offs[mid + 1] - offs[mid],
                    key, klen) <= 0)
            l = mid + 1;
        else
            h = mid;
    }
    return l;
}

/* Batch closest-match fold: for every anchor key in [a_lo, a_hi),
 * find the deepest LCP against the matcher range [m_lo, m_hi) — the
 * max over the anchor's floor and ceiling elements, exactly XKSearch
 * Scan Eager's closest-match choice — and fold it into depths[] with
 * a min.  depths is indexed relative to a_lo. */
void repro_slca_fold(const int64_t *a_flat, const int64_t *a_offs,
                     int64_t a_lo, int64_t a_hi,
                     const int64_t *m_flat, const int64_t *m_offs,
                     int64_t m_lo, int64_t m_hi,
                     int64_t *depths)
{
    int64_t pos = m_lo;
    int64_t i;
    for (i = a_lo; i < a_hi; i++) {
        const int64_t *key = a_flat + a_offs[i];
        int64_t klen = a_offs[i + 1] - a_offs[i];
        int64_t depth = 0;
        pos = gallop_upper(m_flat, m_offs, pos, m_hi, key, klen);
        if (pos > m_lo) {
            int64_t d = key_lcp(m_flat + m_offs[pos - 1],
                                m_offs[pos] - m_offs[pos - 1], key, klen);
            if (d > depth)
                depth = d;
        }
        if (pos < m_hi) {
            int64_t d = key_lcp(m_flat + m_offs[pos],
                                m_offs[pos + 1] - m_offs[pos], key, klen);
            if (d > depth)
                depth = d;
        }
        if (depth < depths[i - a_lo])
            depths[i - a_lo] = depth;
    }
}

/* One-call batch SLCA: initialize every anchor's candidate depth to
 * its own length, then fold every matcher range with repro_slca_fold's
 * loop — a single entry point, so the per-matcher FFI crossings and
 * the Python-side depth initialization disappear from the hot path. */
void repro_slca_all(const int64_t *a_flat, const int64_t *a_offs,
                    int64_t a_lo, int64_t a_hi,
                    const int64_t **m_flats, const int64_t **m_offs,
                    const int64_t *m_los, const int64_t *m_his,
                    int64_t nmatchers, int64_t *depths)
{
    int64_t i, m;
    for (i = a_lo; i < a_hi; i++)
        depths[i - a_lo] = a_offs[i + 1] - a_offs[i];
    for (m = 0; m < nmatchers; m++)
        repro_slca_fold(a_flat, a_offs, a_lo, a_hi,
                        m_flats[m], m_offs[m], m_los[m], m_his[m],
                        depths);
}

/* Merged document-order scan over nlists sorted key columns.  Emits,
 * per merged posting, the source lane and the LCP against the
 * previous merged key (0 for the first) — the precomputed table the
 * stack route replaces its per-posting prefix comparisons with.
 * Ties break toward the lowest lane, matching the strict-< merge of
 * the cursor loop it replaces.  nlists must be <= 64 (caller guards).
 */
void repro_merge_lcp(const int64_t **flats, const int64_t **offs,
                     const int64_t *lens, int64_t nlists,
                     int32_t *lanes, int64_t *lcps)
{
    int64_t pos[64];
    const int64_t *prev_key = 0;
    int64_t prev_len = 0;
    int64_t out = 0;
    int64_t l;
    for (l = 0; l < nlists; l++)
        pos[l] = 0;
    for (;;) {
        int64_t best = -1;
        const int64_t *best_key = 0;
        int64_t best_len = 0;
        for (l = 0; l < nlists; l++) {
            const int64_t *key;
            int64_t klen;
            if (pos[l] >= lens[l])
                continue;
            key = flats[l] + offs[l][pos[l]];
            klen = offs[l][pos[l] + 1] - offs[l][pos[l]];
            if (best < 0 || key_cmp(key, klen, best_key, best_len) < 0) {
                best = l;
                best_key = key;
                best_len = klen;
            }
        }
        if (best < 0)
            break;
        pos[best]++;
        lanes[out] = (int32_t)best;
        lcps[out] = prev_key
            ? key_lcp(prev_key, prev_len, best_key, best_len)
            : 0;
        prev_key = best_key;
        prev_len = best_len;
        out++;
    }
}

/* repro_merge_lcp plus a sibling-leaf run table: ends[i] is the last
 * index of the maximal chain starting at i in which every entry comes
 * from the same lane as its predecessor, has the same key length, and
 * shares all but the final component (lcp == len - 1).  Such chains
 * are runs of sibling leaves in the merged stream: the stack route's
 * pop for each is a single-frame pop whose effect is statically known,
 * so the consumer can retire a whole run in O(1) instead of per frame.
 */
void repro_merge_lcp_runs(const int64_t **flats, const int64_t **offs,
                          const int64_t *lens, int64_t nlists,
                          int32_t *lanes, int64_t *lcps, int64_t *ends)
{
    int64_t pos[64];
    const int64_t *prev_key = 0;
    int64_t prev_len = 0;
    int64_t prev_lane = -1;
    int64_t out = 0;
    int64_t l, i, next_flag;
    for (l = 0; l < nlists; l++)
        pos[l] = 0;
    for (;;) {
        int64_t best = -1;
        const int64_t *best_key = 0;
        int64_t best_len = 0;
        int64_t lcp;
        for (l = 0; l < nlists; l++) {
            const int64_t *key;
            int64_t klen;
            if (pos[l] >= lens[l])
                continue;
            key = flats[l] + offs[l][pos[l]];
            klen = offs[l][pos[l] + 1] - offs[l][pos[l]];
            if (best < 0 || key_cmp(key, klen, best_key, best_len) < 0) {
                best = l;
                best_key = key;
                best_len = klen;
            }
        }
        if (best < 0)
            break;
        pos[best]++;
        lcp = prev_key ? key_lcp(prev_key, prev_len, best_key, best_len) : 0;
        lanes[out] = (int32_t)best;
        lcps[out] = lcp;
        /* Stash the chain flag; the backward pass rewrites it below. */
        ends[out] = (prev_lane == best && prev_len == best_len
                     && lcp == best_len - 1) ? 1 : 0;
        prev_key = best_key;
        prev_len = best_len;
        prev_lane = best;
        out++;
    }
    next_flag = 0;
    for (i = out - 1; i >= 0; i--) {
        int64_t flag = ends[i];
        ends[i] = (i + 1 < out && next_flag) ? ends[i + 1] : i;
        next_flag = flag;
    }
}

/* Batch partition presence: merge-join every lane's sorted partition
 * table ((p0, p1) pid pairs with [lo, hi) posting spans) against the
 * anchor lane's pid pairs.  For anchor partition index i, masks[i]
 * collects one presence bit per matching lane and
 * spans[(i * nlanes + lane) * 2 .. +1] its posting range (-1, -1 when
 * the lane has no postings there) — the whole random-access probe
 * phase of the short-list route in one pass over flat arrays. */
void repro_partition_presence(const int64_t *a_pids, int64_t a_count,
                              const int64_t **pid_arrs,
                              const int64_t **lo_arrs,
                              const int64_t **hi_arrs,
                              const int64_t *counts, int64_t nlanes,
                              int64_t *masks, int64_t *spans)
{
    int64_t i, lane;
    for (i = 0; i < a_count; i++) {
        masks[i] = 0;
        for (lane = 0; lane < nlanes; lane++) {
            spans[(i * nlanes + lane) * 2] = -1;
            spans[(i * nlanes + lane) * 2 + 1] = -1;
        }
    }
    for (lane = 0; lane < nlanes; lane++) {
        const int64_t *pids = pid_arrs[lane];
        const int64_t *los = lo_arrs[lane];
        const int64_t *his = hi_arrs[lane];
        int64_t count = counts[lane];
        int64_t ai = 0, li = 0;
        while (ai < a_count && li < count) {
            int64_t a0 = a_pids[ai * 2], a1 = a_pids[ai * 2 + 1];
            int64_t l0 = pids[li * 2], l1 = pids[li * 2 + 1];
            if (a0 < l0 || (a0 == l0 && a1 < l1)) {
                ai++;
            } else if (l0 < a0 || (l0 == a0 && l1 < a1)) {
                li++;
            } else {
                masks[ai] |= (int64_t)1 << lane;
                spans[(ai * nlanes + lane) * 2] = los[li];
                spans[(ai * nlanes + lane) * 2 + 1] = his[li];
                ai++;
                li++;
            }
        }
    }
}
"""


def _build_library():
    """Compile and dlopen the C kernels; None on any failure."""
    if os.environ.get(NO_COMPILED_ENV, "").strip() not in ("", "0"):
        return None
    try:
        from cffi import FFI
    except Exception:
        return None
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro-kernels-{digest}"
    )
    library = os.path.join(cache_dir, "libreprokernels.so")
    try:
        if not os.path.exists(library):
            os.makedirs(cache_dir, exist_ok=True)
            source = os.path.join(cache_dir, "kernels.c")
            with open(source, "w", encoding="utf-8") as handle:
                handle.write(_C_SOURCE)
            compiler = os.environ.get("CC", "cc")
            scratch = library + f".tmp{os.getpid()}"
            subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", source,
                 "-o", scratch],
                check=True,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                timeout=120,
            )
            os.replace(scratch, library)  # atomic vs concurrent builders
        ffi = FFI()
        ffi.cdef(_CDEF)
        return _CompiledKernels(ffi, ffi.dlopen(library))
    except Exception:
        return None


class _CompiledKernels:
    """Thin handle pairing the dlopened library with its FFI."""

    __slots__ = ("ffi", "lib")

    def __init__(self, ffi, lib):
        self.ffi = ffi
        self.lib = lib

    def i64(self, buffer):
        """Borrow a Python buffer as ``const int64_t *`` (zero copy)."""
        return self.ffi.from_buffer("int64_t[]", buffer)


def column_handles(lib, column):
    """Cached ``(flat, offs)`` C pointers for a column's key arrays.

    ``ffi.from_buffer`` casts are cheap but not free, and the hot path
    re-casts the same immutable arrays thousands of times per run; the
    cast pair is memoized on the column itself (``_c``), keyed by the
    backend handle so a monkeypatched backend never sees stale
    pointers.  The cdata objects pin the underlying buffers, which the
    column owns anyway.
    """
    cached = column._c
    if cached is not None and cached[0] is lib:
        return cached[1], cached[2]
    flat, offs = column.flat_offs()
    handles = (lib, lib.i64(flat), lib.i64(offs))
    column._c = handles
    return handles[1], handles[2]


#: The active compiled backend, or None for pure Python.  Selected once
#: at import; tests may monkeypatch to force the fallback in-process.
compiled = _build_library()


def backend_name():
    """``"compiled-cc"`` or ``"pure-python"`` — for benches and CLI."""
    return "compiled-cc" if compiled is not None else "pure-python"
