"""Block-max presence bounds — the WAND-style skip, memoized by mask.

The partition tables in :mod:`.columns` say which blocks (partitions)
contain which keywords without touching a posting.  For a candidate
block, the cheapest dissimilarity any refined query derivable there
could reach is lower-bounded by
:class:`~repro.core.dp.MissingKeywordBound` — a pure function of the
block's *presence set*.  Documents have far fewer distinct presence
sets than partitions, so tabulating the bound per presence **bitmask**
(one bit per keyword-space lane) turns the per-block pre-check into a
dict hit: the block-max upper-bound test of WAND, with dissimilarity
playing the (inverted) score role.

Both comparisons downstream stay strict (``bound > threshold``), so
skipping on a cached bound is answer-identical — the same argument
that justified the bound itself in PR 4.
"""

from __future__ import annotations

from ..core.dp import MissingKeywordBound


class PresenceBoundCache:
    """Per-query presence bounds, keyed by keyword-space bitmask."""

    __slots__ = ("lane_cost", "_memo")

    def __init__(self, query, rules, keyword_space):
        handle_costs = MissingKeywordBound(query, rules).handle_costs
        #: Cost of lane i's keyword being absent (None: not a query
        #: keyword — generated keywords never cost anything to miss).
        self.lane_cost = tuple(
            handle_costs.get(keyword) for keyword in keyword_space
        )
        self._memo = {}

    def lower_bound(self, mask):
        """Least ``dSim`` reachable in a block with presence ``mask``."""
        bound = self._memo.get(mask)
        if bound is None:
            bound = 0
            for lane, cost in enumerate(self.lane_cost):
                if cost is not None and cost > bound and not mask & (1 << lane):
                    bound = cost
            self._memo[mask] = bound
        return bound

    def header_bound(self, partition_id, lane_columns):
        """``(bound, may_mask)`` from block-max headers alone.

        ``may_mask`` sets lane ``i`` when lane ``i``'s column *may*
        contain ``partition_id`` — exact for eager columns, a block-
        header superset for blocked ones (so not a single posting
        block is decoded).  ``may_mask`` is a superset of the real
        presence mask, and :meth:`lower_bound` is antitone in the mask
        (more present keywords can only lower the cheapest reachable
        dissimilarity), hence ``bound <= lower_bound(real mask)``:
        pruning on ``bound > threshold`` is answer-identical to the
        post-probe presence-bound skip.
        """
        mask = 0
        for lane, columns in enumerate(lane_columns):
            if columns.may_contain(partition_id):
                mask |= 1 << lane
        return self.lower_bound(mask), mask
