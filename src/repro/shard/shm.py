"""Shared-memory publication of packed posting payloads.

The parent engine serializes every keyword's packed posting payload
(the exact bytes the KV store holds — delta-coded Deweys, interned
node-type ids, varint counts) into **one**
:mod:`multiprocessing.shared_memory` segment, once per index version.
Worker processes attach to the segment by name and decode keywords
lazily through :func:`repro.index.inverted.decode_posting_payload`, so
posting lists cross the process boundary zero-copy: no pickling, no
per-request re-serialization.

Lifecycle rules:

* the **publisher** (parent) owns the segment: it alone may
  :meth:`~SharedPostingBlob.unlink`, and it does so explicitly on
  engine close / pool rebuild, with a :mod:`weakref` finalizer as the
  backstop so a dropped engine never leaks ``/dev/shm`` entries;
* **attachers** (workers) open the segment read-only by name and are
  immediately unregistered from the ``resource_tracker`` — otherwise
  the tracker would tear the segment down while the parent still
  serves from it (CPython gained ``track=False`` only in 3.13; older
  interpreters need the manual unregister);
* every blob is stamped with the publishing index ``version``; the
  pool compares stamps and re-publishes after ``append_partition`` /
  ``remove_partition``, exactly like the result cache invalidates.

Segment names all start with :data:`SEGMENT_PREFIX`, which the test
suite uses to assert that a full run leaves nothing behind in
``/dev/shm``.
"""

from __future__ import annotations

import os
import secrets
import signal as _signal
import weakref
from multiprocessing import shared_memory

from ..index.inverted import decode_posting_payload

#: Prefix of every segment this module creates (leak checks key on it).
SEGMENT_PREFIX = "xrefshard_"

#: Every live publisher-owned blob in this process.  Weak so the set
#: never extends a blob's lifetime; the signal-cleanup handler walks it
#: to unlink segments before the process dies.
_OWNED_BLOBS = weakref.WeakSet()


def _fresh_name():
    return f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(4)}"


def _attach_untracked(name):
    """Open an existing segment without claiming tracker ownership.

    Python 3.13+ exposes ``track=False`` for exactly this.  On older
    interpreters attaching re-registers the name, but our workers are
    **forked**, so they share the parent's resource-tracker process and
    the re-registration is an idempotent set-add: the parent's
    ``unlink()`` unregisters it exactly once, and if the whole process
    tree dies without unlinking, the shared tracker reaps the segment —
    the crash-safety net the lifecycle tests rely on.  Unregistering
    manually here would strip the parent's registration instead.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _release(segment, owner):
    """Close (and for the owner, unlink) a segment; idempotent."""
    try:
        segment.close()
    except (OSError, ValueError):
        pass
    if owner:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


class SharedPostingBlob:
    """One index's posting payloads in a single shared-memory segment.

    Attributes
    ----------
    name:
        Segment name; workers attach with it.
    layout:
        ``{keyword: (offset, length)}`` into the segment.
    type_table:
        Snapshot of the interned node-type table at publish time.
    version:
        Index version the payloads were taken from.
    """

    def __init__(self, segment, layout, type_table, version, owner):
        self._segment = segment
        self._owner = owner
        self._closed = False
        self.name = segment.name
        self.layout = layout
        self.type_table = type_table
        self.version = version
        self._lists = {}
        self._finalizer = weakref.finalize(self, _release, segment, owner)
        if owner:
            _OWNED_BLOBS.add(self)

    # ------------------------------------------------------------------
    # Publish / attach
    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, inverted, version):
        """Write every keyword's raw payload into a fresh segment.

        A pristine frozen index exposes all payloads as one contiguous
        mapped region (:meth:`InvertedIndex.posting_region`); publishing
        then degenerates to a single buffer copy from the mapped file
        into the segment.  Otherwise the payloads are gathered key by
        key from the store.
        """
        region = inverted.posting_region()
        if region is not None:
            buffer, layout = region
            segment = shared_memory.SharedMemory(
                create=True, size=max(len(buffer), 1), name=_fresh_name()
            )
            segment.buf[: len(buffer)] = buffer
            return cls(
                segment, layout, tuple(inverted.node_type_table), version,
                owner=True,
            )
        layout = {}
        chunks = []
        offset = 0
        for keyword in inverted.keywords():
            raw = inverted.raw_payload(keyword)
            if raw is None:
                continue
            layout[keyword] = (offset, len(raw))
            chunks.append(raw)
            offset += len(raw)
        segment = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=_fresh_name()
        )
        position = 0
        for raw in chunks:
            segment.buf[position : position + len(raw)] = raw
            position += len(raw)
        return cls(
            segment, layout, tuple(inverted.node_type_table), version,
            owner=True,
        )

    @classmethod
    def attach(cls, name, layout, type_table, version):
        """Worker-side read-only view of a published segment."""
        segment = _attach_untracked(name)
        return cls(segment, layout, type_table, version, owner=False)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def payload(self, keyword):
        """Raw payload bytes for ``keyword`` (None when not indexed)."""
        entry = self.layout.get(keyword)
        if entry is None:
            return None
        offset, length = entry
        return bytes(self._segment.buf[offset : offset + length])

    def decoded(self, keyword):
        """Decoded :class:`InvertedList`, cached per blob per keyword.

        Decodes straight from the shared segment's buffer — the
        payload bytes are never copied into the worker's heap.
        """
        cached = self._lists.get(keyword)
        if cached is None:
            entry = self.layout.get(keyword)
            if entry is None:
                raw = b"\x00"
            else:
                offset, length = entry
                raw = self._segment.buf[offset : offset + length]
            cached = decode_posting_payload(keyword, raw, self.type_table)
            self._lists[keyword] = cached
        return cached

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self):
        return self._closed

    def close(self):
        """Detach (and, for the publisher, unlink) the segment."""
        if self._closed:
            return
        self._closed = True
        self._lists.clear()
        self._finalizer.detach()
        _release(self._segment, self._owner)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        state = "closed" if self._closed else "open"
        role = "owner" if self._owner else "attached"
        return (
            f"SharedPostingBlob({self.name!r}, {len(self.layout)} keywords, "
            f"v{self.version}, {role}, {state})"
        )


def unlink_owned_segments():
    """Close (and unlink) every publisher-owned blob in this process.

    Idempotent and safe to call from a signal handler: closing an
    already-closed blob is a no-op, and the weak registry only ever
    holds blobs this process published.
    """
    for blob in list(_OWNED_BLOBS):
        blob.close()


#: Signals an install has already chained, mapped to the prior handler.
_INSTALLED_HANDLERS = {}


def install_signal_cleanup(signals=(_signal.SIGTERM, _signal.SIGINT)):
    """Unlink published segments before dying on SIGTERM/SIGINT.

    Python's default SIGTERM disposition kills the process without
    running ``weakref`` finalizers or ``atexit`` hooks, so a daemon
    holding a published posting blob would leave its ``/dev/shm``
    segment to the ``resource_tracker`` reaper (a delayed, warning-
    emitting cleanup path — and no cleanup at all if the tracker died
    with the process group).  This installs handlers that unlink every
    owned segment first and then defer to the previous disposition:
    a previously installed Python handler is chained, otherwise the
    default action is restored and the signal re-raised so the exit
    status still reports death-by-signal.

    Only callable from the main thread (a :mod:`signal` restriction);
    installing twice is a no-op per signal.  Long-lived servers that
    run an asyncio loop typically install their own graceful-shutdown
    handlers *on top of* (after) this one — this module-level hook is
    the backstop for the window before the loop exists and for
    non-async callers such as ``repro search --parallel``.
    """
    for signum in signals:
        if signum in _INSTALLED_HANDLERS:
            continue
        previous = _signal.getsignal(signum)

        def _handler(received, frame, _previous=previous):
            unlink_owned_segments()
            if callable(_previous):
                _previous(received, frame)
                return
            # SIG_DFL / SIG_IGN / None: restore and re-raise so the
            # process exits with the conventional 128+signum status.
            _signal.signal(received, _previous or _signal.SIG_DFL)
            os.kill(os.getpid(), received)

        _signal.signal(signum, _handler)
        _INSTALLED_HANDLERS[signum] = previous


def live_segments():
    """Names of this module's segments currently present in /dev/shm.

    Test-suite helper for the no-leak assertion; returns an empty list
    on platforms without a /dev/shm filesystem.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))
