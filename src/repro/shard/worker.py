"""Per-shard execution kernel for parallel Algorithm 2.

A worker owns a contiguous range of document partitions and replays
the partition loop of
:func:`repro.core.partition_refine.partition_refine` over exactly that
range, against posting lists decoded from the shared-memory blob
(:mod:`repro.shard.shm`).  Three deliberate differences from the
serial loop, none of which may change the merged answer:

* sublists are sliced by **binary search** on the packed component
  arrays instead of walking a cursor posting-by-posting — the partition
  fast-forward collapses to two bisects;
* the DP (`getTopOptimalRQs`) is **memoized per request by the present
  keyword set**: the DP is a pure function of
  ``(query, present, rules, limit)`` and query/rules/limit are fixed
  for the request, so partitions exposing the same keyword subset share
  one beam evaluation;
* admission runs against a **shard-local** Top-2K list, optionally
  tightened by the coordinator's broadcast bound.  A candidate the
  local list rejects is dominated by ``capacity`` locally better
  candidates that all reach the merge, so it could never survive the
  global content-ordered merge either (see DESIGN.md).

Every SLCA computation performed for a candidate is reported back as
``(key, partition) -> meaningful labels`` so the coordinator can
assemble each survivor's full result set (phase 2 backfills pairs no
shard computed).  Labels travel as raw component tuples; the
coordinator rebuilds :class:`~repro.xmltree.dewey.Dewey` via the
trusted constructor.
"""

from __future__ import annotations

import time
from bisect import bisect_left

from ..core.candidates import RQSortedList
from ..core.dp import MissingKeywordBound, get_top_optimal_rqs
from ..core.result import ScanStats
from ..slca.meaningful import is_meaningful
from ..slca.scan_eager import scan_eager_slca
from ..xmltree.dewey import Dewey


class Phase1Request:
    """Query-wide inputs shared by every shard of one request."""

    __slots__ = (
        "query",
        "keyword_space",
        "rules",
        "capacity",
        "search_for_types",
        "skip_optimization",
        "bound",
        "found_original",
    )

    def __init__(self, query, keyword_space, rules, capacity,
                 search_for_types, skip_optimization=True, bound=None,
                 found_original=False):
        self.query = tuple(query)
        self.keyword_space = tuple(keyword_space)
        self.rules = rules
        self.capacity = capacity
        self.search_for_types = list(search_for_types)
        self.skip_optimization = skip_optimization
        #: Cross-shard skip bound: worst kept dissimilarity of the
        #: merged Top-2K from completed rounds (None = not full yet).
        self.bound = bound
        #: True when an earlier round already answered the original
        #: query — candidate work is skipped, original results are not.
        self.found_original = found_original

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


class WorkerState:
    """Lazily decoded posting lists + document tree for one worker.

    ``get_payload`` maps a keyword to its raw packed payload (from the
    shared-memory blob in a worker process, straight from the KV store
    for the in-process executor); decoded component/label columns are
    cached per keyword for the lifetime of the state, i.e. one index
    version.

    ``shared_bound``, when set by the transport, is a process-shared
    double (``multiprocessing.Value('d', lock=False)``) carrying the
    tightest known global skip bound *within* a scatter round — shards
    scheduled later prune against bounds published by shards that
    already filled their Top-2K list, the way serial partitions benefit
    from every earlier partition's admissions.  It is purely advisory:
    a stale or lost update costs pruning, never correctness, because a
    published bound is always the worst dissimilarity of ``capacity``
    genuinely kept candidates (see DESIGN.md).

    ``dp_cache`` memoizes the refinement DP across requests.  The DP is
    a pure function of ``(query, rules, present keywords, beam)``; the
    state is rebuilt whenever the index version changes, and the
    posting data never enters the DP, so persistent workers can reuse
    beams between requests — the same amortization the engine's
    ``search_for_cache`` applies to statistics inference.
    """

    __slots__ = (
        "_decode",
        "tree",
        "_columns",
        "_tables",
        "shared_bound",
        "_dp_memos",
        "_slca_memo",
    )

    #: Distinct (query, rules, capacity) combinations memoized before
    #: the DP cache resets — bounds worst-case memory on hostile logs.
    DP_MEMO_LIMIT = 512
    #: Partition-local SLCA sets memoized before the cache resets.
    SLCA_MEMO_LIMIT = 100_000

    def __init__(self, decode_list, tree):
        self._decode = decode_list
        self.tree = tree
        self._columns = {}
        self._tables = {}
        self.shared_bound = None
        self._dp_memos = {}
        self._slca_memo = {}

    def dp_cache(self, query, rules, capacity):
        """``(probe_memo, beam_memo)`` dicts for one request identity.

        Both map a ``frozenset`` of present keywords to a DP result
        (limit 1 and limit ``capacity`` respectively) and persist for
        the worker's lifetime, so repeated queries skip the DP wholesale.
        """
        identity = (query, rules.fingerprint(), capacity)
        memos = self._dp_memos.get(identity)
        if memos is None:
            if len(self._dp_memos) >= self.DP_MEMO_LIMIT:
                self._dp_memos.clear()
            memos = ({}, {})
            self._dp_memos[identity] = memos
        return memos

    def columns(self, keyword):
        """``(components, labels)`` parallel arrays for one keyword."""
        cached = self._columns.get(keyword)
        if cached is None:
            decoded = self._decode(keyword)
            # The decoded list already owns its component column;
            # share it rather than re-deriving posting by posting.
            cached = (
                decoded.dewey_keys,
                [p.dewey for p in decoded.postings],
            )
            self._columns[keyword] = cached
        return cached

    def partition_table(self, keyword):
        """``{pid: [labels]}`` for one keyword, built once per version.

        One bisect-jumping pass over the packed component array turns
        the per-request, per-partition slicing of the serial loop into
        a dict lookup; root postings (no partition) are excluded like
        the serial loop's root-match skip.
        """
        table = self._tables.get(keyword)
        if table is None:
            components, labels = self.columns(keyword)
            table = {}
            position = bisect_left(components, (0, 0))
            size = len(components)
            while position < size:
                pid = components[position][:2]
                upper = bisect_left(
                    components, (pid[0], pid[1] + 1), position
                )
                table[pid] = labels[position:upper]
                position = upper
            self._tables[keyword] = table
        return table

    def slca_for(self, wire_key, pid, label_lists):
        """Partition-local SLCA set, memoized across requests.

        The SLCA set of a keyword set within one partition is a pure
        function of ``(keyword set, partition, index version)`` — list
        order only affects scan internals, never the answer (the
        differential oracle proves all SLCA variants agree) — and this
        state lives exactly one index version, so persistent workers
        reuse it across requests.  The *meaningful* filter is applied
        by the caller: it depends on the request's search-for types.
        """
        memo_key = (wire_key, pid)
        cached = self._slca_memo.get(memo_key)
        if cached is None:
            if len(self._slca_memo) >= self.SLCA_MEMO_LIMIT:
                self._slca_memo.clear()
            cached = scan_eager_slca(label_lists)
            self._slca_memo[memo_key] = cached
        return cached

    def meaningful_only(self, labels, search_for_types):
        """Definition 3.3 filter, identical to ``QueryContext``'s."""
        kept = []
        for label in labels:
            node = self.tree.get(label)
            if node is not None and is_meaningful(
                label, node.node_type, search_for_types
            ):
                kept.append(label)
        return kept


def partition_ids(components, lo_key=(0, 0)):
    """Distinct ``(a, b)`` partition prefixes in a component array.

    Jumps partition-to-partition with binary search instead of walking
    every posting; root postings (single-component labels) sort before
    ``(0, 0)`` and are naturally excluded, mirroring the serial loop's
    root-match skip.
    """
    found = []
    position = bisect_left(components, lo_key)
    size = len(components)
    while position < size:
        pid = components[position][:2]
        found.append(pid)
        position = bisect_left(
            components, (pid[0], pid[1] + 1), position
        )
    return found


def run_phase1(state, request, pids):
    """Run the partition loop over ``pids``; returns the wire result.

    The result is a plain dict of picklable primitives:

    ``originals``      labels (component tuples) answering Q itself
    ``found_original`` True when ``originals`` is non-empty
    ``offers``         ``[(keywords, dissimilarity, first_pid)]`` for
                       the shard-local Top-2K survivors
    ``computed``       ``{sorted-key: {pid: [components]}}`` for every
                       candidate SLCA computed (meaningful-filtered;
                       empty lists mark computed-but-meaningless)
    ``present``        ``{pid: bitmask over keyword_space}``
    ``stats``          summed :class:`ScanStats` fields
    """
    kernel_started = time.perf_counter()
    query = request.query
    # Masks and positions are per *distinct* keyword: a query can
    # repeat a term, and the coordinator derives its needed-partition
    # masks from the same order-preserving dedup.
    keyword_space = tuple(dict.fromkeys(request.keyword_space))
    rules = request.rules
    search_for_types = request.search_for_types
    query_key = frozenset(query)
    query_set = set(query)
    query_wire = tuple(sorted(query_set))
    bound = request.bound if request.bound is not None else float("inf")
    shared = state.shared_bound
    if shared is not None and shared.value < bound:
        bound = shared.value

    stats = ScanStats()
    sorted_list = RQSortedList(capacity=request.capacity)
    first_pid = {}
    offers_seen = {}      # key -> RefinedQuery currently held locally
    computed = {}         # wire key -> {pid: [components]}
    present_masks = {}
    originals = []
    found_original = request.found_original
    reported_original = False

    probe_memo, beam_memo = state.dp_cache(
        query, rules, request.capacity
    )
    presence_bound = MissingKeywordBound(query, rules)
    tables = [
        (keyword, 1 << bit, state.partition_table(keyword))
        for bit, keyword in enumerate(keyword_space)
    ]

    for pid in pids:
        sublists = {}
        mask = 0
        for keyword, bit_mask, table in tables:
            labels = table.get(pid)
            if labels is not None:
                sublists[keyword] = labels
                mask |= bit_mask
                stats.postings_scanned += len(labels)
        if not sublists:
            continue
        present_masks[pid] = mask
        stats.partitions_visited += 1
        present = frozenset(sublists)

        # Original-query check runs in every partition, exactly like
        # the serial loop (later partitions may hold more answers).
        if query_set and query_set <= present:
            stats.slca_invocations += 1
            slcas = state.slca_for(
                query_wire, pid, [sublists[keyword] for keyword in query]
            )
            meaningful = state.meaningful_only(slcas, search_for_types)
            if meaningful:
                found_original = True
                reported_original = True
                originals.extend(label.components for label in meaningful)
        if found_original:
            continue

        # Optimization 2 with the cross-shard bound folded in: the
        # effective threshold is the tighter of the local list's and
        # the broadcast's — the coordinator's between rounds, plus any
        # bound a concurrently running shard has published since this
        # task started; strict comparison as in serial.
        if shared is not None and shared.value < bound:
            bound = shared.value
        threshold = min(sorted_list.max_dissimilarity(), bound)
        if request.skip_optimization and threshold != float("inf"):
            # Presence pre-check (no DP): same strict comparison as
            # the probe below, so pruning is answer-identical.
            if presence_bound.lower_bound(present) > threshold:
                stats.partitions_skipped += 1
                continue
            stats.dp_invocations += 1
            probe = probe_memo.get(present)
            if probe is None:
                probe = get_top_optimal_rqs(query, present, rules, 1)
                probe_memo[present] = probe
            if not probe or probe[0].dissimilarity > threshold:
                stats.partitions_skipped += 1
                continue

        stats.dp_invocations += 1
        local_candidates = beam_memo.get(present)
        if local_candidates is None:
            local_candidates = get_top_optimal_rqs(
                query, present, rules, sorted_list.capacity
            )
            beam_memo[present] = local_candidates
        for rq in local_candidates:
            if rq.key == query_key:
                continue
            already_kept = sorted_list.has_key(rq.key)
            if not already_kept and (
                not sorted_list.would_admit(rq)
                or rq.dissimilarity > bound
            ):
                continue
            stats.slca_invocations += 1
            wire_key = tuple(sorted(rq.key))
            slcas = state.slca_for(
                wire_key, pid,
                [sublists[keyword] for keyword in rq.keywords],
            )
            meaningful = state.meaningful_only(slcas, search_for_types)
            computed.setdefault(wire_key, {})[pid] = [
                label.components for label in meaningful
            ]
            if not meaningful:
                continue
            sorted_list.insert(rq)
            if shared is not None and sorted_list.is_full:
                # Publish this shard's 2K-th dissimilarity: a sound
                # global bound (capacity kept candidates beat it), and
                # a lost racing update only weakens pruning.
                local_bound = sorted_list.max_dissimilarity()
                if local_bound < shared.value:
                    shared.value = local_bound
            held = offers_seen.get(rq.key)
            now_held = sorted_list._by_key.get(rq.key)
            if now_held is not None and now_held is not held:
                # The list adopted this partition's instance (new key
                # or strictly smaller dissimilarity) — it becomes the
                # representative, stamped with this partition.
                offers_seen[rq.key] = now_held
                first_pid[rq.key] = pid

    offers = [
        (rq.keywords, rq.dissimilarity, first_pid[rq.key])
        for rq in sorted_list.queries()
    ]
    stats.elapsed_seconds = time.perf_counter() - kernel_started
    return {
        "originals": originals,
        "found_original": reported_original,
        "offers": offers,
        "computed": computed,
        "present": present_masks,
        "stats": stats.as_dict(),
    }


def run_phase2(state, request, items):
    """Backfill partition-local results for merged survivors.

    ``items`` is ``[(wire_key, keywords, [pids])]``; returns
    ``{"results": [(wire_key, pid, [components])], "stats": {...}}``
    with the same meaningful filtering as phase 1.
    """
    search_for_types = request.search_for_types
    stats = ScanStats()
    results = []
    for wire_key, keywords, pids in items:
        tables = [state.partition_table(keyword) for keyword in keywords]
        for pid in pids:
            label_lists = []
            for table in tables:
                labels = table.get(pid, ())
                label_lists.append(labels)
                stats.postings_scanned += len(labels)
            stats.slca_invocations += 1
            slcas = state.slca_for(wire_key, pid, label_lists)
            meaningful = state.meaningful_only(slcas, search_for_types)
            results.append(
                (wire_key, pid, [label.components for label in meaningful])
            )
    return {"results": results, "stats": stats.as_dict()}


def dispatch(state, kind, request, payload):
    """Task demultiplexer shared by the pool workers and the in-process
    executor, so both transports exercise identical code."""
    if kind == "phase1":
        return run_phase1(state, request, payload)
    if kind == "phase2":
        return run_phase2(state, request, payload)
    raise ValueError(f"unknown shard task kind {kind!r}")


def rebuild_labels(component_lists):
    """Wire components -> trusted Dewey labels (coordinator side)."""
    return [Dewey.from_trusted(components) for components in component_lists]
