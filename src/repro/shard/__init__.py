"""Sharded parallel query execution (cache-miss path scaling).

The serial hot path (PR 1) made warm answers nearly free; this package
makes the *miss* path scale: posting payloads are published once into
shared memory (:mod:`.shm`), a persistent fork pool attaches zero-copy
(:mod:`.pool`), each worker runs a faster partition-range kernel
(:mod:`.worker`), and the coordinator merges per-shard Top-2K lists
into the byte-identical serial answer (:mod:`.refine`).  Entry points:
``XRefine(..., parallelism=N)`` / ``XRefine.search(parallelism=N)``
upstream, or :func:`sharded_partition_refine` directly.
"""

from .pool import (
    InProcessExecutor,
    ShardError,
    ShardPool,
    ShardPoolBroken,
    ShardRuntime,
    ShardTaskError,
)
from .refine import sharded_partition_refine
from .shm import SEGMENT_PREFIX, SharedPostingBlob, live_segments

__all__ = [
    "InProcessExecutor",
    "SEGMENT_PREFIX",
    "ShardError",
    "ShardPool",
    "ShardPoolBroken",
    "ShardRuntime",
    "ShardTaskError",
    "SharedPostingBlob",
    "live_segments",
    "sharded_partition_refine",
]
