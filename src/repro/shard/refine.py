"""Scatter–gather coordinator for parallel Algorithm 2.

:func:`sharded_partition_refine` splits the document's partition
sequence into per-worker shard ranges, runs the partition-local kernel
(:mod:`repro.shard.worker`) on each, and merges the per-shard Top-2K
candidate lists into the byte-identical answer the serial
:func:`~repro.core.partition_refine.partition_refine` produces.

Why the merge is exact (DESIGN.md has the full argument):

* PR 2 made the :class:`~repro.core.candidates.RQSortedList` kept set
  a pure function of the offered ``(dissimilarity, keyword set)``
  candidates under the content total order.  Every shard keeps its
  local Top-2K under that order; a locally evicted candidate is
  dominated by ``2K`` locally better ones that all reach the merge, so
  re-inserting the union of shard survivors into a fresh list yields
  exactly the serial Top-2K.
* The serial list's *representative* for a key is the instance from
  the earliest partition achieving its minimum dissimilarity; shards
  stamp offers with that partition id, and the merge takes the per-key
  minimum of ``(dissimilarity, first_partition)`` — partition ids are
  globally ordered, so the winner is the serial representative.
* A survivor's result set is "every partition-local meaningful SLCA in
  every partition containing all its keywords, in document order" —
  the whole-list semantics of SLE's step 2, which the differential
  oracle already proves equal to serial Partition's accumulation.
  Phase 1 reports which ``(candidate, partition)`` results each shard
  computed; phase 2 backfills only the missing pairs.
* Between rounds the coordinator broadcasts the merged list's worst
  kept dissimilarity as a cross-shard skip bound (the ``C_potential``
  analogue): a partition or candidate pruned by it is strictly worse
  than ``2K`` already-merged candidates and could never survive.

``shards``/``rounds`` shape the work split; the ``executor`` (a
:class:`~repro.shard.pool.ShardPool`, :class:`ShardRuntime`, or the
in-process fallback) supplies the transport.  Answers are independent
of all three — the differential oracle enforces it.
"""

from __future__ import annotations

import time
from bisect import bisect_left

from ..core.candidates import RQSortedList, RefinedQuery
from ..core.common import QueryContext, rank_candidates
from ..core.result import RefinementResponse, ScanStats
from ..lexicon.rules import RuleSet
from ..xmltree.dewey import Dewey
from .pool import InProcessExecutor
from .worker import Phase1Request, rebuild_labels


def _enumerate_partitions(context, cache=None):
    """Document-ordered ``(pid, weight)`` pairs over the query's lists.

    ``weight`` is the total posting count under the partition across
    the keyword space — the work estimate the chunker balances on.
    Enumeration jumps partition-to-partition by binary search on each
    list, so its cost is O(partitions x keywords x log n), not a scan.

    ``cache``, when provided, memoizes each keyword's breakdown — a
    pure function of the index version; callers pass the executor's
    ``partition_cache``, which is discarded on republish.
    """
    weights = {}
    for keyword in context.keyword_space:
        pairs = cache.get(keyword) if cache is not None else None
        if pairs is None:
            source = context.lists[keyword]
            components = source._dewey_keys
            position = bisect_left(components, (0, 0))
            size = len(components)
            pairs = []
            while position < size:
                pid = components[position][:2]
                upper = bisect_left(
                    components, (pid[0], pid[1] + 1), position
                )
                pairs.append((pid, upper - position))
                position = upper
            if cache is not None:
                cache[keyword] = pairs
        for pid, count in pairs:
            weights[pid] = weights.get(pid, 0) + count
    return sorted(weights.items())


def _split_weighted(items, pieces):
    """Split ``(pid, weight)`` pairs into ≤``pieces`` contiguous runs
    of roughly equal total weight (empty runs are dropped)."""
    if not items or pieces <= 1:
        return [items] if items else []
    total = sum(weight for _, weight in items)
    target = total / pieces
    runs = []
    current = []
    accumulated = 0.0
    remaining_pieces = pieces
    for index, (pid, weight) in enumerate(items):
        current.append((pid, weight))
        accumulated += weight
        remaining_items = len(items) - index - 1
        if (
            accumulated >= target
            and remaining_pieces > 1
            and remaining_items >= 1
        ):
            runs.append(current)
            current = []
            accumulated = 0.0
            remaining_pieces -= 1
    if current:
        runs.append(current)
    return runs


def sharded_partition_refine(index, query, rules=None, model=None, k=1,
                             shards=2, rounds=1, executor=None,
                             skip_optimization=True, initial_bound=None):
    """Parallel Algorithm 2; byte-identical to the serial function.

    Parameters mirror :func:`partition_refine` plus:

    shards:
        Number of partition ranges processed concurrently per round.
    rounds:
        Sequential round count; with ``rounds > 1`` the merged Top-2K
        bound from completed rounds is broadcast into later ones, so
        shards prune exactly when a serial run would (modulo timing).
    executor:
        Object with ``run(tasks)`` — a pool, runtime, or None for a
        transient in-process executor.
    initial_bound:
        Optional skip bound seeding the *first* round's broadcast
        (later rounds tighten it as usual).  Contract: the value must
        be a globally valid Top-2K bound for this exact
        ``(query, rules, k, index version)`` — i.e. the worst kept
        dissimilarity of ``2k`` genuinely kept candidates, such as the
        converged list's own 2k-th dissimilarity from a previous
        identical run (what the planner's plan cache records).  A
        sound seed prunes partitions from the first task onward and
        can never change the merged answer, by the same argument as
        the cross-round broadcast.
    """
    from ..core.ranking.model import full_model

    rules = rules if rules is not None else RuleSet()
    model = model if model is not None else full_model()
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    started = time.perf_counter()

    context = QueryContext(index, query, rules)
    stats = ScanStats()
    stats.lists_opened = len(context.keyword_space)
    own_executor = executor is None
    if own_executor:
        executor = InProcessExecutor(index)

    try:
        partitions = _enumerate_partitions(
            context, getattr(executor, "partition_cache", None)
        )
        round_runs = _split_weighted(partitions, rounds)

        capacity = max(2 * k, 2)
        merged = RQSortedList(capacity=capacity)
        # key -> (dissimilarity, first_pid, RefinedQuery): the best
        # known instance of each candidate across all completed chunks.
        best = {}
        computed = {}        # wire key -> {pid: [components]}
        present_masks = {}   # pid -> bitmask over keyword_space
        chunk_pids = []      # chunk index -> [pid] (phase-2 routing)
        originals = []
        found_original = False
        bound = initial_bound

        for round_runs_items in round_runs:
            chunks = _split_weighted(round_runs_items, shards)
            request = Phase1Request(
                context.query,
                context.keyword_space,
                rules,
                capacity,
                context.search_for_types,
                skip_optimization=skip_optimization,
                bound=bound,
                found_original=found_original,
            )
            tasks = []
            for chunk in chunks:
                pids = [pid for pid, _ in chunk]
                tasks.append(("phase1", request, pids))
                chunk_pids.append(pids)
            for result in executor.run(tasks):
                originals.extend(rebuild_labels(result["originals"]))
                found_original = found_original or result["found_original"]
                present_masks.update(result["present"])
                for wire_key, per_pid in result["computed"].items():
                    computed.setdefault(wire_key, {}).update(per_pid)
                for keywords, dissimilarity, first_pid in result["offers"]:
                    rq = RefinedQuery(keywords, dissimilarity)
                    held = best.get(rq.key)
                    candidate = (dissimilarity, first_pid, rq)
                    if held is None or candidate[:2] < held[:2]:
                        best[rq.key] = candidate
                for name, value in result["stats"].items():
                    if name != "elapsed_seconds":
                        setattr(stats, name, getattr(stats, name) + value)
            # Re-merge and refresh the broadcast state for later rounds.
            merged = RQSortedList(capacity=capacity)
            for dissimilarity, _, rq in sorted(
                best.values(),
                key=lambda item: (item[0], tuple(sorted(item[2].key))),
            ):
                merged.insert(rq)
            if merged.is_full:
                merged_bound = merged.max_dissimilarity()
                if bound is None or merged_bound < bound:
                    bound = merged_bound

        needs_refine = not found_original

        ranked = []
        if needs_refine:
            # Same order-preserving dedup as the worker's mask layout.
            keyword_bits = {
                keyword: 1 << bit
                for bit, keyword in enumerate(
                    dict.fromkeys(context.keyword_space)
                )
            }
            survivors = []
            backfill = {}  # chunk idx -> [(wire_key, keywords, [pids])]
            pid_owner = None  # built on the first miss (phase 2 is rare)
            for rq in merged.queries():
                wire_key = tuple(sorted(rq.key))
                key_mask = 0
                for keyword in wire_key:
                    key_mask |= keyword_bits[keyword]
                needed = sorted(
                    pid
                    for pid, mask in present_masks.items()
                    if mask & key_mask == key_mask
                )
                have = computed.get(wire_key, {})
                missing = {}
                for pid in needed:
                    if pid not in have:
                        if pid_owner is None:
                            pid_owner = {
                                pid_: owner
                                for owner, pids in enumerate(chunk_pids)
                                for pid_ in pids
                            }
                        missing.setdefault(pid_owner[pid], []).append(pid)
                for owner, pids in missing.items():
                    backfill.setdefault(owner, []).append(
                        (wire_key, rq.keywords, pids)
                    )
                survivors.append((rq, wire_key, needed))
            if backfill:
                request = Phase1Request(
                    context.query, context.keyword_space, rules, capacity,
                    context.search_for_types,
                )
                tasks = [
                    ("phase2", request, items)
                    for _, items in sorted(backfill.items())
                ]
                for result in executor.run(tasks):
                    for wire_key, pid, labels in result["results"]:
                        computed.setdefault(wire_key, {})[pid] = labels
                    for name, value in result["stats"].items():
                        if name != "elapsed_seconds":
                            setattr(
                                stats, name, getattr(stats, name) + value
                            )
            surviving = {}
            for rq, wire_key, needed in survivors:
                results = []
                per_pid = computed.get(wire_key, {})
                for pid in needed:
                    results.extend(per_pid.get(pid, ()))
                if results:
                    surviving[rq.key] = (rq, rebuild_labels(results))
            ranked = rank_candidates(context, model, surviving)
            originals = []
        else:
            originals.sort()
    finally:
        if own_executor:
            executor.close()

    stats.elapsed_seconds = time.perf_counter() - started
    return RefinementResponse(
        query=context.query,
        needs_refinement=needs_refine,
        original_results=originals,
        refinements=ranked[:k],
        candidates=ranked,
        search_for=context.search_for,
        stats=stats,
    )
