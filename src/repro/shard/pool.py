"""Persistent worker pool attached to a shared-memory posting blob.

A :class:`ShardPool` publishes the engine's posting payloads into one
shared-memory segment (:mod:`repro.shard.shm`), forks ``workers``
long-lived processes that attach to it by name, and feeds them
phase-1/phase-2 tasks (:mod:`repro.shard.worker`) over pipes.  The
``fork`` start method is required — the document tree and rule objects
reach the children through copy-on-write page sharing, never through
pickling — so on platforms without it :func:`create_executor` silently
degrades to the :class:`InProcessExecutor`, which runs the identical
kernel (with full pickle transport fidelity) in the calling process.

Failure containment: a worker raising inside a task is a deterministic
bug and surfaces as :class:`ShardTaskError` with the child traceback;
a worker *dying* (or a torn pipe) is :class:`ShardPoolBroken`, on
which :class:`ShardRuntime` tears the whole pool down — unlinking the
segment — rebuilds it once, and retries.  Segments are version-stamped
with the publishing index version; the runtime re-publishes whenever
``append_partition`` / ``remove_partition`` bumped it, so workers can
never serve stale postings.
"""

from __future__ import annotations

import multiprocessing
import pickle
import traceback
import weakref
from collections import deque
from multiprocessing import connection

from ..errors import ReproError
from .shm import SharedPostingBlob
from .worker import WorkerState, dispatch

#: Seconds between liveness checks while awaiting worker results.
_POLL_SECONDS = 5.0


class ShardError(ReproError):
    """Base class for parallel-execution failures."""


class ShardPoolBroken(ShardError):
    """A worker process died or its pipe tore; the pool is unusable."""


class ShardTaskError(ShardError):
    """A task raised inside a worker; carries the child traceback."""


def _worker_main(conn, blob_name, layout, type_table, version, tree,
                 bound_value):
    """Child entry point: attach, serve tasks until the None sentinel."""
    import gc

    # The child's heap is one big copy-on-write snapshot of the parent
    # (tree, index, interned strings).  Moving it to the permanent
    # generation keeps cyclic-GC passes from touching — and therefore
    # privately copying — those shared pages on every collection; the
    # kernel's own allocations are overwhelmingly acyclic (tuples,
    # lists, dicts torn down by refcounting), so collections can also
    # be much rarer than the default without memory growth.
    gc.freeze()
    gc.set_threshold(50_000, 50, 50)
    blob = SharedPostingBlob.attach(blob_name, layout, type_table, version)
    state = WorkerState(blob.decoded, tree)
    state.shared_bound = bound_value
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            if message is None:
                break
            task_id, kind, request, payload = message
            try:
                result = (task_id, "ok", dispatch(state, kind, request, payload))
            except Exception:
                result = (task_id, "error", traceback.format_exc())
            try:
                conn.send(result)
            except (BrokenPipeError, OSError):
                break
    finally:
        blob.close()
        conn.close()


def _cleanup(processes, conns, blob):
    """Finalizer shared by shutdown() and the GC/exit backstop."""
    for conn in conns:
        try:
            conn.send(None)
        except (BrokenPipeError, OSError):
            pass
    for process in processes:
        process.join(timeout=1.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    blob.close()


class ShardPool:
    """Fixed-size fork pool over one published posting blob."""

    def __init__(self, index, workers):
        if workers < 1:
            raise ShardError(f"worker count must be >= 1, got {workers}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ShardError("the fork start method is unavailable")
        context = multiprocessing.get_context("fork")
        self.workers = workers
        self.version = getattr(index, "version", 0)
        #: Coordinator-side cache of per-keyword partition breakdowns
        #: (pure function of the published index version).
        self.partition_cache = {}
        self._blob = SharedPostingBlob.publish(index.inverted, self.version)
        # Within-round skip-bound mailbox: an aligned raw double (torn
        # 8-byte accesses do not occur on supported platforms, and a
        # lost concurrent min-update only costs pruning, so no lock).
        self._bound = context.Value("d", float("inf"), lock=False)
        self._conns = []
        self._processes = []
        self._closed = False
        try:
            for _ in range(workers):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        self._blob.name,
                        self._blob.layout,
                        self._blob.type_table,
                        self._blob.version,
                        index.tree,
                        self._bound,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._processes.append(process)
        except BaseException:
            self.close()
            raise
        self._finalizer = weakref.finalize(
            self, _cleanup, list(self._processes), list(self._conns),
            self._blob,
        )

    @property
    def closed(self):
        return self._closed

    @property
    def segment_name(self):
        """Name of the published shared-memory segment (tests)."""
        return self._blob.name

    # ------------------------------------------------------------------
    def run(self, tasks):
        """Execute ``tasks`` (``(kind, request, payload)`` triples).

        Results come back in task order.  Tasks are distributed
        round-robin with at most one outstanding task per worker, so a
        busy worker can always flush its result before the parent
        writes its next task (no pipe-buffer deadlock).
        """
        if self._closed:
            raise ShardPoolBroken("the shard pool is closed")
        if not tasks:
            return []
        # Fresh mailbox per fan-out: bounds never leak across requests
        # (no worker holds a task between run() calls).
        self._bound.value = float("inf")
        queues = [deque() for _ in range(self.workers)]
        for task_id, task in enumerate(tasks):
            queues[task_id % self.workers].append((task_id, task))
        results = [None] * len(tasks)
        outstanding = {}  # conn -> worker idx

        def send_next(worker_idx):
            if not queues[worker_idx]:
                return
            task_id, (kind, request, payload) = queues[worker_idx].popleft()
            conn = self._conns[worker_idx]
            try:
                conn.send((task_id, kind, request, payload))
            except (BrokenPipeError, OSError) as exc:
                raise ShardPoolBroken(
                    f"worker {worker_idx} pipe is broken: {exc}"
                ) from exc
            outstanding[conn] = worker_idx

        for worker_idx in range(self.workers):
            send_next(worker_idx)
        remaining = len(tasks)
        while remaining:
            ready = connection.wait(
                list(outstanding), timeout=_POLL_SECONDS
            )
            if not ready:
                for conn, worker_idx in outstanding.items():
                    if not self._processes[worker_idx].is_alive():
                        raise ShardPoolBroken(
                            f"worker {worker_idx} died mid-task"
                        )
                continue
            for conn in ready:
                worker_idx = outstanding.pop(conn)
                try:
                    task_id, status, payload = conn.recv()
                except (EOFError, OSError) as exc:
                    raise ShardPoolBroken(
                        f"worker {worker_idx} hung up mid-task: {exc}"
                    ) from exc
                if status == "error":
                    raise ShardTaskError(
                        f"shard task failed in worker {worker_idx}:\n"
                        f"{payload}"
                    )
                results[task_id] = payload
                remaining -= 1
                send_next(worker_idx)
        return results

    # ------------------------------------------------------------------
    def close(self):
        """Stop the workers and unlink the segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        finalizer = getattr(self, "_finalizer", None)
        if finalizer is not None:
            finalizer.detach()
        _cleanup(self._processes, self._conns, self._blob)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return f"ShardPool({self.workers} workers, v{self.version}, {state})"


class _BoundCell:
    """Single-process stand-in for the pool's shared bound double."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = float("inf")


class InProcessExecutor:
    """Transport-faithful single-process executor.

    Runs the same kernel as the pool workers, over payload bytes read
    straight from the index's KV store, round-tripping every task and
    result through :mod:`pickle` so anything that would not survive
    the real pipe fails here too.  Used on fork-less platforms, by the
    differential oracle (process startup would dominate its runtime),
    and as the ``shards > 1, workers = 1`` reference.
    """

    def __init__(self, index):
        from ..index.inverted import decode_posting_payload

        inverted = index.inverted
        type_table = tuple(inverted.node_type_table)

        def decode_list(keyword):
            raw = inverted.raw_payload(keyword)
            return decode_posting_payload(
                keyword, raw if raw is not None else b"\x00", type_table
            )

        self.workers = 1
        self.version = getattr(index, "version", 0)
        self.partition_cache = {}
        self._state = WorkerState(decode_list, index.tree)
        # Same bound mailbox as the pool's, minus the process sharing:
        # chunks run sequentially here, so each sees every earlier
        # chunk's published bound (the pool's best case, made
        # deterministic — and exercised by the differential oracle).
        self._state.shared_bound = _BoundCell()
        self._closed = False

    @property
    def closed(self):
        return self._closed

    def run(self, tasks):
        self._state.shared_bound.value = float("inf")
        results = []
        for task in tasks:
            kind, request, payload = pickle.loads(pickle.dumps(task))
            result = dispatch(self._state, kind, request, payload)
            results.append(pickle.loads(pickle.dumps(result)))
        return results

    def close(self):
        self._closed = True


def create_executor(index, workers):
    """A :class:`ShardPool` when real processes are possible, else the
    in-process executor (identical answers, no parallelism)."""
    if workers > 1 and "fork" in multiprocessing.get_all_start_methods():
        return ShardPool(index, workers)
    return InProcessExecutor(index)


class ShardRuntime:
    """Engine-facing wrapper: staleness checks + crash recovery.

    Owns at most one executor; before every request the index version
    is compared with the executor's publication stamp and the pool is
    rebuilt on mismatch (the same invalidation trigger as the result
    cache).  A :class:`ShardPoolBroken` run is retried exactly once on
    a fresh pool — the broken pool's segment is unlinked first.
    """

    def __init__(self, index, workers):
        self.index = index
        self.workers = workers
        self._executor = None

    def executor(self):
        executor = self._executor
        version = getattr(self.index, "version", 0)
        if executor is not None and (
            executor.closed or executor.version != version
        ):
            executor.close()
            executor = None
        if executor is None:
            executor = create_executor(self.index, self.workers)
            self._executor = executor
        return executor

    @property
    def partition_cache(self):
        """Coordinator cache of the current (version-checked) executor."""
        return self.executor().partition_cache

    def run(self, tasks):
        try:
            return self.executor().run(tasks)
        except ShardPoolBroken:
            self.close()
            return self.executor().run(tasks)

    def swap(self, index):
        """Hand the runtime over to a hot-swapped index.

        Closes the current executor immediately — stopping the workers
        and unlinking the old snapshot's shared-memory segment — rather
        than waiting for the next request's version check to notice the
        stale stamp.  The caller must have drained in-flight sharded
        requests first (the serving daemon flips on its query thread,
        where none can be running); the next request transparently
        publishes the new index and forks a fresh pool.
        """
        self.index = index
        self.close()

    def close(self):
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __repr__(self):
        return f"ShardRuntime(workers={self.workers}, {self._executor!r})"
