"""Evaluation harness: cumulated gain, simulated judges, timing, tables.

Implements the paper's Section VIII methodology — CG-based graded
effectiveness [27] judged by a (simulated) 6-person panel, and
hot-cache response-time measurement.
"""

from .cg import (
    average_cg,
    cg_at,
    cumulated_gain,
    discounted_cumulated_gain,
    ideal_gain_vector,
    normalized_dcg,
)
from .ir_metrics import (
    average_precision,
    f_measure,
    mean_reciprocal_rank,
    precision_at,
    recall_at,
    reciprocal_rank,
)
from .judges import Judge, JudgePanel, base_grade
from .reporting import format_series, format_table, print_report
from .timing import Stopwatch, TimingResult, time_call

__all__ = [
    "cumulated_gain",
    "cg_at",
    "average_cg",
    "discounted_cumulated_gain",
    "normalized_dcg",
    "ideal_gain_vector",
    "Judge",
    "precision_at",
    "recall_at",
    "f_measure",
    "reciprocal_rank",
    "mean_reciprocal_rank",
    "average_precision",
    "JudgePanel",
    "base_grade",
    "time_call",
    "TimingResult",
    "Stopwatch",
    "format_table",
    "format_series",
    "print_report",
]
