"""Simulated relevance judges (the 6-researcher panel of Section VIII-C).

Each refined query is judged on the paper's four-point scale —
0 irrelevant, 1 marginally relevant, 2 fairly relevant, 3 highly
relevant — against the **ground-truth intent** the workload generator
attached to the corrupted query.  The base judgment combines

* keyword fidelity: Jaccard overlap between the RQ's keywords and the
  intent's keywords (treating the intent as what "fully matching the
  search intention" means);
* result fidelity: overlap between the RQ's meaningful SLCAs and the
  intent's (do the returned fragments contain the intended ones?).

Each of the ``n`` judges perturbs the base judgment with small seeded
noise (people disagree by at most one grade on clear-cut cases), and
the panel's gain for a rank position is the average of the judges'
grades — the same aggregation the paper's Tables IX/X report.
"""

from __future__ import annotations

import random


def _jaccard(a, b):
    a, b = set(a), set(b)
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union) if union else 0.0


def _result_overlap(rq_results, intent_results):
    """Fraction of intended results covered by the RQ's results.

    A result covers an intended one when either contains the other
    (e.g. the RQ's SLCA is the publications element holding the
    intended inproceedings).
    """
    if not intent_results:
        return 0.0
    covered = 0
    for intended in intent_results:
        for got in rq_results:
            if (
                got.is_ancestor_or_self_of(intended)
                or intended.is_ancestor_or_self_of(got)
            ):
                covered += 1
                break
    return covered / len(intent_results)


def base_grade(rq_keywords, rq_results, intent_keywords, intent_results):
    """The noise-free grade on the 0-3 scale."""
    keyword_score = _jaccard(rq_keywords, intent_keywords)
    result_score = _result_overlap(rq_results, intent_results)
    blended = 0.6 * keyword_score + 0.4 * result_score
    if blended >= 0.85:
        return 3
    if blended >= 0.55:
        return 2
    if blended >= 0.25:
        return 1
    return 0


class Judge:
    """One simulated judge with a personal noise stream."""

    def __init__(self, seed, disagreement=0.15):
        self._rng = random.Random(seed)
        self.disagreement = disagreement

    def grade(self, rq_keywords, rq_results, intent_keywords, intent_results):
        """Judge one refined query; returns an int in 0..3."""
        grade = base_grade(
            rq_keywords, rq_results, intent_keywords, intent_results
        )
        if self._rng.random() < self.disagreement:
            grade += self._rng.choice((-1, 1))
        return max(0, min(3, grade))


class JudgePanel:
    """The panel: ``n`` judges whose grades are averaged per item."""

    def __init__(self, n=6, seed=101, disagreement=0.15):
        self.judges = [
            Judge(seed * 1009 + i, disagreement) for i in range(n)
        ]

    def gain(self, rq_keywords, rq_results, intent_keywords, intent_results):
        """Average grade of the panel for one ranked item."""
        grades = [
            judge.grade(
                rq_keywords, rq_results, intent_keywords, intent_results
            )
            for judge in self.judges
        ]
        return sum(grades) / len(grades)

    def gain_vector(self, ranked_refinements, intent_keywords, intent_results):
        """Panel gains for a ranked list of refinements (CG input)."""
        return [
            self.gain(
                refinement.rq.keywords,
                refinement.slcas,
                intent_keywords,
                intent_results,
            )
            for refinement in ranked_refinements
        ]
