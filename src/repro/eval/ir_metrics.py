"""Classic binary-relevance IR metrics.

Section VIII-C notes that prior database keyword-search work evaluates
with "precision, recall, F-measure, reciprocal rank etc." before
arguing for graded CG.  Those binary metrics are provided here so the
evaluation harness can report both families side by side (and because
downstream users of the library will reach for them first).

All functions take a *ranked* list of returned items and a set (or
iterable) of relevant items; items can be anything hashable (Dewey
labels, RQ keys...).
"""

from __future__ import annotations

from ..errors import EvaluationError


def precision_at(ranked, relevant, k):
    """Fraction of the top-``k`` returned items that are relevant."""
    if k < 1:
        raise EvaluationError(f"k must be >= 1, got {k}")
    relevant = set(relevant)
    top = list(ranked)[:k]
    if not top:
        return 0.0
    return sum(1 for item in top if item in relevant) / len(top)


def recall_at(ranked, relevant, k=None):
    """Fraction of relevant items found in the top-``k`` (all, if None)."""
    relevant = set(relevant)
    if not relevant:
        raise EvaluationError("recall is undefined with no relevant items")
    returned = list(ranked)
    if k is not None:
        returned = returned[:k]
    return sum(1 for item in set(returned) if item in relevant) / len(relevant)


def f_measure(precision, recall, beta=1.0):
    """The F_beta combination of a precision/recall pair."""
    if precision < 0 or recall < 0:
        raise EvaluationError("precision/recall must be non-negative")
    if precision == 0 and recall == 0:
        return 0.0
    beta2 = beta * beta
    return (1 + beta2) * precision * recall / (beta2 * precision + recall)


def reciprocal_rank(ranked, relevant):
    """1 / rank of the first relevant item; 0 when none is returned."""
    relevant = set(relevant)
    for rank, item in enumerate(ranked, start=1):
        if item in relevant:
            return 1.0 / rank
    return 0.0


def mean_reciprocal_rank(runs):
    """Mean RR over ``[(ranked, relevant), ...]`` query runs."""
    runs = list(runs)
    if not runs:
        raise EvaluationError("MRR needs at least one query run")
    return sum(
        reciprocal_rank(ranked, relevant) for ranked, relevant in runs
    ) / len(runs)


def average_precision(ranked, relevant):
    """AP: mean of precision@rank over ranks holding relevant items."""
    relevant = set(relevant)
    if not relevant:
        raise EvaluationError("AP is undefined with no relevant items")
    hits = 0
    total = 0.0
    for rank, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            total += hits / rank
    return total / len(relevant)
