"""Timing harness for the efficiency experiments (Section VIII-A/B).

The paper measures "the timestamp difference between a query is issued
and its Top-K RQs with their associated SLCA results are returned", on
a hot cache.  :func:`time_call` runs a callable with warmup (hot cache)
and repetition, returning robust statistics; :class:`Stopwatch` is a
simple context-manager timer used inside longer experiment scripts.
"""

from __future__ import annotations

import time

from ..errors import EvaluationError


class TimingResult:
    """Statistics of repeated timed runs (seconds)."""

    __slots__ = ("samples", "value")

    def __init__(self, samples, value):
        self.samples = list(samples)
        self.value = value

    @property
    def best(self):
        return min(self.samples)

    @property
    def mean(self):
        return sum(self.samples) / len(self.samples)

    @property
    def median(self):
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2

    def __repr__(self):
        return f"TimingResult(median={self.median * 1000:.3f}ms, n={len(self.samples)})"


def time_call(fn, repeat=5, warmup=1):
    """Time ``fn()`` on a hot cache.

    ``warmup`` un-timed calls populate caches first (the paper reports
    hot-cache numbers); ``repeat`` timed calls follow.  The result's
    ``value`` is the last return value of ``fn``.
    """
    if repeat < 1:
        raise EvaluationError("repeat must be >= 1")
    value = None
    for _ in range(warmup):
        value = fn()
    samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        value = fn()
        samples.append(time.perf_counter() - started)
    return TimingResult(samples, value)


class Stopwatch:
    """``with Stopwatch() as sw: ...; sw.elapsed`` timer."""

    def __init__(self):
        self.elapsed = 0.0
        self._started = None

    def __enter__(self):
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.elapsed = time.perf_counter() - self._started
        return False
