"""Cumulated Gain evaluation (Järvelin & Kekäläinen [27]).

The paper evaluates ranking effectiveness with CG because binary
precision/recall cannot express graded relevance: given a ranked list
of refined queries whose judged gains are ``G[1..n]`` (0–3 scale),

    CG[i] = G[1]                   if i = 1
    CG[i] = CG[i-1] + G[i]         otherwise

Discounted variants (DCG/nDCG) are included for completeness and used
by the extended ablation benchmarks.
"""

from __future__ import annotations

import math

from ..errors import EvaluationError


def cumulated_gain(gains):
    """The CG vector for a gain vector, as defined in [27]."""
    result = []
    total = 0.0
    for gain in gains:
        total += gain
        result.append(total)
    return result


def cg_at(gains, position):
    """``CG[position]`` (1-based); raises on an out-of-range position."""
    if position < 1:
        raise EvaluationError(f"CG position must be >= 1, got {position}")
    if position > len(gains):
        # The convention of [27]: a shorter result list contributes its
        # full gain at deeper cutoffs (the list simply ends).
        return sum(gains)
    return sum(gains[:position])


def discounted_cumulated_gain(gains, base=2.0):
    """DCG with log-``base`` discounting from rank ``base`` onwards."""
    result = []
    total = 0.0
    for rank, gain in enumerate(gains, start=1):
        if rank < base:
            total += gain
        else:
            total += gain / math.log(rank, base)
        result.append(total)
    return result


def ideal_gain_vector(gains):
    """Gains reordered descending: the ideal ranking's gain vector."""
    return sorted(gains, reverse=True)


def normalized_dcg(gains, base=2.0):
    """nDCG vector: DCG divided pointwise by the ideal DCG."""
    actual = discounted_cumulated_gain(gains, base)
    ideal = discounted_cumulated_gain(ideal_gain_vector(gains), base)
    return [
        a / i if i > 0 else 0.0
        for a, i in zip(actual, ideal)
    ]


def average_cg(gain_vectors, position):
    """Mean ``CG[position]`` over many queries (the Table IX cells)."""
    if not gain_vectors:
        raise EvaluationError("average_cg needs at least one gain vector")
    return sum(cg_at(gains, position) for gains in gain_vectors) / len(
        gain_vectors
    )
