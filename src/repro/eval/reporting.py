"""Plain-text table/series rendering for the benchmark harness.

Every ``benchmarks/bench_*.py`` module regenerates one of the paper's
tables or figures; these helpers print them in a uniform, diff-friendly
format (figures become series tables — no plotting dependencies).
"""

from __future__ import annotations


def format_table(headers, rows, title=None):
    """Render an aligned monospace table; all cells become strings."""
    headers = [str(h) for h in headers]
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(name, points, x_label="x", y_label="y"):
    """Render one figure series as a two-column table."""
    return format_table(
        [x_label, y_label],
        [[x, y] for x, y in points],
        title=name,
    )


def print_report(text):
    """Print a report block framed so it stands out in pytest output."""
    bar = "=" * 72
    print(f"\n{bar}\n{text}\n{bar}")
