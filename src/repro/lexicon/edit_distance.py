"""String edit distance — the morphological metric of Section III-B.

Dissimilarity scores for spelling-correction rules are "variants of
some morphological metric such as string edit distance" — this module
provides the plain Levenshtein distance, a banded early-exit variant
for candidate filtering, and a similarity-candidates helper used by the
rule miner.
"""

from __future__ import annotations


def levenshtein(a, b):
    """Classic Levenshtein distance (unit insert/delete/substitute)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) > len(b):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for j, ch_b in enumerate(b, start=1):
        current = [j]
        for i, ch_a in enumerate(a, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[i] + 1,       # delete from a
                    current[i - 1] + 1,    # insert into a
                    previous[i - 1] + cost # substitute
                )
            )
        previous = current
    return previous[-1]


def within_distance(a, b, limit):
    """True iff ``levenshtein(a, b) <= limit``; bails out early.

    Uses the banded DP: only cells within ``limit`` of the diagonal can
    matter, so the check runs in O(limit * max(len)) time.
    """
    if abs(len(a) - len(b)) > limit:
        return False
    if a == b:
        return True
    if limit <= 0:
        return False
    big = limit + 1
    previous = list(range(len(a) + 1))
    for j, ch_b in enumerate(b, start=1):
        lo = max(1, j - limit)
        hi = min(len(a), j + limit)
        current = [big] * (len(a) + 1)
        if lo == 1:
            current[0] = j
        for i in range(lo, hi + 1):
            cost = 0 if a[i - 1] == ch_b else 1
            current[i] = min(
                previous[i] + 1,
                current[i - 1] + 1,
                previous[i - 1] + cost,
            )
        if min(current[lo - 1 : hi + 1]) > limit:
            return False
        previous = current
    return previous[len(a)] <= limit


def bounded_distance(a, b, limit):
    """Levenshtein distance, or ``None`` when it exceeds ``limit``."""
    if not within_distance(a, b, limit):
        return None
    return levenshtein(a, b)


def spelling_candidates(term, vocabulary, limit=2, min_length=4):
    """Vocabulary words within edit distance ``limit`` of ``term``.

    Short terms (below ``min_length``) are skipped — one edit in a
    3-letter word is usually a different word, not a typo — matching
    how spelling-correction rule sets are curated in practice.

    Returns ``[(word, distance), ...]`` sorted by (distance, word),
    excluding ``term`` itself.
    """
    if len(term) < min_length:
        return []
    found = []
    for word in vocabulary:
        if word == term or len(word) < min_length:
            continue
        distance = bounded_distance(term, word, limit)
        if distance is not None and distance > 0:
            found.append((word, distance))
    found.sort(key=lambda pair: (pair[1], pair[0]))
    return found
