"""Refinement rules (Definitions 3.5/3.6 and Table II).

A rule ``S1 ->_op S2`` rewrites the keyword sequence ``S1`` (drawn from
the original query) into the keyword set ``S2`` (which must exist in
the data for the rewrite to be applicable), with an associated
dissimilarity score ``ds_r``:

* **merging** (``on, line -> online``): ds = number of removed spaces;
* **split** (``online -> on, line``): ds = number of added spaces;
* **substitution** — spelling (edit distance), synonym (thesaurus
  score), acronym (1), stemming (1);
* **deletion** is not represented as stored rules: every keyword is
  always deletable at :data:`DEFAULT_DELETION_COST`, kept strictly
  greater than the unit cost of the other operations ("term deletion
  has the greatest potential in changing the meaning").

:class:`RuleSet` indexes rules by the *last* keyword of their LHS —
exactly the access path of the dynamic program (Section V: ``R(ki)``),
whose Option 3 tries every rule whose LHS ends at position ``i``.
"""

from __future__ import annotations

from ..errors import RuleError

#: Operation kinds.
OP_DELETION = "deletion"
OP_MERGING = "merging"
OP_SPLIT = "split"
OP_SUBSTITUTION = "substitution"

_VALID_OPS = {OP_MERGING, OP_SPLIT, OP_SUBSTITUTION}

#: ds of deleting one term; > every unit rule cost (Section VIII uses 2).
DEFAULT_DELETION_COST = 2


class RefinementRule:
    """One refinement rule ``lhs ->_operation rhs`` with score ``ds``."""

    __slots__ = ("lhs", "rhs", "operation", "ds")

    def __init__(self, lhs, rhs, operation, ds):
        lhs = tuple(lhs)
        rhs = tuple(rhs)
        if not lhs or not rhs:
            raise RuleError("rule sides must be non-empty keyword sequences")
        if operation not in _VALID_OPS:
            raise RuleError(f"unknown refinement operation {operation!r}")
        if ds <= 0:
            raise RuleError(f"rule dissimilarity must be positive, got {ds}")
        self.lhs = lhs
        self.rhs = rhs
        self.operation = operation
        self.ds = ds

    def __repr__(self):
        lhs = ",".join(self.lhs)
        rhs = ",".join(self.rhs)
        return f"RefinementRule({lhs} ->[{self.operation}] {rhs}, ds={self.ds})"

    def __eq__(self, other):
        if not isinstance(other, RefinementRule):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.rhs == other.rhs
            and self.operation == other.operation
            and self.ds == other.ds
        )

    def __hash__(self):
        return hash((self.lhs, self.rhs, self.operation, self.ds))


def merging_rule(parts, merged):
    """``parts`` (>=2 keywords) -> one merged keyword; ds = spaces removed."""
    parts = tuple(parts)
    if len(parts) < 2:
        raise RuleError("a merging rule needs at least two LHS keywords")
    if "".join(parts) != merged:
        raise RuleError(
            f"merging {parts} does not spell {merged!r}"
        )
    return RefinementRule(parts, (merged,), OP_MERGING, len(parts) - 1)


def split_rule(term, parts):
    """One keyword -> >=2 parts; ds = spaces added."""
    parts = tuple(parts)
    if len(parts) < 2:
        raise RuleError("a split rule needs at least two RHS keywords")
    if "".join(parts) != term:
        raise RuleError(f"splitting {term!r} does not yield {parts}")
    return RefinementRule((term,), parts, OP_SPLIT, len(parts) - 1)


def substitution_rule(source, target, ds=1):
    """Single-term substitution (spelling / synonym / stemming)."""
    if isinstance(target, str):
        target = (target,)
    return RefinementRule((source,), tuple(target), OP_SUBSTITUTION, ds)


def acronym_rules(acronym, expansion, ds=1):
    """Both directions of an acronym rule (r6 and its inverse)."""
    expansion = tuple(expansion)
    return [
        RefinementRule((acronym,), expansion, OP_SUBSTITUTION, ds),
        RefinementRule(expansion, (acronym,), OP_SUBSTITUTION, ds),
    ]


class RuleSet:
    """A set of refinement rules indexed for the dynamic program."""

    def __init__(self, rules=(), deletion_cost=DEFAULT_DELETION_COST):
        if deletion_cost <= 0:
            raise RuleError("deletion cost must be positive")
        self.deletion_cost = deletion_cost
        self._rules = []
        self._by_last_lhs = {}
        for rule in rules:
            self.add(rule)

    def add(self, rule):
        """Add one rule (duplicates are ignored)."""
        if rule in self._rules:
            return
        self._rules.append(rule)
        self._by_last_lhs.setdefault(rule.lhs[-1], []).append(rule)

    def extend(self, rules):
        for rule in rules:
            self.add(rule)

    def rules_ending_with(self, keyword):
        """All rules whose LHS ends with ``keyword`` — ``R(ki)``."""
        return self._by_last_lhs.get(keyword, [])

    def all_rules(self):
        return list(self._rules)

    def fingerprint(self):
        """Hashable identity of the rule set, including rule order.

        Two rule sets with equal fingerprints drive the refinement DP
        identically, so pure-function caches (e.g. the shard workers'
        cross-request beam memo) can key on it.  Order is part of the
        identity: at equal cost the DP keeps the first derivation seen.
        """
        return (self.deletion_cost, tuple(self._rules))

    def generated_keywords(self):
        """Every keyword appearing on some RHS (``getNewKeywords``).

        These are the keywords the refinement algorithms add to the
        original query's to form the extended keyword set ``KS``
        (Algorithm 1, line 3).
        """
        keywords = set()
        for rule in self._rules:
            keywords.update(rule.rhs)
        return keywords

    def __len__(self):
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def __repr__(self):
        return f"RuleSet({len(self._rules)} rules, del={self.deletion_cost})"
