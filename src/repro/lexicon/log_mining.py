"""Mining refinement rules from query-log rewrite pairs.

Section III-B notes refinement rules "can be obtained from document
mining, query log analysis [21] or manual annotation".  The corpus
miner (:mod:`repro.lexicon.mining`) covers document mining; this module
covers the query-log route: given (dirty, clean) rewrite pairs — a user
query that failed followed by the user's manual fix, as extracted by
:meth:`repro.workload.querylog.QueryLog.rewrite_pairs` — derive the
rules users implicitly applied:

* a dirty keyword equal to the concatenation of adjacent clean
  keywords is a **split** rule (user glued words);
* adjacent dirty keywords concatenating to a clean keyword give a
  **merging** rule;
* a 1:1 leftover keyword pair within edit distance is a **spelling
  substitution** (ds = the distance) or, further apart, a **synonym
  substitution** candidate (ds = 1) once seen at least
  ``min_support`` times;
* dirty keywords with no counterpart are deletion evidence (already
  universally available, so no rule is emitted).

Mined rules carry support counts, and :func:`mine_rules_from_log`
returns only those meeting ``min_support`` — the standard guard
against one-off log noise.
"""

from __future__ import annotations

from collections import Counter

from .edit_distance import bounded_distance
from .rules import (
    DEFAULT_DELETION_COST,
    RuleSet,
    merging_rule,
    split_rule,
    substitution_rule,
)

#: Pairs seen fewer times than this are treated as noise.
DEFAULT_MIN_SUPPORT = 2


def _alignment_candidates(dirty, clean):
    """Rule evidence from one rewrite pair.

    Yields ``(kind, payload)`` tuples where kind is ``"merge"``,
    ``"split"`` or ``"substitute"``.
    """
    dirty = list(dirty)
    clean = list(clean)
    used_clean = set()
    used_dirty = set()

    # Exact keepers first.
    clean_positions = {}
    for j, word in enumerate(clean):
        clean_positions.setdefault(word, []).append(j)
    for i, word in enumerate(dirty):
        positions = clean_positions.get(word)
        if positions:
            used_dirty.add(i)
            used_clean.add(positions.pop(0))

    # Merges: adjacent dirty -> one clean.
    for i in range(len(dirty) - 1):
        if i in used_dirty or i + 1 in used_dirty:
            continue
        glued = dirty[i] + dirty[i + 1]
        for j, word in enumerate(clean):
            if j not in used_clean and word == glued:
                yield "merge", (dirty[i], dirty[i + 1], glued)
                used_dirty.update((i, i + 1))
                used_clean.add(j)
                break

    # Splits: one dirty -> adjacent clean pair.
    for i, word in enumerate(dirty):
        if i in used_dirty:
            continue
        for j in range(len(clean) - 1):
            if j in used_clean or j + 1 in used_clean:
                continue
            if clean[j] + clean[j + 1] == word:
                yield "split", (word, clean[j], clean[j + 1])
                used_dirty.add(i)
                used_clean.update((j, j + 1))
                break

    # Substitutions: remaining 1:1 by closest edit distance.
    leftover_dirty = [i for i in range(len(dirty)) if i not in used_dirty]
    leftover_clean = [j for j in range(len(clean)) if j not in used_clean]
    for i in leftover_dirty:
        best = None
        for j in leftover_clean:
            distance = bounded_distance(dirty[i], clean[j], 3)
            if distance is not None and (best is None or distance < best[0]):
                best = (distance, j)
        if best is not None:
            distance, j = best
            leftover_clean.remove(j)
            yield "substitute", (dirty[i], clean[j], max(distance, 1))


def mine_rules_from_log(
    rewrite_pairs,
    min_support=DEFAULT_MIN_SUPPORT,
    deletion_cost=DEFAULT_DELETION_COST,
):
    """A :class:`RuleSet` mined from (dirty, clean) rewrite pairs."""
    support = Counter()
    payloads = {}
    for dirty, clean in rewrite_pairs:
        for kind, payload in _alignment_candidates(dirty, clean):
            key = (kind,) + payload[:2] if kind != "substitute" else (
                kind, payload[0], payload[1],
            )
            support[key] += 1
            payloads[key] = (kind, payload)

    rule_set = RuleSet(deletion_cost=deletion_cost)
    for key, count in support.items():
        if count < min_support:
            continue
        kind, payload = payloads[key]
        if kind == "merge":
            left, right, glued = payload
            rule_set.add(merging_rule((left, right), glued))
        elif kind == "split":
            word, left, right = payload
            rule_set.add(split_rule(word, (left, right)))
        else:
            source, target, distance = payload
            rule_set.add(substitution_rule(source, target, ds=distance))
    return rule_set


def rule_support(rewrite_pairs):
    """Support counts per mined rule key (diagnostics/tests)."""
    support = Counter()
    for dirty, clean in rewrite_pairs:
        for kind, payload in _alignment_candidates(dirty, clean):
            key = (kind,) + payload[:2]
            support[key] += 1
    return support
