"""Rule mining: building the pertinent rule set for a query.

The paper obtains refinement rules from "document mining, query log
analysis or manual annotation"; its experiments use two human
annotators.  This module plays the annotators' role automatically by
mining rules *relevant to a given query* from the corpus vocabulary
(the set of indexed keywords):

* **merging** — adjacent query keywords whose concatenation is a corpus
  word (``on, line -> online``);
* **split** — a query keyword that decomposes into 2..3 corpus words
  (``online -> on, line``);
* **spelling** — corpus words within edit distance 2 of a query
  keyword, ds = the distance (``mecin -> machine``, r5);
* **synonym** — thesaurus neighbours present in the corpus (``article
  -> inproceedings``, r3);
* **acronym** — expansion/contraction against the acronym table, both
  directions (``WWW <-> world wide web``, r6);
* **stemming** — corpus words sharing a Porter stem (``match ->
  matching``).

Only rules whose RHS keywords all exist in the corpus are emitted —
rules rewriting into absent keywords can never contribute a matching
result, so carrying them would only widen ``KS`` for nothing.
"""

from __future__ import annotations

from .acronyms import ACRONYM_SCORE, AcronymTable
from .edit_distance import spelling_candidates
from .rules import (
    DEFAULT_DELETION_COST,
    RuleSet,
    acronym_rules,
    merging_rule,
    split_rule,
    substitution_rule,
)
from .stemming import stem
from .synonyms import Thesaurus

#: Default cap on spelling-rule candidates per query keyword.
DEFAULT_MAX_SPELLING = 3
#: Minimum length of each fragment produced by a split rule.
MIN_SPLIT_FRAGMENT = 2


class RuleMiner:
    """Mines the pertinent rule set for queries over one corpus.

    Parameters
    ----------
    vocabulary:
        Iterable of corpus keywords (the inverted index's key set).
    thesaurus, acronyms:
        Optional domain knowledge; defaults cover the bundled datasets.
    deletion_cost:
        ds of term deletion, forwarded into every mined
        :class:`~repro.lexicon.rules.RuleSet`.
    """

    def __init__(
        self,
        vocabulary,
        thesaurus=None,
        acronyms=None,
        deletion_cost=DEFAULT_DELETION_COST,
        max_spelling=DEFAULT_MAX_SPELLING,
        edit_limit=2,
    ):
        self.vocabulary = set(vocabulary)
        self.thesaurus = thesaurus if thesaurus is not None else Thesaurus()
        self.acronyms = acronyms if acronyms is not None else AcronymTable()
        self.deletion_cost = deletion_cost
        self.max_spelling = max_spelling
        self.edit_limit = edit_limit
        self._stem_groups = None

    # ------------------------------------------------------------------
    def _stems(self):
        """Lazy map stem -> corpus words sharing it."""
        if self._stem_groups is None:
            groups = {}
            for word in self.vocabulary:
                groups.setdefault(stem(word), set()).add(word)
            self._stem_groups = groups
        return self._stem_groups

    def _in_corpus(self, words):
        return all(word in self.vocabulary for word in words)

    # ------------------------------------------------------------------
    # Per-operation miners (each yields RefinementRule objects)
    # ------------------------------------------------------------------
    def merging_rules(self, query):
        """Adjacent-run merges whose result is a corpus word."""
        for width in (2, 3):
            for start in range(len(query) - width + 1):
                parts = tuple(query[start : start + width])
                merged = "".join(parts)
                if merged in self.vocabulary:
                    yield merging_rule(parts, merged)

    def split_rules(self, keyword):
        """Decompositions of one keyword into 2 corpus fragments."""
        for cut in range(MIN_SPLIT_FRAGMENT, len(keyword) - MIN_SPLIT_FRAGMENT + 1):
            left, right = keyword[:cut], keyword[cut:]
            if self._in_corpus((left, right)):
                yield split_rule(keyword, (left, right))

    def spelling_rules(self, keyword):
        """Edit-distance substitutions into corpus words."""
        if keyword in self.vocabulary:
            return
        candidates = spelling_candidates(
            keyword, self.vocabulary, limit=self.edit_limit
        )
        for word, distance in candidates[: self.max_spelling]:
            yield substitution_rule(keyword, word, ds=distance)

    def synonym_rules(self, keyword):
        """Thesaurus substitutions into corpus words."""
        for synonym, score in self.thesaurus.synonyms(keyword):
            if synonym in self.vocabulary:
                yield substitution_rule(keyword, synonym, ds=score)

    def acronym_rules_for(self, query, keyword):
        """Acronym expansion of ``keyword`` and contraction of runs."""
        expansion = self.acronyms.expand(keyword)
        if expansion is not None and self._in_corpus(expansion):
            yield acronym_rules(keyword, expansion, ds=ACRONYM_SCORE)[0]
        # Contraction: a run of query keywords matching an expansion.
        for width in (2, 3):
            for start in range(len(query) - width + 1):
                run = tuple(query[start : start + width])
                if run[-1] != keyword:
                    continue
                acronym = self.acronyms.contract(run)
                if acronym is not None and acronym in self.vocabulary:
                    yield acronym_rules(acronym, run, ds=ACRONYM_SCORE)[1]

    def stemming_rules(self, keyword):
        """Substitutions into corpus words sharing the Porter stem."""
        for word in sorted(self._stems().get(stem(keyword), ())):
            if word != keyword:
                yield substitution_rule(keyword, word, ds=1)

    # ------------------------------------------------------------------
    def mine(self, query):
        """The pertinent :class:`RuleSet` for one keyword query.

        ``query`` is a sequence of normalized keywords (order matters
        for merging/contraction rules).
        """
        query = list(query)
        rule_set = RuleSet(deletion_cost=self.deletion_cost)
        rule_set.extend(self.merging_rules(query))
        for keyword in query:
            rule_set.extend(self.split_rules(keyword))
            rule_set.extend(self.spelling_rules(keyword))
            rule_set.extend(self.synonym_rules(keyword))
            rule_set.extend(self.acronym_rules_for(query, keyword))
            rule_set.extend(self.stemming_rules(keyword))
        return rule_set
