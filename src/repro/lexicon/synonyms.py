"""A compact WordNet-style thesaurus for synonym substitution rules.

TopX and the paper's rule examples consult WordNet [18] for synonym
scores; no lexical database ships in this offline reproduction, so a
hand-curated thesaurus covers the vocabulary the synthetic datasets
emit (bibliographic + baseball domains) plus the general computing
terms appearing in the paper's sample queries (``publication`` vs
``article``/``inproceedings``, ``search`` vs ``retrieval``...).

Synonymy is modeled as undirected groups; the dissimilarity of a
substitution within a group is the group's score (default 1, matching
rule r3 in Table II).
"""

from __future__ import annotations

#: (group members, dissimilarity score) — order inside a group is
#: irrelevant; every ordered pair becomes a substitution rule.
DEFAULT_GROUPS = [
    ({"publication", "publications", "article", "inproceedings",
      "proceedings", "paper", "book"}, 1),
    ({"database", "databases", "db"}, 1),
    ({"search", "retrieval", "lookup"}, 1),
    ({"keyword", "term"}, 1),
    ({"efficient", "fast", "scalable"}, 1),
    ({"evaluation", "assessment", "benchmark"}, 1),
    ({"method", "approach", "technique", "algorithm"}, 1),
    ({"query", "queries"}, 1),
    ({"author", "writer"}, 1),
    ({"journal", "magazine"}, 1),
    ({"web", "internet"}, 1),
    ({"learning", "training"}, 1),
    ({"match", "matching", "join"}, 2),
    ({"ranking", "scoring"}, 1),
    ({"semantic", "semantics"}, 1),
    ({"optimization", "optimisation", "tuning"}, 1),
    # Baseball domain.
    ({"player", "athlete"}, 1),
    ({"team", "club", "franchise"}, 1),
    ({"pitcher", "hurler"}, 1),
    ({"batting", "hitting"}, 1),
    ({"game", "games"}, 1),
    ({"season", "year"}, 2),
]


class Thesaurus:
    """Synonym lookup with per-group dissimilarity scores."""

    def __init__(self, groups=None):
        self._groups = []
        self._membership = {}
        for members, score in (groups if groups is not None else DEFAULT_GROUPS):
            self.add_group(members, score)

    def add_group(self, members, score=1):
        """Register a synonym group; a word may belong to many groups."""
        members = frozenset(word.lower() for word in members)
        group_id = len(self._groups)
        self._groups.append((members, score))
        for word in members:
            self._membership.setdefault(word, []).append(group_id)
        return group_id

    def synonyms(self, word):
        """``[(synonym, score), ...]`` for a word, deduplicated, sorted."""
        word = word.lower()
        best = {}
        for group_id in self._membership.get(word, ()):
            members, score = self._groups[group_id]
            for other in members:
                if other == word:
                    continue
                if other not in best or score < best[other]:
                    best[other] = score
        return sorted(best.items())

    def are_synonyms(self, a, b):
        """True when the two words share any group."""
        groups_a = set(self._membership.get(a.lower(), ()))
        groups_b = set(self._membership.get(b.lower(), ()))
        return bool(groups_a & groups_b)

    def score(self, a, b):
        """Smallest group score linking the words, or ``None``."""
        groups_a = set(self._membership.get(a.lower(), ()))
        groups_b = set(self._membership.get(b.lower(), ()))
        shared = groups_a & groups_b
        if not shared:
            return None
        return min(self._groups[group_id][1] for group_id in shared)

    def vocabulary(self):
        """All words known to the thesaurus."""
        return sorted(self._membership)

    def __len__(self):
        return len(self._groups)
