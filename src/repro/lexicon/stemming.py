"""Porter stemmer, implemented from scratch.

Word stemming is one of the four term-substitution flavours (Section
III-B: ``match`` -> ``matching``, Q_X4).  The rule miner uses stems to
propose substitution rules between a query term and corpus words that
share a stem.  This is the classic Porter (1980) algorithm — steps 1a
through 5b — which is deterministic and dependency-free.
"""

from __future__ import annotations

_VOWELS = set("aeiou")


def _is_consonant(word, index):
    ch = word[index]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(stem):
    """The Porter measure m: number of VC sequences in the stem."""
    forms = []
    for i in range(len(stem)):
        forms.append("c" if _is_consonant(stem, i) else "v")
    collapsed = []
    for form in forms:
        if not collapsed or collapsed[-1] != form:
            collapsed.append(form)
    return "".join(collapsed).count("vc")


def _contains_vowel(stem):
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word):
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word):
    if len(word) < 3:
        return False
    if not (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
    ):
        return False
    return word[-1] not in "wxy"


def _replace(word, suffix, replacement, min_measure):
    """If word ends with suffix and stem measure > min_measure, replace."""
    if not word.endswith(suffix):
        return None
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > min_measure:
        return stem + replacement
    return word


def _step_1a(word):
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word):
    if word.endswith("eed"):
        stem = word[:-3]
        return stem + "ee" if _measure(stem) > 0 else word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word):
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2 = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
    ("anci", "ance"), ("izer", "ize"), ("abli", "able"), ("alli", "al"),
    ("entli", "ent"), ("eli", "e"), ("ousli", "ous"), ("ization", "ize"),
    ("ation", "ate"), ("ator", "ate"), ("alism", "al"), ("iveness", "ive"),
    ("fulness", "ful"), ("ousness", "ous"), ("aliti", "al"),
    ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3 = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4 = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _step_2(word):
    for suffix, replacement in _STEP2:
        result = _replace(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step_3(word):
    for suffix, replacement in _STEP3:
        result = _replace(word, suffix, replacement, 0)
        if result is not None:
            return result
    return word


def _step_4(word):
    for suffix in _STEP4:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    if word.endswith("ion"):
        stem = word[:-3]
        if stem and stem[-1] in "st" and _measure(stem) > 1:
            return stem
    return word


def _step_5a(word):
    if word.endswith("e"):
        stem = word[:-1]
        measure = _measure(stem)
        if measure > 1 or (measure == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word):
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        return word[:-1]
    return word


def stem(word):
    """Porter stem of a lowercase word."""
    if len(word) <= 2:
        return word
    for step in (
        _step_1a, _step_1b, _step_1c, _step_2, _step_3, _step_4,
        _step_5a, _step_5b,
    ):
        word = step(word)
    return word


def share_stem(a, b):
    """True when two distinct words reduce to the same Porter stem."""
    return a != b and stem(a) == stem(b)
