"""Lexical substrate: refinement rules and the knowledge to mine them.

Covers Section III-B (the four refinement operations with their
dissimilarity scores) plus the supporting machinery the paper
outsources — edit distance, a Porter stemmer, a WordNet-style
thesaurus, an acronym table, and a rule miner standing in for the
paper's human annotators.
"""

from .acronyms import ACRONYM_SCORE, DEFAULT_ACRONYMS, AcronymTable
from .edit_distance import (
    bounded_distance,
    levenshtein,
    spelling_candidates,
    within_distance,
)
from .log_mining import mine_rules_from_log, rule_support
from .mining import RuleMiner
from .rules import (
    DEFAULT_DELETION_COST,
    OP_DELETION,
    OP_MERGING,
    OP_SPLIT,
    OP_SUBSTITUTION,
    RefinementRule,
    RuleSet,
    acronym_rules,
    merging_rule,
    split_rule,
    substitution_rule,
)
from .stemming import share_stem, stem
from .synonyms import DEFAULT_GROUPS, Thesaurus

__all__ = [
    "RefinementRule",
    "RuleSet",
    "RuleMiner",
    "mine_rules_from_log",
    "rule_support",
    "merging_rule",
    "split_rule",
    "substitution_rule",
    "acronym_rules",
    "OP_DELETION",
    "OP_MERGING",
    "OP_SPLIT",
    "OP_SUBSTITUTION",
    "DEFAULT_DELETION_COST",
    "levenshtein",
    "within_distance",
    "bounded_distance",
    "spelling_candidates",
    "stem",
    "share_stem",
    "Thesaurus",
    "DEFAULT_GROUPS",
    "AcronymTable",
    "DEFAULT_ACRONYMS",
    "ACRONYM_SCORE",
]
