"""Acronym expansion table (rule r6 of Table II: WWW <-> world wide web).

Acronym rules are bidirectional multi-word substitutions with a fixed
dissimilarity of 1 (Section III-B "for acronym expansion ... a score of
1 is designated").  The default table covers the computing and baseball
vocabulary the synthetic corpora use.
"""

from __future__ import annotations

#: acronym -> expansion word sequence.
DEFAULT_ACRONYMS = {
    "www": ("world", "wide", "web"),
    "ml": ("machine", "learning"),
    "ir": ("information", "retrieval"),
    "ai": ("artificial", "intelligence"),
    "db": ("data", "base"),
    "dbms": ("database", "management", "system"),
    "xml": ("extensible", "markup", "language"),
    "sql": ("structured", "query", "language"),
    "olap": ("online", "analytical", "processing"),
    "nlp": ("natural", "language", "processing"),
    "mlb": ("major", "league", "baseball"),
    "era": ("earned", "run", "average"),
    "rbi": ("runs", "batted", "in"),
}

#: Dissimilarity of any acronym expansion/contraction.
ACRONYM_SCORE = 1


class AcronymTable:
    """Bidirectional acronym <-> expansion lookup."""

    def __init__(self, table=None):
        self._expansions = {}
        self._contractions = {}
        for acronym, expansion in (
            table if table is not None else DEFAULT_ACRONYMS
        ).items():
            self.add(acronym, expansion)

    def add(self, acronym, expansion):
        """Register one acronym with its expansion word sequence."""
        acronym = acronym.lower()
        expansion = tuple(word.lower() for word in expansion)
        self._expansions[acronym] = expansion
        self._contractions[expansion] = acronym

    def expand(self, acronym):
        """Expansion tuple for an acronym, or ``None``."""
        return self._expansions.get(acronym.lower())

    def contract(self, words):
        """Acronym for a word sequence, or ``None``."""
        return self._contractions.get(tuple(w.lower() for w in words))

    def __contains__(self, acronym):
        return acronym.lower() in self._expansions

    def __len__(self):
        return len(self._expansions)

    def items(self):
        return self._expansions.items()
