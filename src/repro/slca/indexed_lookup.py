"""Indexed Lookup Eager SLCA (the `IL` algorithm of XKSearch [3]).

Iterates the nodes of the **shortest** keyword list; for each node the
closest match in every other list is found by binary search (the
``max(lm, rm)`` rule) and the candidate SLCA is the shallowest of the
per-list LCAs.  A streaming ancestor filter turns candidates into the
final SLCA set.  Runtime ``O(|S1| * m * log|Smax|)`` — sub-linear in
the long lists, which is why the paper's Fig. 4 baselines include it.
"""

from __future__ import annotations

from .lca import label_components, lca_candidate, remove_ancestors


def indexed_lookup_slca(keyword_label_lists):
    """SLCAs via XKSearch Indexed Lookup Eager.

    Parameters mirror :func:`repro.slca.stack.stack_slca`.
    """
    if not keyword_label_lists:
        return []
    if any(not labels for labels in keyword_label_lists):
        return []

    shortest_index = min(
        range(len(keyword_label_lists)),
        key=lambda i: len(keyword_label_lists[i]),
    )
    anchor_list = keyword_label_lists[shortest_index]
    # Input lists are doc-ordered (== sorted), so the packed component
    # arrays can be consumed as-is; sorted() still guards ad-hoc input.
    other_lists = [
        sorted(label_components(labels))
        for i, labels in enumerate(keyword_label_lists)
        if i != shortest_index
    ]

    candidates = []
    for anchor in anchor_list:
        candidate = lca_candidate(anchor, other_lists)
        if candidate is not None:
            candidates.append(candidate)
    return remove_ancestors(candidates)
