"""Search-for node inference and meaningful SLCA (Section III-A).

The search target of an XML keyword query is implicit; XRefine infers
it from data statistics.  Formula 1 scores each node type ``T``:

    C_for(T, Q) = ln(1 + sum_{k in Q} f_k^T) * r^depth(T)

where ``r`` in (0, 1) is a reduction factor penalizing deep (overly
specific) types, and the sum tolerates keywords absent from the data.
The desired *search-for* candidates ``T_for`` are the types whose
confidence is comparable to the maximum (Guideline 3 explicitly allows
several).

A query result is a **meaningful SLCA** (Definition 3.3) when it is an
SLCA *and* lies at-or-below some T-typed node for ``T in T_for``; a
query **needs refinement** (Definition 3.4) exactly when it has no
meaningful SLCA.
"""

from __future__ import annotations

import math

from ..errors import QueryError

#: Default reduction factor ``r`` of Formula 1.
DEFAULT_REDUCTION = 0.8
#: A type is kept in ``T_for`` when its confidence is at least this
#: fraction of the best one ("comparable confidence", Guideline 3).
DEFAULT_COMPARABLE_FRACTION = 0.85


class SearchForCandidate:
    """One inferred search-for node type with its confidence."""

    __slots__ = ("node_type", "confidence")

    def __init__(self, node_type, confidence):
        self.node_type = node_type
        self.confidence = confidence

    def __repr__(self):
        return (
            f"SearchForCandidate({'/'.join(self.node_type)}, "
            f"{self.confidence:.4f})"
        )


def confidence(index, node_type, keywords, reduction=DEFAULT_REDUCTION):
    """Formula 1 for one node type."""
    total_df = sum(index.xml_df(k, node_type) for k in keywords)
    depth = len(node_type)
    return math.log(1 + total_df) * reduction ** depth


def infer_search_for(
    index,
    keywords,
    reduction=DEFAULT_REDUCTION,
    comparable_fraction=DEFAULT_COMPARABLE_FRACTION,
    max_candidates=3,
):
    """Infer the list ``T_for`` of search-for node candidates.

    The document root type is excluded — a result equal to the whole
    document is the paper's canonical *meaningless* answer — and leaf
    value types with a single node are ranked out naturally by the
    depth penalty.

    Returns a list of :class:`SearchForCandidate`, best first; empty
    when no query keyword occurs in the document at all.
    """
    keywords = list(keywords)
    if not keywords:
        raise QueryError("cannot infer a search-for node for an empty query")
    root_type = index.tree.root.node_type
    scored = []
    for node_type, stats in index.statistics.items():
        if node_type == root_type:
            continue
        score = confidence(index, node_type, keywords, reduction)
        if score > 0.0:
            scored.append(SearchForCandidate(node_type, score))
    if not scored:
        return []
    scored.sort(key=lambda c: (-c.confidence, c.node_type))
    best = scored[0].confidence
    threshold = best * comparable_fraction
    kept = [c for c in scored if c.confidence >= threshold]
    return kept[:max_candidates]


def is_meaningful(slca_dewey, slca_type, search_for_types):
    """Definition 3.3 membership test for one SLCA result.

    ``slca_type`` is the node type (prefix path) of the SLCA node.  The
    result is meaningful when it is *self or descendant* of a node of
    some search-for type — i.e. some candidate type is a prefix of the
    SLCA's type path.
    """
    for candidate in search_for_types:
        if slca_type[: len(candidate)] == candidate:
            return True
    return False


def meaningful_slcas(index, slca_labels, search_for):
    """Filter SLCA labels down to the meaningful ones (Definition 3.3)."""
    types = [c.node_type for c in search_for]
    kept = []
    for label in slca_labels:
        node = index.tree.get(label)
        if node is None:
            continue
        if is_meaningful(label, node.node_type, types):
            kept.append(label)
    return kept


def needs_refinement(index, slca_labels, search_for):
    """Definition 3.4: True when the query has no meaningful SLCA."""
    return not meaningful_slcas(index, slca_labels, search_for)
