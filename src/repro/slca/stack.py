"""Stack-based SLCA computation (the `stack-slca` baseline of [3]).

A single pass over the merged keyword lists maintains the root-to-node
path of the current stream position as a stack.  Each entry records the
set of keywords witnessed in the (already fully visited) subtree of the
node it denotes.  When an entry is popped:

* if it witnessed **all** keywords and no descendant already produced a
  result inside it, the popped node is an SLCA;
* if a descendant produced a result, the node is *blocked* — it does
  contain all keywords but is not smallest — and the block propagates
  to its ancestors;
* otherwise its witness set is ORed into the parent.

This is the algorithm Algorithm 1 of the paper extends; it is exposed
separately so stack-refine can reuse the mechanics and the benchmarks
can time plain SLCA search.
"""

from __future__ import annotations

from ..xmltree.dewey import Dewey
from .lca import merge_lists


class _Entry:
    __slots__ = ("component", "mask", "blocked")

    def __init__(self, component):
        self.component = component
        self.mask = 0
        self.blocked = False


def stack_slca(keyword_label_lists):
    """SLCAs of nodes drawn from doc-ordered label lists, one per keyword.

    Parameters
    ----------
    keyword_label_lists:
        Sequence of lists of :class:`Dewey` labels, one list per query
        keyword, each in document order.

    Returns
    -------
    list[Dewey]
        All SLCA labels in document order.
    """
    num_keywords = len(keyword_label_lists)
    if num_keywords == 0:
        return []
    if any(not labels for labels in keyword_label_lists):
        return []
    full_mask = (1 << num_keywords) - 1

    stack = []
    results = []

    def pop_entry():
        entry = stack.pop()
        if entry.blocked:
            if stack:
                stack[-1].blocked = True
            return
        if entry.mask == full_mask:
            results.append(
                Dewey.from_trusted(
                    tuple(e.component for e in stack) + (entry.component,)
                )
            )
            if stack:
                stack[-1].blocked = True
            return
        if stack:
            stack[-1].mask |= entry.mask

    for label, keyword_index in merge_lists(keyword_label_lists):
        components = label.components
        # Length of the shared prefix between the stack and this label.
        shared = 0
        for entry, component in zip(stack, components):
            if entry.component != component:
                break
            shared += 1
        while len(stack) > shared:
            pop_entry()
        for component in components[shared:]:
            stack.append(_Entry(component))
        stack[-1].mask |= 1 << keyword_index

    while stack:
        pop_entry()
    return results
