"""ELCA — Exclusive LCA semantics (the XRank family).

The SLCA variants in this package return only the *smallest* nodes
containing all keywords.  ELCA (Guo et al.'s XRank semantics) is the
other classic conjunctive answer set: a node ``v`` is an ELCA when it
contains at least one occurrence of **every** keyword that is not
swallowed by a contains-all descendant — formally, for each keyword
``k_i`` there is an occurrence ``x_i`` in ``subtree(v)`` such that no
proper descendant ``u`` of ``v`` with ``subtree(u)`` containing all
keywords lies on the path to ``x_i``.

Every SLCA is an ELCA, but an ancestor with *own* evidence for every
keyword is an additional ELCA.  The engine exposes ELCA alongside the
SLCA baselines so the result semantics are swappable; the paper's
refinement machinery is orthogonal to this choice (Lemma 3).

The implementation is a single stack pass over the merged lists that
tracks two witness masks per entry:

* ``true_mask`` — keywords witnessed anywhere in the subtree (decides
  *contains-all* status);
* ``live_mask`` — keywords witnessed outside contains-all descendants
  (decides ELCA status).

A popped contains-all node consumes its witnesses (nothing propagates);
everything else propagates both masks.
"""

from __future__ import annotations

import bisect

from ..xmltree.dewey import Dewey, descendant_range_key
from .lca import merge_lists


class _Entry:
    __slots__ = ("component", "true_mask", "live_mask")

    def __init__(self, component):
        self.component = component
        self.true_mask = 0
        self.live_mask = 0


def elca(keyword_label_lists):
    """ELCAs of doc-ordered label lists, one per keyword, in doc order."""
    num_keywords = len(keyword_label_lists)
    if num_keywords == 0:
        return []
    if any(not labels for labels in keyword_label_lists):
        return []
    full_mask = (1 << num_keywords) - 1

    stack = []
    results = []

    def pop_entry():
        entry = stack.pop()
        if entry.live_mask == full_mask:
            results.append(
                Dewey.from_trusted(
                    tuple(e.component for e in stack) + (entry.component,)
                )
            )
        if not stack:
            return
        # true_mask always flows up: contains-all status of an ancestor
        # does not depend on where the witnesses sit.  live_mask is
        # consumed by a contains-all node: ancestors may only use
        # occurrences outside such subtrees.
        stack[-1].true_mask |= entry.true_mask
        if entry.true_mask != full_mask:
            stack[-1].live_mask |= entry.live_mask

    for label, keyword_index in merge_lists(keyword_label_lists):
        components = label.components
        shared = 0
        for entry, component in zip(stack, components):
            if entry.component != component:
                break
            shared += 1
        while len(stack) > shared:
            pop_entry()
        for component in components[shared:]:
            stack.append(_Entry(component))
        bit = 1 << keyword_index
        stack[-1].true_mask |= bit
        stack[-1].live_mask |= bit

    while stack:
        pop_entry()
    results.sort()
    return results


def brute_force_elca(tree, keyword_label_lists):
    """Reference ELCA by exhaustive checks (test oracle only)."""
    if not keyword_label_lists:
        return []
    if any(not labels for labels in keyword_label_lists):
        return []
    sorted_lists = [
        sorted(label.components for label in labels)
        for labels in keyword_label_lists
    ]

    def occurrences_under(components_list, root):
        lo = bisect.bisect_left(components_list, root.components)
        hi = bisect.bisect_left(
            components_list, descendant_range_key(root)
        )
        return components_list[lo:hi]

    contains_all = [
        node.dewey
        for node in tree.iter_nodes()
        if all(
            occurrences_under(components, node.dewey)
            for components in sorted_lists
        )
    ]

    results = []
    for v in contains_all:
        blockers = [
            u for u in contains_all if v.is_ancestor_of(u)
        ]
        is_elca = True
        for components in sorted_lists:
            witnesses = occurrences_under(components, v)
            if not any(
                all(
                    not u.is_ancestor_or_self_of(Dewey(x))
                    for u in blockers
                )
                for x in witnesses
            ):
                is_elca = False
                break
        if is_elca:
            results.append(v)
    return sorted(results)
