"""LCA primitives shared by the SLCA algorithms.

Everything here works on :class:`~repro.xmltree.dewey.Dewey` labels —
the algorithms never need the tree itself, only label arithmetic plus
sorted keyword lists.
"""

from __future__ import annotations

import bisect

from ..errors import QueryError
from ..xmltree.dewey import Dewey


def label_components(labels):
    """Doc-ordered component tuples for a label list.

    Packed posting lists (:class:`repro.perf.packed.PackedPostings`)
    carry their component array precomputed; plain ``Dewey`` lists are
    unpacked on the fly.  The returned list must be treated as
    read-only — it may be shared with the packed cache.
    """
    packed = getattr(labels, "components", None)
    if packed is not None:
        return packed
    return [label.components for label in labels]


def remove_ancestors(candidates):
    """Keep only the smallest (deepest) candidates.

    Given candidate LCA labels, drop every label that has a proper
    descendant in the set — the final step that turns LCA candidates
    into SLCAs.  Returns labels sorted in document order.
    """
    ordered = sorted(set(candidates))
    kept = []
    for label in ordered:
        while kept and kept[-1].is_ancestor_of(label):
            kept.pop()
        kept.append(label)
    # After the single pass, an earlier entry can never be a descendant
    # of a later one (document order), so `kept` is exactly the SLCAs.
    return kept


def closest_match(sorted_components, target):
    """Best match for ``target`` in a doc-ordered list of component tuples.

    Returns the element of the list whose LCA with ``target`` is
    deepest — the ``max(lm, rm)`` choice of XKSearch's Indexed Lookup
    Eager.  ``None`` for an empty list.
    """
    if not sorted_components:
        return None
    target_key = target.components
    idx = bisect.bisect_left(sorted_components, target_key)
    left = sorted_components[idx - 1] if idx > 0 else None
    right = sorted_components[idx] if idx < len(sorted_components) else None
    if left is None:
        return Dewey.from_trusted(right)
    if right is None:
        return Dewey.from_trusted(left)
    left_depth = _shared_prefix_len(left, target_key)
    right_depth = _shared_prefix_len(right, target_key)
    if left_depth >= right_depth:
        return Dewey.from_trusted(left)
    return Dewey.from_trusted(right)


def _shared_prefix_len(a, b):
    shared = 0
    for x, y in zip(a, b):
        if x != y:
            break
        shared += 1
    return shared


def lca_candidate(anchor, other_lists):
    """LCA of ``anchor`` with its closest match from every other list.

    All per-list LCAs are ancestors-or-self of ``anchor``, hence totally
    ordered by depth; the candidate is the shallowest.  Returns ``None``
    when some list is empty (no result can contain every keyword).
    """
    candidate = anchor
    for components in other_lists:
        match = closest_match(components, anchor)
        if match is None:
            return None
        lca = anchor.lca(match)
        if lca.depth < candidate.depth:
            candidate = lca
    return candidate


def merge_lists(lists):
    """Merge doc-ordered posting label lists into one sorted stream.

    Yields ``(Dewey, list_index)`` pairs; duplicates across lists are
    preserved (each carries its own list index).
    """
    import heapq

    def stream(index, labels):
        for label in labels:
            yield label.components, index, label

    streams = [stream(index, labels) for index, labels in enumerate(lists)]
    for _, index, label in heapq.merge(*streams):
        yield label, index


def brute_force_slca(tree, keyword_lists):
    """Reference SLCA computation by exhaustive subtree checks.

    Only used by the test suite to validate the real algorithms on
    small documents.  ``keyword_lists`` is a list of doc-ordered label
    lists (one per keyword).
    """
    if not keyword_lists:
        raise QueryError("brute_force_slca needs at least one keyword list")
    if any(not labels for labels in keyword_lists):
        return []
    sorted_lists = [
        sorted(label.components for label in labels)
        for labels in keyword_lists
    ]
    containing = []
    for node in tree.iter_nodes():
        if all(
            _contains_under(components, node.dewey)
            for components in sorted_lists
        ):
            containing.append(node.dewey)
    return remove_ancestors(containing)


def _contains_under(sorted_components, root):
    from ..xmltree.dewey import descendant_range_key

    lo = bisect.bisect_left(sorted_components, root.components)
    return (
        lo < len(sorted_components)
        and sorted_components[lo] < descendant_range_key(root)
    )
