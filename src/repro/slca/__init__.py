"""SLCA substrate: baseline algorithms plus meaningful-SLCA semantics.

Implements the SLCA machinery the paper builds on — the stack-based
and (indexed-lookup / scan) eager algorithms of XKSearch [3] and the
multiway skipping of [8] — together with the paper's own Section III-A
extensions: search-for node inference (Formula 1) and the meaningful
SLCA test (Definitions 3.3 and 3.4).
"""

from .elca import brute_force_elca, elca
from .indexed_lookup import indexed_lookup_slca
from .lca import (
    brute_force_slca,
    closest_match,
    label_components,
    lca_candidate,
    merge_lists,
    remove_ancestors,
)
from .meaningful import (
    DEFAULT_COMPARABLE_FRACTION,
    DEFAULT_REDUCTION,
    SearchForCandidate,
    confidence,
    infer_search_for,
    is_meaningful,
    meaningful_slcas,
    needs_refinement,
)
from .multiway import multiway_slca
from .scan_eager import scan_eager_slca
from .stack import stack_slca

__all__ = [
    "stack_slca",
    "elca",
    "brute_force_elca",
    "scan_eager_slca",
    "indexed_lookup_slca",
    "multiway_slca",
    "brute_force_slca",
    "remove_ancestors",
    "closest_match",
    "label_components",
    "lca_candidate",
    "merge_lists",
    "SearchForCandidate",
    "confidence",
    "infer_search_for",
    "is_meaningful",
    "meaningful_slcas",
    "needs_refinement",
    "DEFAULT_REDUCTION",
    "DEFAULT_COMPARABLE_FRACTION",
]
