"""Multiway-SLCA (basic variant of Sun, Chan and Goenka [8]).

Instead of anchoring every node of the shortest list, Multiway-SLCA
picks an *anchor* — the document-order maximum of the current heads of
all lists — computes one candidate from the closest matches around it,
then fast-forwards every cursor past the anchor.  Each iteration
consumes at least one element from every list whose head preceded the
anchor, "maximizing the skip of redundant LCA computations contributing
to the same SLCA result" (Section II).

Matches are located by whole-list binary search, so skipping cursor
positions never loses a match; a final ancestor filter plus containment
verification make the output exactly the SLCA set.
"""

from __future__ import annotations

import bisect

from .lca import label_components, lca_candidate, remove_ancestors


def multiway_slca(keyword_label_lists):
    """SLCAs via anchor-driven multiway skipping."""
    if not keyword_label_lists:
        return []
    if any(not labels for labels in keyword_label_lists):
        return []

    lists = [list(labels) for labels in keyword_label_lists]
    sorted_components = [
        label_components(labels) for labels in keyword_label_lists
    ]
    positions = [0] * len(lists)
    candidates = []

    while all(pos < len(lst) for pos, lst in zip(positions, lists)):
        # Anchor: document-order maximum of the current heads.
        heads = [lists[i][positions[i]] for i in range(len(lists))]
        anchor_index = max(
            range(len(heads)), key=lambda i: heads[i].components
        )
        anchor = heads[anchor_index]

        other = [
            comps
            for i, comps in enumerate(sorted_components)
            if i != anchor_index
        ]
        candidate = lca_candidate(anchor, other)
        if candidate is not None:
            candidates.append(candidate)

        # Every list fast-forwards past the anchor.
        for i, comps in enumerate(sorted_components):
            positions[i] = bisect.bisect_right(
                comps, anchor.components, lo=positions[i]
            )

    return remove_ancestors(candidates)
