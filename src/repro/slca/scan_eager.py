"""Scan Eager SLCA (the `scan-slca` baseline of [3]).

Like Indexed Lookup Eager it anchors on the shortest list, but the
closest matches in the other lists are found by advancing forward
pointers instead of binary searching — better when keyword frequencies
are of similar magnitude, and the variant the paper's Partition and SLE
algorithms delegate their per-partition SLCA computation to.

Each list pointer only ever moves forward, so a query costs one scan of
every list: ``O(sum |Si|)`` plus the candidate filtering.
"""

from __future__ import annotations

from bisect import bisect_right

from ..xmltree.dewey import Dewey
from .lca import label_components, remove_ancestors


class _ForwardMatcher:
    """Forward-only closest-match finder over one label list."""

    __slots__ = ("components", "position")

    def __init__(self, labels):
        self.components = label_components(labels)
        self.position = 0

    def match(self, target):
        """Element with the deepest LCA vs ``target``; pointer moves forward.

        Correct as long as successive targets are non-decreasing in
        document order (they are: the anchor list is scanned in order).
        The pointer advances by galloping — exponential probing followed
        by a binary search inside the final bracket — so matching a long
        list against a short anchor costs O(log gap) per step instead of
        walking every skipped posting.
        """
        components = self.components
        target_key = target.components
        pos = self.position
        size = len(components)
        if pos + 1 < size and components[pos + 1] <= target_key:
            # Gallop: double the step until we overshoot (or run off
            # the end), then binary-search the bracket.  Lands on the
            # last element <= target, exactly where the former linear
            # "advance while next <= target" walk stopped.
            step = 1
            while pos + step < size and components[pos + step] <= target_key:
                step <<= 1
            pos = (
                bisect_right(
                    components,
                    target_key,
                    pos + (step >> 1),
                    min(pos + step, size),
                )
                - 1
            )
            self.position = pos
        current = components[pos]
        if current > target_key and pos > 0:
            # current is the right match; previous is the left match.
            left = components[pos - 1]
            if _shared(left, target_key) >= _shared(current, target_key):
                return Dewey.from_trusted(left)
            return Dewey.from_trusted(current)
        if current <= target_key:
            nxt = components[pos + 1] if pos + 1 < size else None
            if nxt is not None and _shared(nxt, target_key) > _shared(
                current, target_key
            ):
                return Dewey.from_trusted(nxt)
            return Dewey.from_trusted(current)
        return Dewey.from_trusted(current)


def _shared(a, b):
    shared = 0
    for x, y in zip(a, b):
        if x != y:
            break
        shared += 1
    return shared


def scan_eager_slca(keyword_label_lists):
    """SLCAs via XKSearch Scan Eager; parameters as in ``stack_slca``."""
    if not keyword_label_lists:
        return []
    if any(not labels for labels in keyword_label_lists):
        return []

    # Packed posting arrays carry precomputed columns; when every list
    # does, the columnar batch kernel computes the same answer with
    # whole-column sweeps (and a compiled fast path when available).
    from ..kernels import columns_of_labels, slca_columns

    columns = [columns_of_labels(labels) for labels in keyword_label_lists]
    if all(column is not None for column in columns):
        return slca_columns(columns)

    shortest_index = min(
        range(len(keyword_label_lists)),
        key=lambda i: len(keyword_label_lists[i]),
    )
    anchor_list = keyword_label_lists[shortest_index]
    # Shortest lists first: their matches tend to produce the shallow
    # LCAs that trigger the depth-1 early exit below, and the order is
    # output-invariant (equal-depth LCAs of one anchor are the same
    # label, so the min-depth winner does not depend on the order).
    matchers = [
        _ForwardMatcher(labels)
        for labels in sorted(
            (
                labels
                for i, labels in enumerate(keyword_label_lists)
                if i != shortest_index
            ),
            key=len,
        )
    ]

    candidates = []
    for anchor in anchor_list:
        candidate = anchor
        for matcher in matchers:
            lca = anchor.lca(matcher.match(anchor))
            if lca.depth < candidate.depth:
                candidate = lca
                if candidate.depth == 1:
                    break
        candidates.append(candidate)
    return remove_ancestors(candidates)
