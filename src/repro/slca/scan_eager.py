"""Scan Eager SLCA (the `scan-slca` baseline of [3]).

Like Indexed Lookup Eager it anchors on the shortest list, but the
closest matches in the other lists are found by advancing forward
pointers instead of binary searching — better when keyword frequencies
are of similar magnitude, and the variant the paper's Partition and SLE
algorithms delegate their per-partition SLCA computation to.

Each list pointer only ever moves forward, so a query costs one scan of
every list: ``O(sum |Si|)`` plus the candidate filtering.
"""

from __future__ import annotations

from ..xmltree.dewey import Dewey
from .lca import label_components, remove_ancestors


class _ForwardMatcher:
    """Forward-only closest-match finder over one label list."""

    __slots__ = ("components", "position")

    def __init__(self, labels):
        self.components = label_components(labels)
        self.position = 0

    def match(self, target):
        """Element with the deepest LCA vs ``target``; pointer moves forward.

        Correct as long as successive targets are non-decreasing in
        document order (they are: the anchor list is scanned in order).
        """
        components = self.components
        target_key = target.components
        # Advance while the *next* element is still <= target.
        while (
            self.position + 1 < len(components)
            and components[self.position + 1] <= target_key
        ):
            self.position += 1
        current = components[self.position]
        if current > target_key and self.position > 0:
            # current is the right match; previous is the left match.
            left = components[self.position - 1]
            if _shared(left, target_key) >= _shared(current, target_key):
                return Dewey.from_trusted(left)
            return Dewey.from_trusted(current)
        if current <= target_key:
            nxt = (
                components[self.position + 1]
                if self.position + 1 < len(components)
                else None
            )
            if nxt is not None and _shared(nxt, target_key) > _shared(
                current, target_key
            ):
                return Dewey.from_trusted(nxt)
            return Dewey.from_trusted(current)
        return Dewey.from_trusted(current)


def _shared(a, b):
    shared = 0
    for x, y in zip(a, b):
        if x != y:
            break
        shared += 1
    return shared


def scan_eager_slca(keyword_label_lists):
    """SLCAs via XKSearch Scan Eager; parameters as in ``stack_slca``."""
    if not keyword_label_lists:
        return []
    if any(not labels for labels in keyword_label_lists):
        return []

    shortest_index = min(
        range(len(keyword_label_lists)),
        key=lambda i: len(keyword_label_lists[i]),
    )
    anchor_list = keyword_label_lists[shortest_index]
    matchers = [
        _ForwardMatcher(labels)
        for i, labels in enumerate(keyword_label_lists)
        if i != shortest_index
    ]

    candidates = []
    for anchor in anchor_list:
        candidate = anchor
        for matcher in matchers:
            lca = anchor.lca(matcher.match(anchor))
            if lca.depth < candidate.depth:
                candidate = lca
        candidates.append(candidate)
    return remove_ancestors(candidates)
