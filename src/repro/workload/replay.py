"""Million-entry traffic synthesis and a streaming log replayer.

The paper's query pool comes from a live demo's log; its refinement
rules are mined from user *rewrite* sessions in that log.  This module
scales that artifact up from hundreds of entries to millions, with the
four properties real keyword-search traffic exhibits and uniform
random sampling does not:

**Zipf term skew.**  Query popularity follows a power law
(``zipf_s``): a small head dominates, a long tail trickles.  Ambiguous
head queries dominating real logs is precisely the skew a
frequency-aware cache exploits.

**Temporal drift.**  Traffic comes in ``phases``; each phase draws its
popularity ranking from a fresh permutation of the query universe, so
yesterday's head is today's tail.  Drift is what separates a cache
with frequency *aging* from one that trusts stale counts forever.

**Burst arrival.**  Inter-arrival gaps are Pareto (heavy-tailed,
``burst_alpha``), the standard self-similar traffic model: long quiet
stretches punctuated by dense bursts, rather than Poisson smoothness.

**Session reformulation chains.**  A share of submissions are
sessions: a corrupted query (built by the existing corruption
operators over a sampled intent) followed by the user's manual fix —
the rewrite-pair phenomenon at the heart of the source paper's log
study.  Chains are how the sub-result cache earns its keep: the fix's
term set was just deposited by the corrupted query's refinement
evaluation.

The whole synthesis is a pure function of its parameters and ``seed``
(or a caller-threaded ``rng``) — independent of ``PYTHONHASHSEED``.

:func:`replay_traffic` streams a :class:`TrafficLog` through an engine
and reports sustained throughput, per-phase tail latency, and cache
hit rates, optionally pacing to a target QPS and sampling responses
for the replay-vs-cold oracle diff
(:func:`repro.verify.oracle.replay_cold_diff`).
"""

from __future__ import annotations

import random
import time
from array import array
from bisect import bisect_left

from .corruption import ALL_KINDS
from .generator import WorkloadGenerator

#: Sentinel parent index for queries that are intents (not variants).
_NO_PARENT = 0xFFFFFFFF


class TrafficLog:
    """A synthesized traffic trace, stored columnar for million-entry scale.

    ``universe`` holds each distinct query once; entries are parallel
    arrays of universe indexes, timestamps (seconds on a virtual
    clock) and session ids.  ``phases`` lists ``(name, start, end)``
    entry bounds.  Iterate with :meth:`entries`.
    """

    __slots__ = (
        "universe", "parents", "query_index", "timestamps",
        "session_ids", "phases", "config",
    )

    def __init__(self, universe, parents, config):
        self.universe = universe
        self.parents = parents
        self.query_index = array("I")
        self.timestamps = array("d")
        self.session_ids = array("I")
        self.phases = []
        self.config = config

    def __len__(self):
        return len(self.query_index)

    def unique_queries(self):
        return len(self.universe)

    def entries(self, start=0, end=None):
        """Yield ``(session_id, timestamp, query)`` over an entry range."""
        end = len(self.query_index) if end is None else end
        universe = self.universe
        query_index = self.query_index
        timestamps = self.timestamps
        session_ids = self.session_ids
        for position in range(start, end):
            yield (
                session_ids[position],
                timestamps[position],
                universe[query_index[position]],
            )

    def __repr__(self):
        return (
            f"TrafficLog({len(self)} entries, "
            f"{len(self.universe)} unique, {len(self.phases)} phases)"
        )


def _build_universe(index, unique_queries, variants_per_intent, rng,
                    generator):
    """Distinct intents plus corrupted variants, each linked to its intent."""
    universe = []
    parents = []
    seen = set()

    def admit(query, parent):
        signature = tuple(sorted(set(query)))
        if not query or signature in seen:
            return None
        seen.add(signature)
        universe.append(tuple(query))
        parents.append(parent)
        return len(universe) - 1

    attempts = 0
    limit = 40 * unique_queries
    while len(universe) < unique_queries and attempts < limit:
        attempts += 1
        intent = generator.sample_intent()
        intent_position = admit(intent, _NO_PARENT)
        if intent_position is None:
            continue
        made = 0
        tries = 0
        while (
            made < variants_per_intent
            and tries < 4 * variants_per_intent
            and len(universe) < unique_queries
        ):
            tries += 1
            kind = rng.choice(ALL_KINDS)
            corrupted, applied = generator.corrupt(list(intent), [kind])
            if corrupted is None or tuple(corrupted) == tuple(intent):
                continue
            if admit(corrupted, intent_position) is not None:
                made += 1
    return universe, parents


def synthesize_traffic(
    index,
    entries=1_000_000,
    unique_queries=4000,
    zipf_s=1.0,
    phases=3,
    noise_share=0.25,
    chain_probability=0.5,
    variants_per_intent=2,
    burst_alpha=1.5,
    mean_gap_seconds=0.02,
    seed=97,
    rng=None,
    generator=None,
):
    """Synthesize a :class:`TrafficLog` against a corpus.

    Parameters
    ----------
    entries:
        Total submissions to generate (chains may run one entry over).
    unique_queries:
        Size of the distinct-query universe (intents + variants).
    zipf_s:
        Zipf exponent of the popularity distribution.
    phases:
        Number of drift phases; each re-permutes the popularity
        ranking, so the hot head changes across phases.
    noise_share:
        Fraction of draws taken *uniformly* from the universe instead
        of from the Zipf head — the one-hit-wonder noise floor that
        separates frequency-gated admission from plain recency.
    chain_probability:
        Probability that a corrupted-variant submission is followed,
        in the same session, by its clean intent (the rewrite).
    variants_per_intent:
        Corrupted variants built per sampled intent.
    burst_alpha:
        Pareto shape of the inter-arrival gaps (lower = burstier).
    mean_gap_seconds:
        Mean inter-arrival gap of the virtual clock.
    seed / rng / generator:
        One master seed, or a caller-threaded :class:`random.Random`
        (plus optionally a pre-built generator on the same stream) —
        the same end-to-end seeding contract as
        :func:`~repro.workload.querylog.simulate_log`.
    """
    if rng is None:
        rng = random.Random(seed)
    if generator is None:
        generator = WorkloadGenerator(index, seed=rng.randrange(2**31))

    universe, parents = _build_universe(
        index, unique_queries, variants_per_intent, rng, generator
    )
    if not universe:
        raise ValueError("traffic universe is empty; corpus too sparse")

    config = {
        "entries": entries,
        "unique_queries": len(universe),
        "zipf_s": zipf_s,
        "phases": phases,
        "noise_share": noise_share,
        "chain_probability": chain_probability,
        "variants_per_intent": variants_per_intent,
        "burst_alpha": burst_alpha,
        "mean_gap_seconds": mean_gap_seconds,
        "seed": seed,
    }
    traffic = TrafficLog(universe, parents, config)

    population = len(universe)
    cumulative = array("d")
    total = 0.0
    for rank in range(1, population + 1):
        total += 1.0 / rank**zipf_s
        cumulative.append(total)

    # Pareto gaps normalized to the requested mean (E[pareto] for
    # alpha > 1 is alpha / (alpha - 1)).
    gap_scale = mean_gap_seconds * (burst_alpha - 1.0) / burst_alpha

    clock = 0.0
    session_id = 0
    per_phase = max(1, entries // phases)
    for phase_number in range(phases):
        phase_start = len(traffic.query_index)
        # Fresh popularity ranking: rank r of this phase maps to a
        # (seeded) permuted universe position — the drift.
        permutation = list(range(population))
        rng.shuffle(permutation)
        target = (
            entries - len(traffic.query_index)
            if phase_number == phases - 1
            else per_phase
        )
        produced = 0
        while produced < target:
            clock += gap_scale * rng.paretovariate(burst_alpha)
            if rng.random() < noise_share:
                position = permutation[rng.randrange(population)]
            else:
                rank = bisect_left(cumulative, rng.random() * total)
                position = permutation[min(rank, population - 1)]
            traffic.query_index.append(position)
            traffic.timestamps.append(clock)
            traffic.session_ids.append(session_id)
            produced += 1
            parent = parents[position]
            if parent != _NO_PARENT and rng.random() < chain_probability:
                # The session's manual rewrite: the clean intent, a
                # few (virtual) seconds later.
                clock += 10.0 * gap_scale * rng.paretovariate(burst_alpha)
                traffic.query_index.append(parent)
                traffic.timestamps.append(clock)
                traffic.session_ids.append(session_id)
                produced += 1
            session_id += 1
        traffic.phases.append(
            {
                "name": f"phase{phase_number}",
                "start": phase_start,
                "end": len(traffic.query_index),
            }
        )
    return traffic


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    position = min(
        len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1))
    )
    return sorted_values[position]


class ReplayReport:
    """Per-phase and overall measurements of one replay run."""

    __slots__ = ("phases", "overall", "samples", "config")

    def __init__(self, phases, overall, samples, config):
        self.phases = phases
        self.overall = overall
        self.samples = samples
        self.config = config

    def as_dict(self):
        return {
            "config": self.config,
            "phases": self.phases,
            "overall": self.overall,
        }

    def __repr__(self):
        qps = self.overall.get("qps", 0.0)
        hit = self.overall.get("hit_rate", 0.0)
        return f"ReplayReport(qps={qps:.0f}, hit_rate={hit:.3f})"


def replay_traffic(
    engine,
    traffic,
    k=1,
    algorithm="auto",
    target_qps=None,
    oracle_samples=0,
    search_kwargs=None,
):
    """Stream a :class:`TrafficLog` through an engine and measure it.

    Runs closed-loop as fast as the engine answers (the sustained-
    throughput measurement) unless ``target_qps`` paces submissions on
    the wall clock.  Returns a :class:`ReplayReport` with per-phase
    sustained QPS, p50/p95/p99 latency, and the per-phase *delta* of
    every cache layer's counters — hit rates are attributable to the
    phase, not smeared over the whole run.

    ``oracle_samples`` > 0 records evenly spaced ``(query, k,
    algorithm, fingerprint)`` samples for
    :func:`repro.verify.oracle.replay_cold_diff` — the byte-identity
    check that the cache layers never changed an answer.
    """
    from ..verify.oracle import response_fingerprint

    search_kwargs = dict(search_kwargs or {})
    samples = []
    stride = (
        max(1, len(traffic) // oracle_samples) if oracle_samples else 0
    )
    phase_reports = []
    total_entries = 0
    total_busy = 0.0
    run_started = time.perf_counter()
    for phase in traffic.phases:
        result_before = engine.result_cache.stats()
        sub_before = engine.subresult_cache.stats()
        latencies = []
        phase_started = time.perf_counter()
        position = phase["start"]
        for _session, _timestamp, query in traffic.entries(
            phase["start"], phase["end"]
        ):
            if target_qps is not None:
                ahead = (
                    total_entries / target_qps
                    - (time.perf_counter() - run_started)
                )
                if ahead > 0:
                    time.sleep(ahead)
            started = time.perf_counter()
            response = engine.search(
                query, k=k, algorithm=algorithm, **search_kwargs
            )
            latencies.append(time.perf_counter() - started)
            if stride and position % stride == 0:
                samples.append(
                    (query, k, algorithm, response_fingerprint(response))
                )
            position += 1
            total_entries += 1
        busy = time.perf_counter() - phase_started
        total_busy += busy
        result_after = engine.result_cache.stats()
        sub_after = engine.subresult_cache.stats()
        latencies.sort()
        delta = {
            counter: result_after[counter] - result_before[counter]
            for counter in (
                "hits", "misses", "invalidations", "evictions",
                "admission_rejects", "expirations",
            )
        }
        lookups = delta["hits"] + delta["misses"]
        count = phase["end"] - phase["start"]
        phase_reports.append(
            {
                "name": phase["name"],
                "entries": count,
                "seconds": busy,
                "qps": count / busy if busy > 0 else 0.0,
                "p50_ms": _percentile(latencies, 0.50) * 1e3,
                "p95_ms": _percentile(latencies, 0.95) * 1e3,
                "p99_ms": _percentile(latencies, 0.99) * 1e3,
                "hit_rate": delta["hits"] / lookups if lookups else 0.0,
                "result_cache": delta,
                "subresult_hits": sub_after["hits"] - sub_before["hits"],
                "subresult_deposits": (
                    sub_after["deposits"] - sub_before["deposits"]
                ),
            }
        )
    result_stats = engine.result_cache.stats()
    lookups = result_stats["hits"] + result_stats["misses"]
    overall = {
        "entries": total_entries,
        "seconds": total_busy,
        "qps": total_entries / total_busy if total_busy > 0 else 0.0,
        "hit_rate": result_stats["hits"] / lookups if lookups else 0.0,
        "result_cache": result_stats,
        "subresults": engine.subresult_cache.stats(),
    }
    return ReplayReport(phase_reports, overall, samples, traffic.config)
