"""Query pool generation with ground-truth intents (Section VIII).

The paper draws 219 empty-result queries (average length 3.92) plus 100
queries with results from a live demo log.  This module reconstructs
that pool synthetically with a crucial bonus the real log lacks:
**ground truth**.  Each pool entry records

* ``intent`` — a clean query sampled from one entity subtree of the
  corpus (so it is guaranteed to have a meaningful result);
* ``query`` — the intent after one (or several mixed) corruption(s);
* ``kinds`` — which corruption classes were applied;
* the intent's meaningful SLCA results, for effectiveness scoring.

A :class:`PoolQuery` whose corrupted form *accidentally* still has a
meaningful result is rejected and regenerated, keeping the "needs
refinement" pool pure, exactly as the paper filtered its log down to
the empty-result queries.
"""

from __future__ import annotations

import random

from ..errors import DatasetError
from ..index.tokenize_text import extract_terms
from ..lexicon.acronyms import AcronymTable
from ..lexicon.synonyms import Thesaurus
from ..slca.meaningful import infer_search_for, meaningful_slcas
from ..slca.scan_eager import scan_eager_slca
from .corruption import ALL_KINDS, CORRUPTORS, OVERCONSTRAIN


class PoolQuery:
    """One workload query with its ground truth."""

    __slots__ = ("query", "intent", "kinds", "intent_results", "refinable")

    def __init__(self, query, intent, kinds, intent_results, refinable):
        self.query = tuple(query)
        self.intent = tuple(intent)
        self.kinds = tuple(kinds)
        self.intent_results = list(intent_results)
        self.refinable = refinable

    @property
    def length(self):
        return len(self.query)

    def __repr__(self):
        status = "refinable" if self.refinable else "clean"
        return (
            f"PoolQuery({' '.join(self.query)!r} <- "
            f"{' '.join(self.intent)!r}, {status}, kinds={self.kinds})"
        )


class WorkloadGenerator:
    """Samples intents from a corpus and corrupts them deterministically.

    Parameters
    ----------
    index:
        The corpus :class:`~repro.index.builder.DocumentIndex`.
    entity_tags:
        Tags of the entity subtrees intents are sampled from (defaults
        suit the bundled DBLP/Baseball generators).
    seed:
        Master seed; the generator is fully deterministic (its output
        never depends on ``PYTHONHASHSEED``).
    rng:
        A pre-seeded :class:`random.Random` to draw from instead of
        building one from ``seed`` — lets a caller thread one master
        RNG through every layer of a composite workload.
    """

    def __init__(
        self,
        index,
        entity_tags=("inproceedings", "article", "book", "player", "team"),
        seed=23,
        thesaurus=None,
        acronyms=None,
        rng=None,
    ):
        self.index = index
        self.rng = rng if rng is not None else random.Random(seed)
        self.thesaurus = thesaurus if thesaurus is not None else Thesaurus()
        self.acronyms = acronyms if acronyms is not None else AcronymTable()
        self.vocabulary = set(index.inverted.keywords())
        self._entities = [
            node
            for node in index.tree.iter_nodes()
            if node.tag in set(entity_tags)
        ]
        if not self._entities:
            raise DatasetError(
                f"no entity nodes with tags {entity_tags} in the corpus"
            )
        # Stranger terms for over-constraining: rare corpus keywords.
        # The sort key must be total — list length alone leaves ties at
        # the cutoff to set-iteration order, which varies per process
        # with hash randomization and silently changed the "fully
        # deterministic" workload between runs.
        lengths = [
            (keyword, index.inverted.list_length(keyword))
            for keyword in self.vocabulary
        ]
        lengths.sort(key=lambda pair: (pair[1], pair[0]))
        self._rare_terms = [keyword for keyword, _ in lengths[:50]]

    # ------------------------------------------------------------------
    def sample_intent(self, min_terms=2, max_terms=4):
        """A clean query drawn from one entity subtree.

        All keywords come from the same subtree, so the intent has at
        least one non-root SLCA by construction.
        """
        for _ in range(64):
            entity = self.rng.choice(self._entities)
            terms = sorted(
                {
                    term
                    for term in extract_terms(entity.subtree_text())
                    if len(term) >= 2
                }
            )
            if len(terms) < min_terms:
                continue
            count = self.rng.randint(min_terms, min(max_terms, len(terms)))
            return self.rng.sample(terms, count)
        raise DatasetError("could not sample an intent; corpus too sparse")

    # ------------------------------------------------------------------
    def _has_meaningful_result(self, terms):
        lists = [
            [p.dewey for p in self.index.inverted_list(term)]
            for term in terms
        ]
        if any(not labels for labels in lists):
            return False
        slcas = scan_eager_slca(lists)
        if not slcas:
            return False
        present = [t for t in terms if self.index.has_keyword(t)]
        search_for = infer_search_for(self.index, present)
        return bool(meaningful_slcas(self.index, slcas, search_for))

    def _corruption_context(self):
        return {
            "thesaurus": self.thesaurus,
            "vocabulary": self.vocabulary,
            "acronyms": self.acronyms,
            "extra_terms": self._rare_terms,
        }

    def _sample_acronym_intent(self, extra_terms=2):
        """An intent containing acronym material (expansion run or acronym).

        Scans a few random entities for one whose vocabulary contains a
        known acronym or a full expansion; the acronym-relevant words
        are force-included so the acronym corruptor always applies.
        """
        for _ in range(16):
            entity = self.rng.choice(self._entities)
            terms = {
                term
                for term in extract_terms(entity.subtree_text())
                if len(term) >= 2
            }
            seeds = []
            for acronym, expansion in self.acronyms.items():
                if acronym in terms:
                    seeds.append([acronym])
                if all(word in terms for word in expansion):
                    seeds.append(list(expansion))
            if not seeds:
                continue
            intent = self.rng.choice(seeds)
            others = sorted(terms - set(intent))
            if others:
                intent += self.rng.sample(
                    others, min(extra_terms, len(others))
                )
            return intent
        return None

    def _arrange_for_acronym(self, intent):
        """Reorder an intent so known acronym expansions are adjacent.

        A keyword query is a set (Section III), so its presentation
        order is free; placing e.g. ``machine learning`` contiguously
        lets the acronym corruptor contract the run.
        """
        remaining = list(intent)
        arranged = []
        for expansion in self.acronyms._expansions.values():
            if all(word in remaining for word in expansion):
                for word in expansion:
                    remaining.remove(word)
                arranged.extend(expansion)
        return arranged + remaining

    def corrupt(self, intent, kinds):
        """Apply the given corruption kinds in order; None on failure."""
        context = self._corruption_context()
        if "acronym" in kinds:
            intent = self._arrange_for_acronym(intent)
        query = list(intent)
        applied = []
        for kind in kinds:
            corrupted = CORRUPTORS[kind](query, self.rng, context)
            if corrupted is None:
                return None, applied
            query = corrupted
            applied.append(kind)
        return query, applied

    # ------------------------------------------------------------------
    def refinable_query(self, kinds=None, max_attempts=80):
        """One pool query guaranteed to need refinement.

        ``kinds`` restricts the corruption classes (a single class for
        the per-operation query sets of Tables III-VI; mixtures for the
        QX queries); when omitted a random class is drawn per attempt.
        """
        choices = list(kinds) if kinds else None
        for _ in range(max_attempts):
            if choices and "acronym" in choices:
                intent = self._sample_acronym_intent()
                if intent is None:
                    continue
            else:
                intent = self.sample_intent()
            if not self._has_meaningful_result(intent):
                continue
            drawn = choices or [self.rng.choice(ALL_KINDS)]
            query, applied = self.corrupt(intent, drawn)
            if query is None or tuple(query) == tuple(intent):
                continue
            # Over-constrained queries may legitimately keep partial
            # matches; every other class must yield no meaningful result.
            if OVERCONSTRAIN not in applied and self._has_meaningful_result(
                query
            ):
                continue
            if OVERCONSTRAIN in applied and self._has_meaningful_result(query):
                continue
            intent_results = self._intent_results(intent)
            return PoolQuery(query, intent, applied, intent_results, True)
        raise DatasetError(
            f"failed to generate a refinable query for kinds={kinds}"
        )

    def clean_query(self, max_attempts=40):
        """One pool query that already has meaningful results."""
        for _ in range(max_attempts):
            intent = self.sample_intent()
            if self._has_meaningful_result(intent):
                return PoolQuery(
                    intent, intent, (), self._intent_results(intent), False
                )
        raise DatasetError("failed to sample a clean query")

    def _intent_results(self, intent):
        lists = [
            [p.dewey for p in self.index.inverted_list(term)]
            for term in intent
        ]
        slcas = scan_eager_slca(lists)
        search_for = infer_search_for(self.index, list(intent))
        return meaningful_slcas(self.index, slcas, search_for)

    # ------------------------------------------------------------------
    def pool(self, refinable=219, clean=100, kinds=None):
        """The full experimental pool (defaults match Section VIII)."""
        queries = [
            self.refinable_query(kinds=kinds) for _ in range(refinable)
        ]
        queries.extend(self.clean_query() for _ in range(clean))
        return queries


def pool_statistics(queries):
    """Aggregate pool statistics (the Table VIII quantities)."""
    refinable = [q for q in queries if q.refinable]
    clean = [q for q in queries if not q.refinable]
    total_terms = sum(q.length for q in queries)
    kind_counts = {}
    for query in refinable:
        for kind in query.kinds:
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
    return {
        "total": len(queries),
        "refinable": len(refinable),
        "clean": len(clean),
        "avg_length": total_terms / len(queries) if queries else 0.0,
        "kind_counts": dict(sorted(kind_counts.items())),
    }
