"""Query workloads: controlled corruption, pools, simulated logs.

Reconstructs the paper's experimental query pool (219 refinable + 100
clean queries drawn from a live demo log) synthetically, with ground
truth attached to every query so the effectiveness experiments can be
scored without human judges.
"""

from .corruption import (
    ACRONYM,
    ALL_KINDS,
    CORRUPTORS,
    MERGE,
    OVERCONSTRAIN,
    SPLIT,
    SYNONYM,
    TYPO,
    corrupt_acronym,
    corrupt_merge,
    corrupt_overconstrain,
    corrupt_split,
    corrupt_synonym,
    corrupt_typo,
)
from .generator import PoolQuery, WorkloadGenerator, pool_statistics
from .replay import (
    ReplayReport,
    TrafficLog,
    replay_traffic,
    synthesize_traffic,
)

# Must come after ``from .replay import ...``: importing the submodule
# binds ``repro.workload.replay`` to the module object, and this import
# rebinds the name to the querylog function (the binding callers see).
from .querylog import LogEntry, QueryLog, replay, simulate_log

__all__ = [
    "WorkloadGenerator",
    "PoolQuery",
    "pool_statistics",
    "QueryLog",
    "LogEntry",
    "replay",
    "simulate_log",
    "TrafficLog",
    "ReplayReport",
    "synthesize_traffic",
    "replay_traffic",
    "corrupt_split",
    "corrupt_merge",
    "corrupt_typo",
    "corrupt_synonym",
    "corrupt_acronym",
    "corrupt_overconstrain",
    "CORRUPTORS",
    "ALL_KINDS",
    "SPLIT",
    "MERGE",
    "TYPO",
    "SYNONYM",
    "ACRONYM",
    "OVERCONSTRAIN",
]
