"""A simulated search-session query log.

The paper selects its pool from "the most recent 1000 queries" of a
live demo's log; refinement-rule research also mines user *rewrites*
from such logs [21].  This module simulates that artifact: a sequence
of timestamped sessions in which a user issues a (possibly corrupted)
query, and — when it fails — manually rewrites it, yielding the
(dirty, clean) pairs a log-based rule miner consumes.
"""

from __future__ import annotations

import random

from .generator import WorkloadGenerator


class LogEntry:
    """One logged query submission."""

    __slots__ = ("session_id", "timestamp", "query", "is_rewrite")

    def __init__(self, session_id, timestamp, query, is_rewrite):
        self.session_id = session_id
        self.timestamp = timestamp
        self.query = tuple(query)
        self.is_rewrite = is_rewrite

    def __repr__(self):
        marker = "rewrite" if self.is_rewrite else "initial"
        return f"LogEntry(#{self.session_id} @{self.timestamp} {marker}: {' '.join(self.query)})"


class QueryLog:
    """A full simulated log with rewrite-pair extraction."""

    def __init__(self, entries):
        self.entries = list(entries)

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def rewrite_pairs(self):
        """``[(dirty_query, clean_query), ...]`` from same-session pairs."""
        pairs = []
        by_session = {}
        for entry in self.entries:
            by_session.setdefault(entry.session_id, []).append(entry)
        for entries in by_session.values():
            entries.sort(key=lambda e: e.timestamp)
            for first, second in zip(entries, entries[1:]):
                if not first.is_rewrite and second.is_rewrite:
                    pairs.append((first.query, second.query))
        return pairs

    def failing_queries(self):
        """Initial queries that were followed by a rewrite."""
        return [dirty for dirty, _ in self.rewrite_pairs()]


def replay(engine, log, k=1, algorithm="auto", parallelism=None):
    """Replay a :class:`QueryLog` through an engine, planner-routed.

    Feeds every logged submission (initial queries *and* rewrites, in
    log order) through :meth:`~repro.core.engine.XRefine.search_many`
    with the cost-based planner in charge (``algorithm="auto"`` — the
    production default), so repeated sessions hit the plan cache and
    each query runs on its predicted-cheapest algorithm.  Returns the
    responses in entry order; ``engine.planner.stats()`` afterwards
    shows how the workload was routed.
    """
    return engine.search_many(
        [entry.query for entry in log],
        k=k,
        algorithm=algorithm,
        parallelism=parallelism,
    )


def simulate_log(index, sessions=200, rewrite_probability=0.6, seed=31,
                 rng=None, generator=None):
    """Simulate ``sessions`` user sessions against a corpus.

    The session model: sessions are numbered ``0..sessions-1`` and laid
    out on a shared clock — each session starts 1-90 ticks after the
    previous one.  With ``rewrite_probability`` a session is a *rewrite
    pair* — a corrupted intent (``is_rewrite=False``) followed 5-120
    ticks later by the user's manual fix, the clean intent
    (``is_rewrite=True``) — otherwise it is a single clean query.
    Those pairs are exactly what :meth:`QueryLog.rewrite_pairs` feeds a
    log-based rule miner.

    Reproducibility: the whole log is a pure function of ``(index,
    sessions, rewrite_probability, seed)`` — independent of
    ``PYTHONHASHSEED``, like the generator's ``_rare_terms`` ordering.
    Callers that interleave several simulations (e.g. the replay
    harness) can instead pass their own seeded ``rng``
    (:class:`random.Random`) end-to-end: it drives both the session
    clock/rewrite draws *and* the intent sampling (through a
    ``generator`` built on the same stream), so one master RNG
    reproduces the composite workload.  An explicit ``generator``
    overrides the auto-built one either way.
    """
    if rng is None:
        rng = random.Random(seed * 7919 + 1)
        if generator is None:
            generator = WorkloadGenerator(index, seed=seed)
    elif generator is None:
        # Derive the generator's stream from the caller's RNG so the
        # pair (rng, generator) is reproducible from one seed.
        generator = WorkloadGenerator(
            index, seed=rng.randrange(2**31)
        )
    entries = []
    timestamp = 0
    for session_id in range(sessions):
        timestamp += rng.randint(1, 90)
        if rng.random() < rewrite_probability:
            pool_query = generator.refinable_query()
            entries.append(
                LogEntry(session_id, timestamp, pool_query.query, False)
            )
            timestamp += rng.randint(5, 120)
            entries.append(
                LogEntry(session_id, timestamp, pool_query.intent, True)
            )
        else:
            pool_query = generator.clean_query()
            entries.append(
                LogEntry(session_id, timestamp, pool_query.query, False)
            )
    return QueryLog(entries)
